//! The mc-lint / mc-analyze allowlist: explicit, justified suppressions.
//!
//! Both checkers are deny-by-default; the only way to keep a finding is
//! an entry here, and every entry must carry a written justification.
//! The committed allowlist lives at the workspace root
//! (`mc-lint.allow`) and is shared: lint rules and analyze rules use
//! the same grammar and the same file, each run applying only the
//! entries whose rule is in its own scope.
//!
//! Format, one entry per line (blank lines and `#` comments ignored):
//!
//! ```text
//! <rule> <path-prefix> <symbol|*> -- <justification>
//! ```
//!
//! - `rule`: a rule name from [`crate::lints::RULE_NAMES`] or
//!   [`crate::analyze::RULE_NAMES`].
//! - `path-prefix`: workspace-relative; the entry covers every linted
//!   file under it (a file path covers exactly that file).
//! - `symbol`: the matched symbol (`expect`, `Instant::now`, ...) or `*`.
//! - The justification is mandatory — an entry without `--` text is a
//!   parse error, and an in-scope entry that suppresses nothing is
//!   itself an error, so the allowlist can only shrink stale.
//!   By convention the justification ends with `-- since PR<n>`
//!   provenance (the first `--` still delimits the justification).

/// Anything the allowlist can suppress: lint violations and analyze
/// findings both expose the three matched dimensions.
pub trait Suppressible {
    /// The rule name, as written in allowlist entries.
    fn rule_name(&self) -> &str;
    /// Workspace-relative path of the finding.
    fn path(&self) -> &str;
    /// The matched symbol.
    fn symbol(&self) -> &str;
}

impl Suppressible for crate::lints::Violation {
    fn rule_name(&self) -> &str {
        self.rule.name()
    }
    fn path(&self) -> &str {
        &self.path
    }
    fn symbol(&self) -> &str {
        &self.symbol
    }
}

/// One parsed allowlist line.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Rule name, validated against the known-rule set at parse time.
    pub rule: String,
    pub path_prefix: String,
    /// Symbol to match, or `None` for `*`.
    pub symbol: Option<String>,
    pub justification: String,
    /// Source line in the allowlist file, for error reporting.
    pub line: usize,
}

impl Entry {
    fn covers<T: Suppressible>(&self, v: &T) -> bool {
        self.rule == v.rule_name()
            && v.path().starts_with(&self.path_prefix)
            && self.symbol.as_ref().is_none_or(|s| *s == v.symbol())
    }
}

/// A parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<Entry>,
}

impl Allowlist {
    /// Parses the allowlist text, validating rule names against
    /// `known_rules` (the union of lint and analyze rule names, so one
    /// shared file serves both runs).
    ///
    /// # Errors
    /// On an unknown rule name, a malformed line, or a missing
    /// justification — a suppression nobody can read the reason for is
    /// worse than the violation it hides.
    pub fn parse(text: &str, known_rules: &[&str]) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw.trim();
            if content.is_empty() || content.starts_with('#') {
                continue;
            }
            let (spec, justification) = content
                .split_once("--")
                .ok_or_else(|| format!("allowlist line {line}: missing `-- justification`"))?;
            let justification = justification.trim();
            if justification.is_empty() {
                return Err(format!("allowlist line {line}: empty justification"));
            }
            let fields: Vec<&str> = spec.split_whitespace().collect();
            let [rule, path_prefix, symbol] = fields[..] else {
                return Err(format!(
                    "allowlist line {line}: expected `<rule> <path-prefix> <symbol|*>`, got {} fields",
                    fields.len()
                ));
            };
            if !known_rules.contains(&rule) {
                return Err(format!("allowlist line {line}: unknown rule `{rule}`"));
            }
            entries.push(Entry {
                rule: rule.to_string(),
                path_prefix: path_prefix.to_string(),
                symbol: (symbol != "*").then(|| symbol.to_string()),
                justification: justification.to_string(),
                line,
            });
        }
        Ok(Allowlist { entries })
    }

    /// The entries whose rule is one of `scope`.
    pub fn in_scope(&self, scope: &[&str]) -> usize {
        self.entries.iter().filter(|e| scope.contains(&e.rule.as_str())).count()
    }

    /// Splits `items` into kept ones and a list of unused-entry errors,
    /// considering only entries whose rule is in `scope` — a shared
    /// allowlist must not report lint entries stale during an analyze
    /// run or vice versa. Every item covered by an in-scope entry is
    /// suppressed; every in-scope entry that covered nothing is
    /// reported.
    pub fn apply<T: Suppressible>(&self, items: Vec<T>, scope: &[&str]) -> (Vec<T>, Vec<String>) {
        let in_scope: Vec<&Entry> =
            self.entries.iter().filter(|e| scope.contains(&e.rule.as_str())).collect();
        let mut used = vec![false; in_scope.len()];
        let mut kept = Vec::new();
        for v in items {
            let mut suppressed = false;
            for (e, flag) in in_scope.iter().zip(used.iter_mut()) {
                if e.covers(&v) {
                    *flag = true;
                    suppressed = true;
                }
            }
            if !suppressed {
                kept.push(v);
            }
        }
        let stale = in_scope
            .iter()
            .zip(&used)
            .filter(|(_, used)| !**used)
            .map(|(e, _)| {
                format!(
                    "allowlist line {}: entry `{} {} {}` suppresses nothing — remove it",
                    e.line,
                    e.rule,
                    e.path_prefix,
                    e.symbol.as_deref().unwrap_or("*"),
                )
            })
            .collect();
        (kept, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::{Rule, Violation};

    const RULES: [&str; 3] = ["no-unwrap", "no-wallclock", "lock-order"];

    fn violation(rule: Rule, path: &str, symbol: &str) -> Violation {
        Violation {
            path: path.into(),
            line: 1,
            rule,
            symbol: symbol.into(),
            message: String::new(),
        }
    }

    #[test]
    fn parse_rejects_missing_justification_and_unknown_rules() {
        assert!(Allowlist::parse("no-unwrap crates/x expect", &RULES).is_err());
        assert!(Allowlist::parse("no-unwrap crates/x expect --   ", &RULES).is_err());
        assert!(Allowlist::parse("no-such-rule crates/x * -- why", &RULES).is_err());
        assert!(Allowlist::parse("no-unwrap crates/x -- too few fields", &RULES).is_err());
        let ok = Allowlist::parse("# comment\n\nno-unwrap crates/x expect -- reason\n", &RULES);
        assert_eq!(ok.expect("parses").entries.len(), 1);
    }

    #[test]
    fn provenance_suffix_stays_inside_the_justification() {
        let allow = Allowlist::parse("no-unwrap crates/x expect -- reason -- since PR4\n", &RULES)
            .expect("parses");
        assert_eq!(allow.entries[0].justification, "reason -- since PR4");
    }

    #[test]
    fn apply_suppresses_by_prefix_and_symbol_and_reports_stale() {
        let allow = Allowlist::parse(
            "no-unwrap crates/demo/src expect -- demo reason\n\
             no-wallclock crates/never * -- never matches\n",
            &RULES,
        )
        .expect("parses");
        let (kept, stale) = allow.apply(
            vec![
                violation(Rule::NoUnwrap, "crates/demo/src/lib.rs", "expect"),
                violation(Rule::NoUnwrap, "crates/demo/src/lib.rs", "unwrap"),
                violation(Rule::NoUnwrap, "crates/other/src/lib.rs", "expect"),
            ],
            &RULES,
        );
        let kept: Vec<&str> = kept.iter().map(|v| v.path.as_str()).collect();
        assert_eq!(kept, vec!["crates/demo/src/lib.rs", "crates/other/src/lib.rs"]);
        assert_eq!(stale.len(), 1);
        assert!(stale[0].contains("no-wallclock"), "{stale:?}");
    }

    #[test]
    fn out_of_scope_entries_neither_suppress_nor_go_stale() {
        let allow = Allowlist::parse(
            "no-unwrap crates/demo/src expect -- lint-scoped\n\
             lock-order crates/core/src * -- analyze-scoped\n",
            &RULES,
        )
        .expect("parses");
        // A lint run: the analyze entry is invisible.
        let (kept, stale) = allow.apply(
            vec![violation(Rule::NoUnwrap, "crates/demo/src/lib.rs", "expect")],
            &["no-unwrap", "no-wallclock"],
        );
        assert!(kept.is_empty() && stale.is_empty(), "{stale:?}");
        assert_eq!(allow.in_scope(&["no-unwrap", "no-wallclock"]), 1);
        assert_eq!(allow.in_scope(&["lock-order"]), 1);
        // An analyze run over nothing: only the analyze entry goes stale.
        let (_, stale) = allow.apply(Vec::<Violation>::new(), &["lock-order"]);
        assert_eq!(stale.len(), 1);
        assert!(stale[0].contains("lock-order"), "{stale:?}");
    }
}
