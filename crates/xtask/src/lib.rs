//! Workspace automation library behind the `cargo xtask` binary.
//!
//! Two checkers share this crate: **mc-lint** ([`run_lint`]), a
//! deny-by-default invariant linter over the flat token stream, and
//! **mc-analyze** ([`analyze::run_analyze`]), the structural analysis
//! layer (item tree + symbol index + lock-order and drift passes).
//! Lint rules live in [`lints`], analysis passes in [`analyze`],
//! suppression (with mandatory justifications, one shared file) in
//! [`allow`], and the token stream everything works on comes from
//! [`lexer`]. DESIGN.md §8 and §13 describe how these layers fit next
//! to clippy and the loom suite.

pub mod allow;
pub mod analyze;
pub mod lexer;
pub mod lints;

use std::fs;
use std::path::{Path, PathBuf};

use allow::Allowlist;
use lints::{lint_file, Violation};

/// Every rule name either checker can report — the validation set for
/// the shared allowlist, so a lint run does not reject an
/// analyze-scoped entry as unknown (or vice versa).
pub fn known_rules() -> Vec<&'static str> {
    let mut rules = Vec::new();
    rules.extend(lints::RULE_NAMES);
    rules.extend(analyze::RULE_NAMES);
    rules
}

/// Everything one lint run produced.
#[derive(Debug)]
pub struct LintReport {
    /// Files linted.
    pub files: usize,
    /// Violations that survived the allowlist, sorted by path then line.
    pub violations: Vec<Violation>,
    /// Configuration errors: stale allowlist entries that suppress
    /// nothing. These fail the run just like violations.
    pub errors: Vec<String>,
    /// Allowlist entries that did suppress something (for the summary).
    pub suppressions_in_use: usize,
}

impl LintReport {
    /// Whether the run passed.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.errors.is_empty()
    }
}

/// Collects the workspace-relative paths of every linted source file:
/// `src/**/*.rs` of the root package and of each crate under `crates/`.
///
/// Integration tests (`tests/`), benches, fixtures and the `vendor/`
/// stand-ins are outside the walk by construction; in-file test spans
/// are handled by the rules themselves.
///
/// # Errors
/// On filesystem errors walking the tree.
pub fn collect_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut dirs = vec![root.join("src")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let entries =
            fs::read_dir(&crates).map_err(|e| format!("read {}: {e}", crates.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read {}: {e}", crates.display()))?;
            let src = entry.path().join("src");
            if src.is_dir() {
                dirs.push(src);
            }
        }
    }
    let mut files = Vec::new();
    for dir in dirs {
        walk(&dir, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the workspace rooted at `root` against `allowlist_text`.
///
/// # Errors
/// On a malformed allowlist or unreadable sources — configuration
/// problems, as opposed to the violations reported in the result.
pub fn run_lint(root: &Path, allowlist_text: &str) -> Result<LintReport, String> {
    let allowlist = Allowlist::parse(allowlist_text, &known_rules())?;
    let files = collect_sources(root)?;
    let mut violations = Vec::new();
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path);
        let rel = rel.to_string_lossy().replace('\\', "/");
        let src = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        violations.extend(lint_file(&rel, &src));
    }
    let (mut kept, errors) = allowlist.apply(violations, &lints::RULE_NAMES);
    kept.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    let suppressions_in_use = allowlist.in_scope(&lints::RULE_NAMES) - errors.len();
    Ok(LintReport { files: files.len(), violations: kept, errors, suppressions_in_use })
}
