//! Fixture: raw queue primitives outside the sched admission layer.
use std::collections::VecDeque;

pub fn backlog() -> VecDeque<u64> {
    VecDeque::with_capacity(64)
}

pub fn pipe() {
    let (_tx, _rx) = std::sync::mpsc::channel::<u64>();
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_queues_are_fine_here() {
        let _q: std::collections::VecDeque<u8> = std::collections::VecDeque::new();
    }
}
