//! Known-bad fixture: every form the no-unwrap rule must flag, plus the
//! test-span forms it must NOT flag. Never compiled — linted only.

pub fn first(x: Option<u32>) -> u32 {
    x.unwrap() // line 5: flagged (unwrap)
}

pub fn second(x: Option<u32>) -> u32 {
    x.expect("present") // line 9: flagged (expect)
}

pub fn third() {
    panic!("library code must not panic"); // line 13: flagged (panic)
}

// A doc string mentioning .unwrap() or panic! must not trip the lexer:
pub const DOC: &str = "call .unwrap() and panic! freely in prose";

#[test]
fn exempt_test_fn() {
    Some(1u32).unwrap();
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_module() {
        Option::<u32>::None.expect("fine in tests");
        panic!("fine in tests");
    }
}

#[cfg(not(test))]
pub fn not_test_is_production(x: Option<u32>) -> u32 {
    x.unwrap() // line 35: flagged — cfg(not(test)) is production code
}
