//! Known-bad fixture: stdio writes from library code.

pub fn chatty() {
    println!("progress: {}", 42);
}

pub fn grumbly() {
    eprintln!("warning: something");
}

// A `println` path expression without the bang is not the macro.
pub fn not_the_macro(println: u32) -> u32 {
    println
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_freely() {
        println!("tests may narrate");
        eprintln!("and complain");
    }
}
