//! Known-bad fixture: nondeterminism sources banned from forecast paths.

use std::time::SystemTime; // line 3: flagged (SystemTime)

pub fn stamp() -> u128 {
    let t = std::time::Instant::now(); // line 6: flagged (Instant::now)
    let _ = t;
    SystemTime::now() // line 8: flagged (SystemTime)
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0)
}

pub fn jitter() -> f64 {
    let mut rng = thread_rng(); // line 15: flagged (thread_rng)
    rng.gen()
}

// `instant.now` as field access and an `Instant` with no `::now` are fine:
pub fn elapsed(instant: &Timer) -> u64 {
    let _: Option<std::time::Instant> = None;
    instant.now
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_is_fine_in_tests() {
        let _ = std::time::Instant::now();
    }
}
