//! Known-bad fixture: the single-construction contracts violated — two
//! `SampleExpectations` literals and two `continuation_spec` definitions.

pub struct SampleExpectations {
    pub digits: usize,
}

impl SampleExpectations {
    pub fn one() -> Self {
        SampleExpectations { digits: 3 } // line 10: site 1
    }
}

pub fn elsewhere() -> SampleExpectations {
    // The `-> SampleExpectations {` return type above is NOT a site.
    SampleExpectations { digits: 4 } // line 16: site 2
}

pub fn continuation_spec() -> String {
    // line 19: site 1
    String::new()
}

pub mod dup {
    pub fn continuation_spec() -> String {
        // line 25: site 2
        String::new()
    }
}
