// Known-bad fixture for the no-direct-fit rule: serve-land code fitting
// contexts through the raw PreparedBackend entry points instead of the
// one sanctioned fit_context seam (which consults the cross-batch cache
// and meters costs uniformly). Linted under the crates/core/src/serve.rs
// path by tests/fixtures.rs; never compiled.

fn sidestep(spec: &ContinuationSpec, ledger: Arc<CostLedger>) -> Result<PreparedBackend> {
    let cold = PreparedBackend::fit(spec)?;
    let metered = PreparedBackend::fit_metered_observed(spec, ledger, obs, 7)?;
    let warm = PreparedBackend::from_frozen(frozen, spec)?.meter_observed(ledger, obs, 7);
    let _raw = fit_model(spec.preset, spec.vocab.len(), &tokens);
    let _codec_fit_is_fine = codec.fit(&train);
    Ok(cold.or(metered).or(warm))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_fits_in_tests_are_fine() {
        let _ = PreparedBackend::fit(&spec);
        let _ = fit_model(preset, vocab, &tokens);
    }
}
