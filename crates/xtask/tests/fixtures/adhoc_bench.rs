// Known-bad fixture for the no-adhoc-bench rule: a bench bin driving
// the engine and serve seams by hand instead of lowering a ScenarioSpec
// through the mc-spec runner. Linted under a crates/bench path by
// tests/fixtures.rs; never compiled.

fn main() {
    let engine = ForecastEngine::new(config);
    let _spec = engine.continuation_spec();
    let handle: ServeHandle = spawn_serve(&cfg);
    let _ = serve_all(&batch, &serve_config);
    let _ = serve_all_observed(&batch, &serve_config, &recorder);
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_harnesses_in_tests_are_fine() {
        let _ = serve_all(&[], &Default::default());
    }
}
