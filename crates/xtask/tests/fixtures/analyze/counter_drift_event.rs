//! Seeded counter drift, mc-obs side: the names table is missing
//! "shape" and DEFECT_CLASSES still says 1 — the counter array no
//! longer mirrors the DefectClass taxonomy. Analyzed by
//! tests/analyze.rs; never compiled.

pub const DEFECT_CLASSES: usize = 1;

pub const DEFECT_CLASS_NAMES: [&str; DEFECT_CLASSES] = ["truncated"];
