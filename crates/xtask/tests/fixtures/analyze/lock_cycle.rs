//! Seeded lock-order cycle: `ab` and `ba` acquire the same two locks in
//! opposite orders — the analyzer must fail with a cycle finding at the
//! reversed acquisition. Analyzed under a synthetic serve-land path by
//! tests/analyze.rs; never compiled.

use mc_sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    fn ab(&self) {
        let ga = self.a.lock().expect("a");
        let gb = self.b.lock().expect("b");
        let _ = (&ga, &gb);
    }

    fn ba(&self) {
        let gb = self.b.lock().expect("b");
        let ga = self.a.lock().expect("a");
        let _ = (&ga, &gb);
    }
}
