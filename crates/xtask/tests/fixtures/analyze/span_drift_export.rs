//! Seeded span drift, export side: `span_body` never renders
//! `SpanKind::QueueWait`, and still matches a `SpanKind::Probe` the
//! enum no longer declares. Analyzed by tests/analyze.rs; never
//! compiled.

fn span_body(kind: SpanKind) -> String {
    match kind {
        SpanKind::Request => "request".to_string(),
        SpanKind::Attempt => "attempt".to_string(),
        SpanKind::Probe => "probe".to_string(),
    }
}
