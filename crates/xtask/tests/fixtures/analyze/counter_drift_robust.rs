//! Seeded counter drift, mc-core side: `DefectClass::Shape` produces the
//! name "shape", which the obs-side fixture's DEFECT_CLASS_NAMES table
//! does not mirror. Analyzed by tests/analyze.rs; never compiled.

pub enum DefectClass {
    Truncated,
    Shape,
}

impl DefectClass {
    pub fn name(self) -> &'static str {
        match self {
            DefectClass::Truncated => "truncated",
            DefectClass::Shape => "shape",
        }
    }
}
