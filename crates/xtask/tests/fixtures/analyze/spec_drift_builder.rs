//! Seeded spec-key drift, builder side: lowers only `seed`; the spec
//! fixture's `dead_knob` field is never read here. Analyzed by
//! tests/analyze.rs; never compiled.

pub fn lower(spec: &ScenarioSpec) -> Lowered {
    Lowered { seed: spec.seed }
}
