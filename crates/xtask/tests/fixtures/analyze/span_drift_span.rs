//! Seeded span drift, enum side: a three-variant `SpanKind` taxonomy.
//! The export fixture forgets `QueueWait` and keeps a stale `Probe`
//! arm; the metrics fixture is clean. Analyzed by tests/analyze.rs;
//! never compiled.

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    Request,
    Attempt,
    QueueWait,
}
