//! Seeded span drift, metrics side: `record_span` is the clean half of
//! the contract — every enum variant folded into a counter, no stale
//! arms. Analyzed by tests/analyze.rs; never compiled.

fn record_span(&mut self, kind: SpanKind) {
    match kind {
        SpanKind::Request => self.requests += 1,
        SpanKind::Attempt => self.attempts += 1,
        SpanKind::QueueWait => self.queue_waits += 1,
    }
}
