//! Seeded spec-key drift, grammar side: the `dead_knob` key assigns a
//! field the builder fixture never reads — a silently dead knob.
//! Analyzed by tests/analyze.rs; never compiled.

impl ScenarioSpec {
    fn apply_top(&mut self, key: &str, v: &str) -> Result<(), SpecError> {
        match key {
            "seed" => self.seed = parse(v)?,
            "dead_knob" => self.dead_knob = parse(v)?,
            _ => return Err(SpecError::UnknownKey),
        }
        Ok(())
    }
}
