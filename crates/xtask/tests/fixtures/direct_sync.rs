//! Known-bad fixture: std::sync locking primitives used outside the
//! mc-sync shim, in both path and use-tree form.

use std::sync::Mutex; // line 4: flagged (Mutex)
use std::sync::{Arc, Condvar}; // line 5: flagged (Condvar), Arc is fine

pub struct Pool {
    inner: std::sync::Mutex<Vec<u32>>, // line 8: flagged (Mutex)
}

pub fn share(v: Vec<u32>) -> Arc<Mutex<Vec<u32>>> {
    // Bare `Mutex` after the import is not re-flagged — the import was.
    Arc::new(Mutex::new(v))
}

// Non-lock std::sync items are allowed:
use std::sync::atomic::AtomicU64;
pub static COUNT: AtomicU64 = AtomicU64::new(0);
