//! End-to-end tests for `cargo xtask analyze`.
//!
//! Three layers: the committed workspace must come out clean; the
//! lock-order pass must provably cover every `mc-sync` acquisition site
//! in serve-land (cross-checked against an independent token count);
//! and each seeded fixture under `fixtures/analyze/` must fail with a
//! span-accurate diagnostic.

use std::path::Path;

use xtask::allow::Allowlist;
use xtask::analyze::index::SymbolIndex;
use xtask::analyze::{drift, locks, rules, run_analyze, stale, Workspace};

const LOCK_CYCLE: &str = include_str!("fixtures/analyze/lock_cycle.rs");
const COUNTER_ROBUST: &str = include_str!("fixtures/analyze/counter_drift_robust.rs");
const COUNTER_EVENT: &str = include_str!("fixtures/analyze/counter_drift_event.rs");
const SPEC_SPEC: &str = include_str!("fixtures/analyze/spec_drift_spec.rs");
const SPEC_BUILDER: &str = include_str!("fixtures/analyze/spec_drift_builder.rs");
const SPAN_SPAN: &str = include_str!("fixtures/analyze/span_drift_span.rs");
const SPAN_EXPORT: &str = include_str!("fixtures/analyze/span_drift_export.rs");
const SPAN_METRICS: &str = include_str!("fixtures/analyze/span_drift_metrics.rs");
const DIRECT_FIT: &str = include_str!("fixtures/direct_fit.rs");
const DUP: &str = include_str!("fixtures/dup_construction.rs");

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap()
}

fn ws(files: &[(&str, &str)]) -> Workspace {
    Workspace::from_sources(
        files.iter().map(|(p, s)| ((*p).to_string(), (*s).to_string())).collect(),
    )
}

/// 1-based column of the first `pat` on 1-based `line` of `src` — spans
/// are asserted against the fixture text itself, not hand-counted.
fn col(src: &str, line: usize, pat: &str) -> usize {
    src.lines().nth(line - 1).unwrap().find(pat).unwrap() + 1
}

#[test]
fn the_committed_workspace_is_clean() {
    let allow = std::fs::read_to_string(root().join("mc-lint.allow")).unwrap();
    let report = run_analyze(root(), &allow).unwrap();
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert!(report.clean(), "{:?}", report.findings);
    assert!(report.files >= 100, "only {} files analyzed", report.files);
    assert_eq!(report.lock_sites, 20, "lock inventory moved; update DESIGN.md §13");
    assert!(report.to_json().contains("\"lock_sites\":20"), "{}", report.to_json());
}

#[test]
fn lock_pass_covers_every_acquisition_site_in_serve_land() {
    let ws = Workspace::load(root()).unwrap();
    let report = locks::check(&ws);
    assert!(report.findings.is_empty(), "{:?}", report.findings);

    let serve_land = [
        "crates/core/src/serve.rs",
        "crates/core/src/sched.rs",
        "crates/core/src/overload.rs",
        "crates/lm/src/cache.rs",
    ];
    let mut covered = 0;
    for path in serve_land {
        let file = ws.file(path).unwrap_or_else(|| panic!("{path} missing"));
        // Independent count of non-test `.lock(` call sites, straight
        // off the token stream with no help from the lock pass.
        let expected = file
            .tokens
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                t.is_ident("lock")
                    && *i > 0
                    && file.tokens[i - 1].is_punct('.')
                    && file.tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && !file.test_mask[*i]
            })
            .count();
        assert!(expected > 0, "{path} has no acquisition sites — inventory is stale");
        let reported = report.sites.iter().filter(|s| s.path == path).count();
        assert_eq!(reported, expected, "{path}: pass covers {reported} of {expected} sites");
        covered += reported;
    }
    assert_eq!(covered, 16, "serve-land acquisition count moved; re-audit lock order");
    assert_eq!(report.sites.len(), 20, "workspace-wide site count (incl. obs/record.rs)");
}

#[test]
fn seeded_lock_cycle_fails_at_the_reversed_acquisition() {
    let w = ws(&[("crates/core/src/sched.rs", LOCK_CYCLE)]);
    let report = locks::check(&w);
    assert_eq!(report.sites.len(), 4);
    assert_eq!(report.edges.len(), 2);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "lock-order");
    assert_eq!(
        (f.path.as_str(), f.line, f.col),
        ("crates/core/src/sched.rs", 22, col(LOCK_CYCLE, 22, "lock")),
    );
    assert!(
        f.message.contains("lock acquisition cycle: Pair.a -> Pair.b -> Pair.a"),
        "{}",
        f.message
    );
}

#[test]
fn seeded_cycle_without_the_shim_import_also_breaks_the_seam() {
    let outside = LOCK_CYCLE.replace("use mc_sync::Mutex;", "use std::sync::Mutex;");
    let w = ws(&[("crates/core/src/sched.rs", outside.as_str())]);
    let report = locks::check(&w);
    let seam: Vec<_> = report.findings.iter().filter(|f| f.rule == "lock-seam").collect();
    assert_eq!(seam.len(), 4, "one per acquisition site: {:?}", report.findings);
    assert_eq!((seam[0].line, seam[0].col), (15, col(&outside, 15, "lock")));
    assert!(seam[0].message.contains("does not import the mc-sync shim"), "{}", seam[0].message);
    // The cycle is still found — the two passes are independent.
    assert!(report.findings.iter().any(|f| f.message.contains("cycle")), "{:?}", report.findings);
}

#[test]
fn seeded_counter_drift_fails_on_both_sides_of_the_mirror() {
    let w = ws(&[(drift::ROBUST_RS, COUNTER_ROBUST), (drift::EVENT_RS, COUNTER_EVENT)]);
    let findings = drift::counter_drift(&w);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == "counter-drift"));

    let mismatch = findings.iter().find(|f| f.symbol == "DEFECT_CLASSES").unwrap();
    assert_eq!(
        (mismatch.path.as_str(), mismatch.line, mismatch.col),
        (drift::EVENT_RS, 6, col(COUNTER_EVENT, 6, "DEFECT_CLASSES")),
    );
    assert!(
        mismatch.message.contains("DEFECT_CLASSES is 1 but DefectClass has 2 variants"),
        "{}",
        mismatch.message
    );

    let missing = findings.iter().find(|f| f.symbol == "Shape").unwrap();
    assert_eq!(
        (missing.path.as_str(), missing.line, missing.col),
        (drift::ROBUST_RS, 14, col(COUNTER_ROBUST, 14, "\"shape\"")),
    );
    assert!(
        missing.message.contains("missing from mc-obs DEFECT_CLASS_NAMES"),
        "{}",
        missing.message
    );
}

#[test]
fn seeded_span_drift_fails_on_both_directions_of_the_contract() {
    let w = ws(&[
        (drift::SPAN_RS, SPAN_SPAN),
        (drift::EXPORT_RS, SPAN_EXPORT),
        (drift::METRICS_RS, SPAN_METRICS),
    ]);
    let findings = drift::span_drift(&w);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == "span-drift"));

    // Forward: the export half never renders QueueWait — the finding
    // points at the enum variant that lost its coverage.
    let missing = findings.iter().find(|f| f.symbol == "QueueWait").unwrap();
    assert_eq!(
        (missing.path.as_str(), missing.line, missing.col),
        (drift::SPAN_RS, 10, col(SPAN_SPAN, 10, "QueueWait")),
    );
    assert!(
        missing.message.contains("not handled by canonical span export"),
        "{}",
        missing.message
    );

    // Reverse: the stale Probe arm fails at the arm itself.
    let stale = findings.iter().find(|f| f.symbol == "Probe").unwrap();
    assert_eq!(
        (stale.path.as_str(), stale.line, stale.col),
        (drift::EXPORT_RS, 10, col(SPAN_EXPORT, 10, "Probe")),
    );
    assert!(stale.message.contains("the enum no longer declares"), "{}", stale.message);

    // The clean half (metrics) contributes nothing.
    assert!(findings.iter().all(|f| f.path != drift::METRICS_RS), "{findings:?}");
}

#[test]
fn seeded_dead_spec_key_fails_at_the_grammar_arm() {
    let w = ws(&[(drift::SPEC_RS, SPEC_SPEC), (drift::BUILDER_RS, SPEC_BUILDER)]);
    let findings = drift::spec_drift(&w);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.rule, "spec-drift");
    assert_eq!(f.symbol, "dead_knob");
    assert_eq!(
        (f.path.as_str(), f.line, f.col),
        (drift::SPEC_RS, 9, col(SPEC_SPEC, 9, "\"dead_knob\"")),
    );
    assert!(f.message.contains("the knob is silently dead"), "{}", f.message);
}

#[test]
fn stale_allowlist_entry_fails_at_its_own_line() {
    let ws = Workspace::load(root()).unwrap();
    let idx = SymbolIndex::build(&ws);
    let allow = Allowlist::parse(
        "# header comment\n\
         no-unwrap crates/core/src * -- live path, must not be flagged -- since PR9\n\
         lock-order crates/core/src/serve_old.rs * -- seeded: file renamed away -- since PR9\n",
        &xtask::known_rules(),
    )
    .unwrap();
    let findings = stale::check(&idx, &allow);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.path.as_str(), f.line, f.col), ("mc-lint.allow", 3, 1));
    assert_eq!(f.rule, "stale-allow");
    assert!(f.message.contains("crates/core/src/serve_old.rs"), "{}", f.message);
}

#[test]
fn direct_fit_fixture_flags_every_sidestep_of_the_seam() {
    let w = ws(&[("crates/core/src/serve.rs", DIRECT_FIT)]);
    let findings = rules::no_direct_fit(&w);
    let got: Vec<(usize, usize, &str)> =
        findings.iter().map(|f| (f.line, f.col, f.symbol.as_str())).collect();
    assert_eq!(
        got,
        vec![
            (8, col(DIRECT_FIT, 8, "PreparedBackend"), "PreparedBackend::fit"),
            (9, col(DIRECT_FIT, 9, "fit_metered_observed"), "fit_metered_observed"),
            (10, col(DIRECT_FIT, 10, "from_frozen"), "from_frozen"),
            (10, col(DIRECT_FIT, 10, "meter_observed"), "meter_observed"),
            (11, col(DIRECT_FIT, 11, "fit_model"), "fit_model"),
        ],
        "{findings:?}"
    );
    assert!(findings.iter().all(|f| f.rule == "no-direct-fit"));
}

#[test]
fn dup_construction_fixture_flags_all_four_sites() {
    let w = ws(&[("crates/core/src/samples.rs", DUP)]);
    let findings = rules::single_construction(&w);
    let got: Vec<(usize, &str)> = findings.iter().map(|f| (f.line, f.symbol.as_str())).collect();
    assert_eq!(
        got,
        vec![
            (10, "SampleExpectations"),
            (16, "SampleExpectations"),
            (19, "continuation_spec"),
            (25, "continuation_spec"),
        ],
        "{findings:?}"
    );
    assert!(findings
        .iter()
        .all(|f| f.rule == "single-construction" && f.message.contains("2 places")));
}
