//! mc-lint end-to-end: every fixture under `tests/fixtures/` is a
//! known-bad snippet, and these tests pin down exactly what each rule
//! flags, what the test-span exemption skips, and how the allowlist
//! suppresses (or goes stale). The structural rules (`no-direct-fit`,
//! `single-construction`, lock order, drift) are exercised end-to-end
//! in `tests/analyze.rs`.

use xtask::allow::Allowlist;
use xtask::lints::{lint_file, Violation, RULE_NAMES};

const UNWRAP_FIXTURE: &str = include_str!("fixtures/unwrap_in_lib.rs");
const PRINTLN_FIXTURE: &str = include_str!("fixtures/println_in_lib.rs");
const WALLCLOCK_FIXTURE: &str = include_str!("fixtures/wallclock.rs");
const SYNC_FIXTURE: &str = include_str!("fixtures/direct_sync.rs");
const QUEUE_FIXTURE: &str = include_str!("fixtures/unbounded_queue.rs");
const ADHOC_FIXTURE: &str = include_str!("fixtures/adhoc_bench.rs");

fn known() -> Vec<&'static str> {
    xtask::known_rules()
}

/// `(rule, symbol, line)` triples, sorted, for compact assertions.
fn shape(violations: &[Violation]) -> Vec<(&'static str, String, usize)> {
    let mut out: Vec<_> =
        violations.iter().map(|v| (v.rule.name(), v.symbol.clone(), v.line)).collect();
    out.sort();
    out
}

#[test]
fn unwrap_fixture_flags_production_but_not_tests() {
    let got = shape(&lint_file("tests/fixtures/unwrap_in_lib.rs", UNWRAP_FIXTURE));
    assert_eq!(
        got,
        vec![
            ("no-unwrap", "expect".to_string(), 9),
            ("no-unwrap", "panic".to_string(), 13),
            ("no-unwrap", "unwrap".to_string(), 5),
            // cfg(not(test)) is production code, so line 35 stays flagged;
            // the #[test] fn and #[cfg(test)] mod are exempt.
            ("no-unwrap", "unwrap".to_string(), 35),
        ]
    );
}

#[test]
fn println_fixture_flags_library_stdio_but_not_tests_or_bins() {
    let got = shape(&lint_file("tests/fixtures/println_in_lib.rs", PRINTLN_FIXTURE));
    assert_eq!(
        got,
        vec![("no-println", "eprintln".to_string(), 8), ("no-println", "println".to_string(), 4),]
    );
    // The same source under a binary path raises nothing.
    assert!(lint_file("src/bin/println_in_lib.rs", PRINTLN_FIXTURE).is_empty());
    assert!(lint_file("crates/demo/src/main.rs", PRINTLN_FIXTURE).is_empty());
}

#[test]
fn wallclock_fixture_flags_every_nondeterminism_source() {
    let got = shape(&lint_file("tests/fixtures/wallclock.rs", WALLCLOCK_FIXTURE));
    assert_eq!(
        got,
        vec![
            ("no-wallclock", "Instant::now".to_string(), 6),
            ("no-wallclock", "SystemTime".to_string(), 3),
            ("no-wallclock", "SystemTime".to_string(), 8),
            ("no-wallclock", "thread_rng".to_string(), 15),
        ]
    );
}

#[test]
fn sync_fixture_flags_locks_in_path_and_use_tree_form() {
    let got = shape(&lint_file("tests/fixtures/direct_sync.rs", SYNC_FIXTURE));
    assert_eq!(
        got,
        vec![
            ("no-direct-sync", "Condvar".to_string(), 5),
            ("no-direct-sync", "Mutex".to_string(), 4),
            ("no-direct-sync", "Mutex".to_string(), 8),
        ]
    );
}

#[test]
fn queue_fixture_flags_imports_types_and_constructors_but_not_tests() {
    let got = shape(&lint_file("tests/fixtures/unbounded_queue.rs", QUEUE_FIXTURE));
    assert_eq!(
        got,
        vec![
            ("no-unbounded-queue", "VecDeque".to_string(), 2),
            ("no-unbounded-queue", "VecDeque".to_string(), 4),
            ("no-unbounded-queue", "VecDeque".to_string(), 5),
            ("no-unbounded-queue", "mpsc".to_string(), 9),
        ]
    );
    // The sanctioned backing store is suppressed the same way the real
    // workspace allowlist suppresses sched.rs — by named symbol.
    let allow = Allowlist::parse(
        "no-unbounded-queue tests/fixtures/unbounded_queue.rs VecDeque -- fixture exercise\n\
         no-unbounded-queue tests/fixtures/unbounded_queue.rs mpsc -- fixture exercise\n",
        &known(),
    )
    .unwrap();
    let (kept, stale) =
        allow.apply(lint_file("tests/fixtures/unbounded_queue.rs", QUEUE_FIXTURE), &RULE_NAMES);
    assert!(kept.is_empty() && stale.is_empty());
}

#[test]
fn adhoc_bench_fixture_flags_bins_in_bench_land_only() {
    // Under a bench-bin path every direct engine/serve touch is flagged
    // — the bin exemption that softens no-unwrap/no-println does NOT
    // apply, because bench bins are exactly what this rule polices.
    let got = shape(&lint_file("crates/bench/src/bin/adhoc_bench.rs", ADHOC_FIXTURE));
    assert_eq!(
        got,
        vec![
            ("no-adhoc-bench", "ForecastEngine".to_string(), 7),
            ("no-adhoc-bench", "ServeHandle".to_string(), 9),
            ("no-adhoc-bench", "serve_all".to_string(), 10),
            ("no-adhoc-bench", "serve_all_observed".to_string(), 11),
        ]
    );
    // The spec crate is bench-land too; the same source under the
    // runner path is what the workspace allowlist entry suppresses.
    let runner = lint_file("crates/spec/src/runner.rs", ADHOC_FIXTURE);
    assert_eq!(runner.len(), 4);
    let allow = Allowlist::parse(
        "no-adhoc-bench crates/spec/src/runner.rs * -- the runner is the sanctioned seam\n",
        &known(),
    )
    .unwrap();
    let (kept, stale) = allow.apply(runner, &RULE_NAMES);
    assert!(kept.is_empty() && stale.is_empty());
    // Outside bench-land the rule never fires.
    assert!(lint_file("crates/core/src/serve.rs", ADHOC_FIXTURE).is_empty());
}

#[test]
fn allowlist_suppresses_exactly_what_it_names() {
    let violations = lint_file("tests/fixtures/unwrap_in_lib.rs", UNWRAP_FIXTURE);
    assert_eq!(violations.len(), 4);

    // Symbol-specific entries: the two unwraps and the expect are
    // suppressed, the panic survives.
    let allow = Allowlist::parse(
        "no-unwrap tests/fixtures/unwrap_in_lib.rs unwrap -- fixture exercise\n\
         no-unwrap tests/fixtures/unwrap_in_lib.rs expect -- fixture exercise\n",
        &known(),
    )
    .unwrap();
    let (kept, stale) = allow.apply(violations.clone(), &RULE_NAMES);
    assert!(stale.is_empty());
    assert_eq!(shape(&kept), vec![("no-unwrap", "panic".to_string(), 13)]);

    // A wildcard symbol with a path prefix suppresses the whole family.
    let allow =
        Allowlist::parse("no-unwrap tests/fixtures * -- fixtures are known-bad\n", &known())
            .unwrap();
    let (kept, stale) = allow.apply(violations.clone(), &RULE_NAMES);
    assert!(kept.is_empty() && stale.is_empty());

    // The rule must match, not just the path: a no-wallclock entry
    // suppresses nothing here and is reported stale.
    let allow = Allowlist::parse(
        "no-wallclock tests/fixtures/unwrap_in_lib.rs * -- wrong rule\n",
        &known(),
    )
    .unwrap();
    let (kept, stale) = allow.apply(violations, &RULE_NAMES);
    assert_eq!(kept.len(), 4);
    assert_eq!(stale.len(), 1);
    assert!(stale[0].contains("no-wallclock"), "stale message names the entry: {}", stale[0]);
}

#[test]
fn stale_entries_fail_even_when_everything_else_is_clean() {
    let allow = Allowlist::parse(
        "no-direct-sync crates/nonexistent * -- covers nothing at all\n",
        &known(),
    )
    .unwrap();
    let (kept, stale) = allow.apply(Vec::<Violation>::new(), &RULE_NAMES);
    assert!(kept.is_empty());
    assert_eq!(stale.len(), 1);
}

#[test]
fn allowlist_rejects_missing_or_empty_justification() {
    assert!(Allowlist::parse("no-unwrap crates/foo *\n", &known()).is_err());
    assert!(Allowlist::parse("no-unwrap crates/foo * --\n", &known()).is_err());
    assert!(Allowlist::parse("no-such-rule crates/foo * -- why\n", &known()).is_err());
    // Comments and blank lines are fine.
    let allow =
        Allowlist::parse("# header\n\nno-unwrap crates/foo bar -- reason\n", &known()).unwrap();
    let (_, stale) = allow.apply(Vec::<Violation>::new(), &RULE_NAMES);
    assert_eq!(stale.len(), 1);
}

#[test]
fn every_known_rule_name_is_accepted_and_unique() {
    let rules = known();
    // Lint and analyze scopes must not collide: an entry's rule name
    // decides which run owns it.
    let mut sorted = rules.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), rules.len(), "duplicate rule name across scopes: {rules:?}");
    for rule in &rules {
        let line = format!("{rule} crates/foo * -- exercising every rule name\n");
        assert!(Allowlist::parse(&line, &rules).is_ok(), "rule {rule} rejected");
    }
    assert!(xtask::lints::RULE_NAMES.iter().all(|r| rules.contains(r)));
    assert!(xtask::analyze::RULE_NAMES.iter().all(|r| rules.contains(r)));
}
