//! mc-loom: in-repo, offline stand-in for the `loom` model checker.
//!
//! [`model`] runs a closure under bounded-exhaustive exploration of
//! thread interleavings: the closure executes once per distinct
//! schedule, with every [`sync`] / [`thread`] operation acting as a
//! schedule point. Assertion failures, lost wakeups, and deadlocks that
//! exist in *any* explored interleaving are reported deterministically.
//!
//! Outside a model the same types transparently delegate to `std`, so a
//! `--cfg loom` build still passes the ordinary test suite.
//!
//! Exploration is bounded two ways:
//! - `LOOM_MAX_PREEMPTIONS` (default 2): maximum involuntary context
//!   switches per execution. Switches at blocking points are free, so
//!   every schedule a cooperative scheduler could produce is covered;
//!   the bound only limits preemptive interleavings. Small bounds find
//!   the overwhelming majority of real bugs (CHESS observation) while
//!   keeping state-space size polynomial.
//! - `LOOM_MAX_ITERATIONS` (default 1,000,000): hard cap on executions;
//!   exceeding it fails the test rather than silently truncating.
//!
//! Semantics modeled: sequentially consistent interleavings of schedule
//! points (no weak-memory reordering), FIFO condvar wakeups, no
//! spurious wakeups. See `rt.rs` for the scheduler itself.

mod rt;
pub mod sync;
pub mod thread;

use std::panic::resume_unwind;

/// Exploration statistics returned by [`explore`].
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Number of distinct schedules executed.
    pub iterations: usize,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Runs `f` once per distinct schedule, panicking on the first
/// interleaving that fails (assertion, deadlock, lost wakeup).
///
/// Equivalent to [`explore`] with the statistics discarded; this is the
/// `loom::model` entry point tests are written against.
pub fn model<F: Fn() + 'static>(f: F) {
    let _ = explore(f);
}

/// Runs `f` under bounded-exhaustive schedule exploration and returns
/// how many schedules were executed.
///
/// The search is a depth-first walk over scheduling decision sequences:
/// each execution follows the current trace, extending it with
/// default choices (choice 0 = "keep running the current thread") at
/// fresh schedule points; afterwards the trace is advanced like an
/// odometer (bump the last decision that has untried alternatives,
/// truncate the rest) until the space is exhausted.
pub fn explore<F: Fn() + 'static>(f: F) -> Stats {
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_iterations = env_usize("LOOM_MAX_ITERATIONS", 1_000_000);
    let mut trace = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        assert!(
            iterations <= max_iterations,
            "mc-loom: exceeded LOOM_MAX_ITERATIONS ({max_iterations}) schedules; \
             raise the cap or lower LOOM_MAX_PREEMPTIONS"
        );
        let outcome = rt::run_once(&f, trace, max_preemptions);
        if let Some(payload) = outcome.body_panic {
            eprintln!(
                "mc-loom: model failed on schedule {iterations} \
                 (trace length {})",
                outcome.trace.len()
            );
            resume_unwind(payload);
        }
        if let Some(failure) = outcome.failure {
            panic!("mc-loom: {failure} on schedule {iterations}");
        }
        trace = outcome.trace;
        // Odometer: revisit the deepest decision with untried options.
        loop {
            match trace.last_mut() {
                None => return Stats { iterations },
                Some(last) if last.chosen + 1 < last.options => {
                    last.chosen += 1;
                    break;
                }
                Some(_) => {
                    trace.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use super::sync::{Arc, Condvar, Mutex};
    use super::{explore, model, thread};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Replaces the panic hook for the duration of a test that expects
    /// the model to fail, so the expected unwinds stay quiet.
    struct QuietPanics;

    impl QuietPanics {
        fn new() -> Self {
            std::panic::set_hook(Box::new(|_| {}));
            QuietPanics
        }
    }

    impl Drop for QuietPanics {
        fn drop(&mut self) {
            let _ = std::panic::take_hook();
        }
    }

    fn expect_model_failure(f: impl Fn() + Send + 'static) -> String {
        let _quiet = QuietPanics::new();
        let err = catch_unwind(AssertUnwindSafe(|| model(f)))
            .expect_err("model should have found a failing schedule");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "<non-string panic payload>".to_string())
    }

    #[test]
    fn mutex_guarded_counter_is_correct_in_all_interleavings() {
        let stats = explore(|| {
            let counter = Arc::new(Mutex::new(0u32));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let c = counter.clone();
                handles.push(thread::spawn(move || {
                    let mut g = c.lock().expect("model mutex");
                    *g += 1;
                }));
            }
            for h in handles {
                h.join().expect("worker");
            }
            assert_eq!(*counter.lock().expect("model mutex"), 2);
        });
        assert!(stats.iterations > 1, "expected multiple schedules, got {stats:?}");
    }

    #[test]
    fn unsynchronized_read_modify_write_is_caught() {
        let msg = expect_model_failure(|| {
            let v = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let v = v.clone();
                handles.push(thread::spawn(move || {
                    // Deliberate lost-update bug: load + store instead of
                    // fetch_add.
                    let cur = v.load(Ordering::SeqCst);
                    v.store(cur + 1, Ordering::SeqCst);
                }));
            }
            for h in handles {
                h.join().expect("worker");
            }
            assert_eq!(v.load(Ordering::SeqCst), 2);
        });
        assert!(msg.contains("assertion"), "unexpected failure message: {msg}");
    }

    #[test]
    fn lock_order_inversion_deadlock_is_caught() {
        let msg = expect_model_failure(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let t = thread::spawn(move || {
                let _ga = a2.lock().expect("model mutex");
                let _gb = b2.lock().expect("model mutex");
            });
            let _gb = b.lock().expect("model mutex");
            let _ga = a.lock().expect("model mutex");
            drop((_ga, _gb));
            t.join().expect("worker");
        });
        assert!(msg.contains("deadlock"), "unexpected failure message: {msg}");
    }

    #[test]
    fn condvar_handshake_never_hangs() {
        explore(|| {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let s = state.clone();
            let producer = thread::spawn(move || {
                let (flag, cv) = &*s;
                *flag.lock().expect("model mutex") = true;
                cv.notify_one();
            });
            let (flag, cv) = &*state;
            let mut g = flag.lock().expect("model mutex");
            while !*g {
                g = cv.wait(g).expect("model condvar");
            }
            drop(g);
            producer.join().expect("producer");
        });
    }

    #[test]
    fn check_then_wait_race_loses_the_wakeup() {
        let msg = expect_model_failure(|| {
            let flag = Arc::new(AtomicBool::new(false));
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let (f2, p2) = (flag.clone(), pair.clone());
            let producer = thread::spawn(move || {
                f2.store(true, Ordering::SeqCst);
                let (m, cv) = &*p2;
                let _g = m.lock().expect("model mutex");
                cv.notify_one();
            });
            // Deliberate bug: the flag check races the notify, so the
            // wakeup can land before this thread starts waiting.
            if !flag.load(Ordering::SeqCst) {
                let (m, cv) = &*pair;
                let g = m.lock().expect("model mutex");
                let _g = cv.wait(g).expect("model condvar");
            }
            producer.join().expect("producer");
        });
        assert!(msg.contains("deadlock"), "unexpected failure message: {msg}");
    }

    #[test]
    fn fallback_outside_model_behaves_like_std() {
        // No model() wrapper: the same types must work as plain std sync.
        let counter = Arc::new(Mutex::new(0u32));
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let (c2, p2) = (counter.clone(), pair.clone());
        let t = thread::spawn(move || {
            *c2.lock().expect("mutex") += 1;
            let (m, cv) = &*p2;
            *m.lock().expect("mutex") = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock().expect("mutex");
        while !*g {
            g = cv.wait(g).expect("condvar");
        }
        drop(g);
        t.join().expect("thread");
        assert_eq!(*counter.lock().expect("mutex"), 1);
    }
}
