//! Model-aware thread spawn/join.
//!
//! Inside a model, spawned closures become model threads scheduled by
//! the checker; outside, everything delegates to `std::thread`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

use crate::rt;

type Slot<T> = Arc<StdMutex<Option<std::thread::Result<T>>>>;

enum Handle<T> {
    Std(std::thread::JoinHandle<T>),
    Model { id: usize, slot: Slot<T> },
}

/// Owned permission to join a spawned thread.
pub struct JoinHandle<T> {
    inner: Handle<T>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result (or the
    /// panic payload it died with, like `std::thread::JoinHandle`).
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Handle::Std(h) => h.join(),
            Handle::Model { id, slot } => {
                let (rt, me) = rt::context().expect("model JoinHandle joined outside its model");
                rt.join_thread(me, id);
                slot.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("finished model thread left no result")
            }
        }
    }
}

/// Spawns a thread. Inside a model the closure becomes a model thread
/// whose interleavings the checker explores.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::context() {
        Some((rt, me)) => {
            let id = rt.register_thread();
            let slot: Slot<T> = Arc::new(StdMutex::new(None));
            let slot_in = slot.clone();
            let rt_in = rt.clone();
            let real = std::thread::spawn(move || {
                rt_in.thread_main(id, move || match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => {
                        *slot_in.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                            Some(Ok(v));
                    }
                    Err(payload) if payload.is::<rt::Abort>() => resume_unwind(payload),
                    Err(payload) => {
                        *slot_in.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                            Some(Err(payload));
                    }
                });
            });
            rt.add_real_handle(real);
            // The child is runnable: let the checker decide whether it
            // preempts the parent right here.
            rt.step_runnable(me);
            JoinHandle { inner: Handle::Model { id, slot } }
        }
        None => JoinHandle { inner: Handle::Std(std::thread::spawn(f)) },
    }
}

/// An explicit schedule point (no-op outside a model, like
/// `std::thread::yield_now`).
pub fn yield_now() {
    if let Some((rt, me)) = rt::context() {
        rt.step_runnable(me);
    } else {
        std::thread::yield_now();
    }
}
