//! Model-aware drop-ins for `std::sync` primitives.
//!
//! Inside [`crate::model`] every operation is a schedule point explored
//! by the checker; outside a model the types transparently delegate to
//! their `std::sync` counterparts, so a `--cfg loom` build still runs
//! ordinary tests correctly.

use std::sync::{LockResult, PoisonError};

use crate::rt;

/// Plain `std::sync::Arc`: reference counting is already deterministic
/// with respect to the invariants this checker explores.
pub use std::sync::Arc;

/// A mutex whose lock/unlock are schedule points inside a model.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    id: u64,
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]; releasing is a schedule point inside a model.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    std: Option<std::sync::MutexGuard<'a, T>>,
    /// Acquired through the model scheduler (vs plain std fallback).
    model: bool,
    /// Cleared when a condvar wait disassembles the guard by hand.
    armed: bool,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub fn new(value: T) -> Self {
        Self { id: rt::next_object_id(), inner: std::sync::Mutex::new(value) }
    }

    /// Acquires the mutex (a schedule point inside a model).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match rt::context() {
            Some((rt, me)) => {
                rt.mutex_lock(me, self.id);
                let std = self
                    .inner
                    .try_lock()
                    .unwrap_or_else(|_| panic!("mc-loom: virtual lock must serialize access"));
                Ok(MutexGuard { lock: self, std: Some(std), model: true, armed: true })
            }
            None => match self.inner.lock() {
                Ok(std) => Ok(MutexGuard { lock: self, std: Some(std), model: false, armed: true }),
                Err(poison) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    std: Some(poison.into_inner()),
                    model: false,
                    armed: true,
                })),
            },
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner().map_err(|poison| PoisonError::new(poison.into_inner()))
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard disassembled")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard disassembled")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        drop(self.std.take());
        if self.model {
            if let Some((rt, me)) = rt::context() {
                rt.mutex_unlock(me, self.lock.id, true);
            }
        }
    }
}

/// A condition variable whose wait/notify are schedule points inside a
/// model. Model-mode waiters wake FIFO and never spuriously.
#[derive(Debug, Default)]
pub struct Condvar {
    id: u64,
    std: std::sync::Condvar,
}

impl Condvar {
    /// A new condvar with no waiters.
    pub fn new() -> Self {
        Self { id: rt::next_object_id(), std: std::sync::Condvar::new() }
    }

    /// Releases `guard`'s mutex and blocks until notified, then
    /// re-acquires the mutex.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if guard.model {
            let (rt, me) = rt::context().expect("model guard outside model");
            let lock = guard.lock;
            guard.armed = false;
            drop(guard.std.take());
            rt.condvar_wait(me, self.id, lock.id);
            // Woken: race to take the mutex back like any other waiter.
            rt.mutex_lock(me, lock.id);
            let std = lock
                .inner
                .try_lock()
                .unwrap_or_else(|_| panic!("mc-loom: virtual lock must serialize access"));
            Ok(MutexGuard { lock, std: Some(std), model: true, armed: true })
        } else {
            let lock = guard.lock;
            guard.armed = false;
            let std = guard.std.take().expect("guard disassembled");
            drop(guard);
            match self.std.wait(std) {
                Ok(std) => Ok(MutexGuard { lock, std: Some(std), model: false, armed: true }),
                Err(poison) => Err(PoisonError::new(MutexGuard {
                    lock,
                    std: Some(poison.into_inner()),
                    model: false,
                    armed: true,
                })),
            }
        }
    }

    /// Wakes one waiter (FIFO inside a model).
    pub fn notify_one(&self) {
        match rt::context() {
            Some((rt, me)) => rt.condvar_notify(me, self.id, 1),
            None => self.std.notify_one(),
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        match rt::context() {
            Some((rt, me)) => rt.condvar_notify(me, self.id, usize::MAX),
            None => self.std.notify_all(),
        }
    }
}

/// Atomics whose every access is a schedule point inside a model.
///
/// The model executes with sequentially consistent semantics regardless
/// of the `Ordering` passed: interleavings of operations are explored
/// exhaustively, weak-memory reorderings are not.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::rt;

    fn schedule_point() {
        if let Some((rt, me)) = rt::context() {
            rt.step_runnable(me);
        }
    }

    macro_rules! model_atomic_int {
        ($(#[$meta:meta])* $name:ident, $std:ident, $t:ty) => {
            $(#[$meta])*
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                /// A new atomic with the given initial value.
                pub const fn new(v: $t) -> Self {
                    Self { inner: std::sync::atomic::$std::new(v) }
                }

                /// Loads the value (a schedule point inside a model).
                pub fn load(&self, _order: Ordering) -> $t {
                    schedule_point();
                    self.inner.load(Ordering::SeqCst)
                }

                /// Stores a value (a schedule point inside a model).
                pub fn store(&self, v: $t, _order: Ordering) {
                    schedule_point();
                    self.inner.store(v, Ordering::SeqCst)
                }

                /// Adds to the value, returning the previous value.
                pub fn fetch_add(&self, v: $t, _order: Ordering) -> $t {
                    schedule_point();
                    self.inner.fetch_add(v, Ordering::SeqCst)
                }

                /// Subtracts from the value, returning the previous value.
                pub fn fetch_sub(&self, v: $t, _order: Ordering) -> $t {
                    schedule_point();
                    self.inner.fetch_sub(v, Ordering::SeqCst)
                }

                /// Replaces the value, returning the previous value.
                pub fn swap(&self, v: $t, _order: Ordering) -> $t {
                    schedule_point();
                    self.inner.swap(v, Ordering::SeqCst)
                }

                /// Compare-and-exchange with SeqCst model semantics.
                pub fn compare_exchange(
                    &self,
                    current: $t,
                    new: $t,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$t, $t> {
                    schedule_point();
                    self.inner.compare_exchange(
                        current,
                        new,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                }
            }
        };
    }

    model_atomic_int!(
        /// Model-aware `AtomicU64`.
        AtomicU64, AtomicU64, u64
    );
    model_atomic_int!(
        /// Model-aware `AtomicU32`.
        AtomicU32, AtomicU32, u32
    );
    model_atomic_int!(
        /// Model-aware `AtomicUsize`.
        AtomicUsize, AtomicUsize, usize
    );

    /// Model-aware `AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// A new atomic with the given initial value.
        pub const fn new(v: bool) -> Self {
            Self { inner: std::sync::atomic::AtomicBool::new(v) }
        }

        /// Loads the value (a schedule point inside a model).
        pub fn load(&self, _order: Ordering) -> bool {
            schedule_point();
            self.inner.load(Ordering::SeqCst)
        }

        /// Stores a value (a schedule point inside a model).
        pub fn store(&self, v: bool, _order: Ordering) {
            schedule_point();
            self.inner.store(v, Ordering::SeqCst);
        }

        /// Replaces the value, returning the previous value.
        pub fn swap(&self, v: bool, _order: Ordering) -> bool {
            schedule_point();
            self.inner.swap(v, Ordering::SeqCst)
        }
    }
}
