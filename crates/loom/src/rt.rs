//! The cooperative scheduler behind [`crate::model`].
//!
//! One OS thread per model thread, but exactly one runs at a time: a
//! token is handed from thread to thread at *schedule points* (every
//! lock/unlock, condvar op, atomic op, spawn, join, yield). At each
//! point the running thread consults the exploration trace to decide who
//! runs next; the driver in [`crate::explore`] enumerates all such
//! decision sequences depth-first, bounded by a preemption budget.
//!
//! Because only the token holder executes, plain (SeqCst) semantics are
//! modeled: every interleaving of the schedule points is explored, but
//! weak-memory reorderings are not. Condvars wake waiters FIFO and do
//! not inject spurious wakeups (waiters in the workspace all re-check
//! their predicate in a loop, so FIFO exploration still covers the
//! lost-wakeup and deadlock bugs this checker exists to find).

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Panic payload used to unwind parked threads when a run aborts
/// (deadlock or failure elsewhere); never user-visible.
pub(crate) struct Abort;

/// One scheduling decision: which of `options` runnable threads ran.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Choice {
    pub chosen: usize,
    pub options: usize,
}

/// How a model thread can be blocked.
#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Runnable,
    BlockedMutex(u64),
    BlockedCondvar(u64),
    BlockedJoin(usize),
    /// The main thread ran to the end of the model body and waits for
    /// every spawned thread to finish.
    BlockedExit,
    Finished,
}

struct Inner {
    threads: Vec<State>,
    /// Virtual lock table: mutex id -> locked?
    locked: HashMap<u64, bool>,
    /// Condvar id -> FIFO waiter queue (thread ids).
    waiters: HashMap<u64, Vec<usize>>,
    trace: Vec<Choice>,
    step: usize,
    preemptions: usize,
    max_preemptions: usize,
    aborting: bool,
    failure: Option<String>,
}

struct Park {
    go: StdMutex<bool>,
    cv: StdCondvar,
}

impl Park {
    fn new() -> Self {
        Self { go: StdMutex::new(false), cv: StdCondvar::new() }
    }

    fn give(&self) {
        let mut go = self.go.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *go = true;
        self.cv.notify_one();
    }

    fn take(&self) {
        let mut go = self.go.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while !*go {
            go = self.cv.wait(go).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        *go = false;
    }
}

pub(crate) struct Runtime {
    inner: StdMutex<Inner>,
    parks: StdMutex<Vec<Arc<Park>>>,
    real: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Runtime>, usize)>> = const { RefCell::new(None) };
}

/// The ambient runtime and model-thread id, if this OS thread is
/// executing inside a model.
pub(crate) fn context() -> Option<(Arc<Runtime>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_context(ctx: Option<(Arc<Runtime>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Global id source for [`crate::sync::Mutex`]/[`crate::sync::Condvar`]
/// instances, so identity survives across the executions of one model.
static OBJECT_IDS: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_object_id() -> u64 {
    OBJECT_IDS.fetch_add(1, Ordering::Relaxed)
}

impl Runtime {
    fn new(trace: Vec<Choice>, max_preemptions: usize) -> Arc<Self> {
        Arc::new(Self {
            inner: StdMutex::new(Inner {
                threads: vec![State::Runnable],
                locked: HashMap::new(),
                waiters: HashMap::new(),
                trace,
                step: 0,
                preemptions: 0,
                max_preemptions,
                aborting: false,
                failure: None,
            }),
            parks: StdMutex::new(vec![Arc::new(Park::new())]),
            real: StdMutex::new(Vec::new()),
        })
    }

    fn park(&self, id: usize) -> Arc<Park> {
        self.parks.lock().unwrap_or_else(std::sync::PoisonError::into_inner)[id].clone()
    }

    /// Runnable thread ids with the preferred continuation (the current
    /// thread) first, so choice 0 means "no context switch".
    fn options(inner: &Inner, me: usize) -> Vec<usize> {
        let mine_runnable = inner.threads[me] == State::Runnable;
        if mine_runnable && inner.preemptions >= inner.max_preemptions {
            return vec![me];
        }
        let mut opts: Vec<usize> = Vec::new();
        if mine_runnable {
            opts.push(me);
        }
        for (i, s) in inner.threads.iter().enumerate() {
            if i != me && *s == State::Runnable {
                opts.push(i);
            }
        }
        opts
    }

    /// The heart of the checker: record `me`'s new state, pick who runs
    /// next (following/extending the trace), hand the token over and
    /// park until it comes back. Returns normally once `me` is scheduled
    /// again.
    fn reschedule(self: &Arc<Self>, me: usize, new_state: State) {
        if std::thread::panicking() {
            // Called from a Drop during unwinding: release-side state was
            // already updated by the caller; keep the token and let the
            // unwind reach its catch/finish handler.
            return;
        }
        let next;
        {
            let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if inner.aborting {
                drop(inner);
                resume_abort(me);
            }
            inner.threads[me] = new_state;
            let opts = Self::options(&inner, me);
            if opts.is_empty() {
                let all_done =
                    inner.threads.iter().enumerate().all(|(i, s)| i == me || *s == State::Finished);
                if new_state == State::BlockedExit && all_done {
                    // Clean end of the model: main may proceed.
                    inner.threads[me] = State::Runnable;
                    return;
                }
                let dump = format!("{:?}", inner.threads);
                self.abort_locked(&mut inner, format!("deadlock: all threads blocked {dump}"));
                drop(inner);
                resume_abort(me);
            }
            let step = inner.step;
            let chosen = if step < inner.trace.len() {
                let c = inner.trace[step];
                debug_assert_eq!(c.options, opts.len(), "non-deterministic model");
                c.chosen
            } else {
                inner.trace.push(Choice { chosen: 0, options: opts.len() });
                0
            };
            inner.step += 1;
            next = opts[chosen.min(opts.len() - 1)];
            if next != me && new_state == State::Runnable {
                inner.preemptions += 1;
            }
        }
        if next != me {
            self.park(next).give();
            self.wait_for_token(me);
        }
    }

    /// Parks until this thread is handed the token (or the run aborts).
    fn wait_for_token(self: &Arc<Self>, me: usize) {
        self.park(me).take();
        let aborting = {
            let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            inner.aborting
        };
        if aborting {
            resume_abort(me);
        }
    }

    /// Marks the run failed and wakes every parked thread so it can
    /// unwind. Caller must follow with [`resume_abort`].
    fn abort_locked(&self, inner: &mut Inner, reason: String) {
        inner.aborting = true;
        if inner.failure.is_none() {
            inner.failure = Some(reason);
        }
        for park in self.parks.lock().unwrap_or_else(std::sync::PoisonError::into_inner).iter() {
            park.give();
        }
    }

    // ---- operations invoked by the sync shims --------------------------

    /// Schedule point with no state change (atomics, yields, notifies).
    pub(crate) fn step_runnable(self: &Arc<Self>, me: usize) {
        self.reschedule(me, State::Runnable);
    }

    /// Virtually acquires mutex `mid`, blocking (in model time) while
    /// another thread holds it. A schedule point precedes the attempt.
    pub(crate) fn mutex_lock(self: &Arc<Self>, me: usize, mid: u64) {
        self.reschedule(me, State::Runnable);
        loop {
            {
                let mut inner =
                    self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                if inner.aborting {
                    drop(inner);
                    resume_abort(me);
                }
                let locked = inner.locked.entry(mid).or_insert(false);
                if !*locked {
                    *locked = true;
                    return;
                }
            }
            self.reschedule(me, State::BlockedMutex(mid));
        }
    }

    /// Virtually releases mutex `mid`, waking its waiters; `schedule`
    /// controls whether a schedule point follows (guard drops outside a
    /// panic do; condvar re-lock handoffs do not).
    pub(crate) fn mutex_unlock(self: &Arc<Self>, me: usize, mid: u64, schedule: bool) {
        {
            let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            inner.locked.insert(mid, false);
            for s in inner.threads.iter_mut() {
                if *s == State::BlockedMutex(mid) {
                    *s = State::Runnable;
                }
            }
        }
        if schedule {
            self.reschedule(me, State::Runnable);
        }
    }

    /// Condvar wait: enqueue on `cid`, release `mid`, block until
    /// notified, then let the caller re-acquire the mutex.
    pub(crate) fn condvar_wait(self: &Arc<Self>, me: usize, cid: u64, mid: u64) {
        {
            let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            inner.waiters.entry(cid).or_default().push(me);
        }
        self.mutex_unlock(me, mid, false);
        self.reschedule(me, State::BlockedCondvar(cid));
    }

    /// Wakes up to `n` waiters of condvar `cid` (FIFO), preceded by a
    /// schedule point.
    pub(crate) fn condvar_notify(self: &Arc<Self>, me: usize, cid: u64, n: usize) {
        self.reschedule(me, State::Runnable);
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let queue = inner.waiters.entry(cid).or_default();
        let woken: Vec<usize> = queue.drain(..n.min(queue.len())).collect();
        for t in woken {
            inner.threads[t] = State::Runnable;
        }
    }

    /// Registers a new model thread and returns its id. The real OS
    /// thread must call [`Runtime::thread_main`].
    pub(crate) fn register_thread(self: &Arc<Self>) -> usize {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut parks = self.parks.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let id = inner.threads.len();
        inner.threads.push(State::Runnable);
        parks.push(Arc::new(Park::new()));
        id
    }

    pub(crate) fn add_real_handle(&self, h: std::thread::JoinHandle<()>) {
        self.real.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(h);
    }

    /// Body run by each spawned OS thread: wait for the first token,
    /// run the closure, then finish and hand the token onward.
    pub(crate) fn thread_main(self: &Arc<Self>, id: usize, body: impl FnOnce()) {
        set_context(Some((self.clone(), id)));
        self.wait_for_token(id);
        let result = catch_unwind(AssertUnwindSafe(body));
        set_context(None);
        if let Err(payload) = &result {
            if payload.is::<Abort>() {
                return; // aborted run: just let the OS thread exit
            }
        }
        self.finish_thread(id);
        // Real (non-Abort) panics were stored by the JoinHandle wrapper
        // before `body` returned; nothing further to do here.
        drop(result);
    }

    /// Marks `id` finished, wakes joiners (and main if it is exiting),
    /// and hands the token to a runnable thread.
    fn finish_thread(self: &Arc<Self>, id: usize) {
        let next;
        {
            let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if inner.aborting {
                return;
            }
            inner.threads[id] = State::Finished;
            for s in inner.threads.iter_mut() {
                if *s == State::BlockedJoin(id) {
                    *s = State::Runnable;
                }
            }
            let all_spawned_done = inner.threads.iter().skip(1).all(|s| *s == State::Finished);
            if all_spawned_done && inner.threads[0] == State::BlockedExit {
                inner.threads[0] = State::Runnable;
            }
            let opts = Self::options(&inner, id);
            if opts.is_empty() {
                let dump = format!("{:?}", inner.threads);
                self.abort_locked(&mut inner, format!("deadlock: all threads blocked {dump}"));
                return;
            }
            // Finishing always context-switches; follow the trace anyway
            // so replays stay aligned.
            let step = inner.step;
            let chosen = if step < inner.trace.len() {
                inner.trace[step].chosen
            } else {
                inner.trace.push(Choice { chosen: 0, options: opts.len() });
                0
            };
            inner.step += 1;
            next = opts[chosen.min(opts.len() - 1)];
        }
        self.park(next).give();
    }

    /// Blocks (in model time) until thread `target` finishes.
    pub(crate) fn join_thread(self: &Arc<Self>, me: usize, target: usize) {
        loop {
            {
                let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                if inner.aborting {
                    drop(inner);
                    resume_abort(me);
                }
                if inner.threads[target] == State::Finished {
                    return;
                }
            }
            self.reschedule(me, State::BlockedJoin(target));
        }
    }
}

fn resume_abort(_me: usize) -> ! {
    // Unwind out of the model body; `thread_main` (workers) and
    // `run_once` (main) recognize the payload and suppress it.
    std::panic::panic_any(Abort);
}

/// Outcome of one execution of the model body.
pub(crate) struct RunOutcome {
    pub trace: Vec<Choice>,
    /// A failure detected by the scheduler (deadlock) if any.
    pub failure: Option<String>,
    /// A real panic out of the model body (assertion failure) if any.
    pub body_panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Executes the model body once, following `trace` and extending it with
/// default choices at new schedule points.
pub(crate) fn run_once<F: Fn()>(f: &F, trace: Vec<Choice>, max_preemptions: usize) -> RunOutcome {
    assert!(context().is_none(), "mc-loom models cannot nest");
    let rt = Runtime::new(trace, max_preemptions);
    set_context(Some((rt.clone(), 0)));
    // Main starts with the token; after a clean body it waits for every
    // spawned thread to finish before the run ends.
    let body = catch_unwind(AssertUnwindSafe(|| {
        f();
        rt.reschedule(0, State::BlockedExit);
    }));
    set_context(None);
    // Whatever happened, make sure every OS thread can exit.
    {
        let mut inner = rt.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if body.is_err() && !inner.aborting {
            rt.abort_locked(&mut inner, "main thread panicked".into());
        }
    }
    let handles: Vec<_> = {
        let mut real = rt.real.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        real.drain(..).collect()
    };
    for h in handles {
        let _ = h.join();
    }
    let mut inner = rt.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let failure = inner.failure.take();
    let trace = std::mem::take(&mut inner.trace);
    drop(inner);
    let body_panic = match body {
        Err(payload) if !payload.is::<Abort>() => Some(payload),
        _ => None,
    };
    RunOutcome { trace, failure, body_panic }
}
