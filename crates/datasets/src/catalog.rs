//! Dataset catalog: one entry per paper dataset, with the metadata needed
//! to regenerate Table I and to drive the benchmark harness generically.

use mc_tslib::MultivariateSeries;

/// The three datasets of the paper's evaluation (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// Box–Jenkins gas furnace: 2 dims × 296.
    GasRate,
    /// ETDataset electricity, 3-day resample: 3 dims × 242.
    Electricity,
    /// MPI Jena weather subset: 4 dims × 217.
    Weather,
}

/// Static metadata describing a dataset, as printed in Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetInfo {
    /// Display name used in the paper.
    pub name: &'static str,
    /// Number of dimensions.
    pub dims: usize,
    /// Number of timestamps.
    pub length: usize,
    /// Dimension names, in order.
    pub dimension_names: &'static [&'static str],
}

impl PaperDataset {
    /// All datasets, in paper order.
    pub const ALL: [PaperDataset; 3] =
        [PaperDataset::GasRate, PaperDataset::Electricity, PaperDataset::Weather];

    /// Table I metadata for this dataset.
    pub fn info(self) -> DatasetInfo {
        match self {
            PaperDataset::GasRate => DatasetInfo {
                name: "Gas Rate",
                dims: 2,
                length: crate::gas_rate::LENGTH,
                dimension_names: &crate::gas_rate::NAMES,
            },
            PaperDataset::Electricity => DatasetInfo {
                name: "Electricity",
                dims: 3,
                length: crate::electricity::LENGTH,
                dimension_names: &crate::electricity::NAMES,
            },
            PaperDataset::Weather => DatasetInfo {
                name: "Weather",
                dims: 4,
                length: crate::weather::LENGTH,
                dimension_names: &crate::weather::NAMES,
            },
        }
    }

    /// Loads (generates) the dataset with the crate default seed.
    pub fn load(self) -> MultivariateSeries {
        self.load_with_seed(crate::DEFAULT_SEED)
    }

    /// Loads (generates) the dataset with an explicit seed.
    pub fn load_with_seed(self, seed: u64) -> MultivariateSeries {
        match self {
            PaperDataset::GasRate => crate::gas_rate::gas_rate_with_seed(seed),
            PaperDataset::Electricity => crate::electricity::electricity_with_seed(seed),
            PaperDataset::Weather => crate::weather::weather_with_seed(seed),
        }
    }
}

impl std::fmt::Display for PaperDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.info().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_one() {
        let expected = [("Gas Rate", 2, 296), ("Electricity", 3, 242), ("Weather", 4, 217)];
        for (ds, (name, dims, len)) in PaperDataset::ALL.iter().zip(expected) {
            let info = ds.info();
            assert_eq!(info.name, name);
            assert_eq!(info.dims, dims);
            assert_eq!(info.length, len);
            assert_eq!(info.dimension_names.len(), dims);
        }
    }

    #[test]
    fn load_agrees_with_info() {
        for ds in PaperDataset::ALL {
            let m = ds.load();
            let info = ds.info();
            assert_eq!(m.dims(), info.dims);
            assert_eq!(m.len(), info.length);
            for (a, b) in m.names().iter().zip(info.dimension_names) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn display_uses_paper_names() {
        assert_eq!(PaperDataset::GasRate.to_string(), "Gas Rate");
        assert_eq!(PaperDataset::Weather.to_string(), "Weather");
    }
}
