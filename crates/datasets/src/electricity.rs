//! Synthetic replica of the **Electricity** dataset (ETDataset / ETTh,
//! resampled to a 3-day cadence).
//!
//! The paper extracts three dimensions over 242 timestamps:
//!
//! - **HUFL** — High UseFul Load, the large-scale load signal;
//! - **HULL** — High UseLess Load, a much smaller load component;
//! - **OT** — Oil Temperature, the regression target of the original
//!   dataset, thermally driven by the loads.
//!
//! The experiments depend on (i) three correlated dimensions on *different
//! scales* (HUFL ≫ HULL), which is the scenario the VI/VC multiplexers
//! target, and (ii) OT being a smoothed function of load. The replica
//! builds a shared seasonal demand factor and derives the three dimensions
//! from it with scale-separated affine maps, independent disturbances, and
//! a thermal low-pass for OT.

use mc_tslib::MultivariateSeries;

use crate::generators::{add, affine, ar, ema_smooth, linear_trend, sinusoids, white_noise};

/// Length of the Electricity dataset (matches Table I).
pub const LENGTH: usize = 242;
/// Dimension names used by the paper.
pub const NAMES: [&str; 3] = ["HUFL", "HULL", "OT"];

/// Generates the Electricity replica with the given seed.
pub fn electricity_with_seed(seed: u64) -> MultivariateSeries {
    let n = LENGTH;
    // Shared demand factor: annual-scale swing + multi-week cycle + slow drift.
    let season = sinusoids(n, &[(1.0, 121.0, 0.3), (0.45, 27.0, 1.7), (0.2, 9.0, 0.9)]);
    let drift = linear_trend(n, 0.0, -0.002);
    let demand = add(&season, &drift);

    // HUFL: demand scaled to the 2..14 band with its own disturbance.
    let hufl_noise = ar(&[0.4], n, 0.45, seed);
    let hufl = add(&affine(&demand, 3.4, 8.2), &hufl_noise);

    // HULL: same demand at roughly 1/5 scale plus small noise.
    let hull_noise = ar(&[0.3], n, 0.12, seed.wrapping_add(1));
    let hull = add(&affine(&demand, 0.55, 2.1), &hull_noise);

    // OT: thermal response — low-passed demand, wide swing, its own noise.
    let thermal = ema_smooth(&demand, 0.18);
    let ot_noise = white_noise(n, 0.8, seed.wrapping_add(2));
    let ot = add(&affine(&thermal, 9.5, 28.0), &ot_noise);

    MultivariateSeries::from_columns(
        NAMES.iter().map(ToString::to_string).collect(),
        vec![hufl, hull, ot],
    )
    .expect("generator produces well-formed columns")
}

/// Generates the Electricity replica with the crate default seed.
pub fn electricity() -> MultivariateSeries {
    electricity_with_seed(crate::DEFAULT_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_tslib::stats;

    #[test]
    fn shape_matches_table_one() {
        let m = electricity();
        assert_eq!(m.len(), 242);
        assert_eq!(m.dims(), 3);
        assert_eq!(m.names(), &["HUFL".to_string(), "HULL".to_string(), "OT".to_string()]);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(electricity_with_seed(5), electricity_with_seed(5));
        assert_ne!(electricity_with_seed(5), electricity_with_seed(6));
    }

    #[test]
    fn scales_are_separated() {
        let m = electricity();
        let hufl = stats::mean(m.column_by_name("HUFL").unwrap()).unwrap();
        let hull = stats::mean(m.column_by_name("HULL").unwrap()).unwrap();
        let ot = stats::mean(m.column_by_name("OT").unwrap()).unwrap();
        assert!(hufl > 3.0 * hull, "HUFL mean {hufl} should dwarf HULL mean {hull}");
        assert!(ot > hufl, "OT mean {ot} should exceed HUFL mean {hufl}");
        let hull_col = m.column_by_name("HULL").unwrap();
        assert!(stats::min(hull_col).unwrap() > 0.0, "HULL stays positive");
    }

    #[test]
    fn loads_are_strongly_correlated() {
        let m = electricity();
        let c =
            stats::pearson(m.column_by_name("HUFL").unwrap(), m.column_by_name("HULL").unwrap())
                .unwrap();
        assert!(c > 0.6, "HUFL/HULL correlation {c}");
    }

    #[test]
    fn ot_follows_load_thermally() {
        let m = electricity();
        let hufl = m.column_by_name("HUFL").unwrap();
        let ot = m.column_by_name("OT").unwrap();
        let c = stats::pearson(hufl, ot).unwrap();
        assert!(c > 0.5, "OT should track load, correlation {c}");
        // OT is smoother: higher lag-1 autocorrelation than HUFL.
        let a_ot = stats::acf(ot, 1).unwrap()[1];
        let a_hufl = stats::acf(hufl, 1).unwrap()[1];
        assert!(a_ot > a_hufl, "OT acf {a_ot} <= HUFL acf {a_hufl}");
    }
}
