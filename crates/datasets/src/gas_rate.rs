//! Synthetic replica of the **Gas Rate** dataset (Box–Jenkins gas furnace).
//!
//! The original (distributed with the `darts` library) is a 2-dimensional
//! series of 296 observations: the input gas feed rate into a furnace
//! (ft³/min, roughly in `[-2.7, 2.8]` around 0) and the output CO₂
//! concentration (%, roughly in `[45, 61]`). The defining property the
//! paper's experiments rely on is the strong *lagged negative coupling*:
//! more input gas now → lower CO₂ percentage a few steps later.
//!
//! The replica drives the input rate with a slow sum-of-sinusoids plus an
//! AR(2) disturbance, and produces CO₂ as a negatively-scaled, delayed,
//! smoothed response of the input plus measurement noise — the same
//! structure identified for the original data in Box & Jenkins' textbook
//! treatment (their transfer-function model has a ~5-step delay).

use mc_tslib::MultivariateSeries;

use crate::generators::{add, affine, ar, delay, ema_smooth, sinusoids, white_noise};

/// Length of the Gas Rate dataset (matches Table I).
pub const LENGTH: usize = 296;
/// Dimension names: input gas feed rate and output CO₂ percentage.
pub const NAMES: [&str; 2] = ["GasRate", "CO2"];
/// Transfer delay between input rate and CO₂ response, in timestamps.
pub const RESPONSE_DELAY: usize = 5;

/// Generates the Gas Rate replica with the given seed.
///
/// Deterministic: equal seeds produce identical series.
pub fn gas_rate_with_seed(seed: u64) -> MultivariateSeries {
    let n = LENGTH;
    // Input rate: slow drifting oscillation + stationary AR(2) disturbance.
    let base = sinusoids(n, &[(1.3, 67.0, 0.4), (0.8, 23.0, 2.1), (0.45, 11.0, 5.0)]);
    let disturbance = ar(&[0.55, -0.25], n, 0.35, seed);
    let rate = add(&base, &disturbance);

    // CO₂: delayed, smoothed, negatively scaled response around 53 %.
    let delayed = delay(&rate, RESPONSE_DELAY);
    let smoothed = ema_smooth(&delayed, 0.35);
    let response = affine(&smoothed, -2.6, 53.2);
    let noise = white_noise(n, 0.25, seed.wrapping_add(1));
    let co2 = add(&response, &noise);

    MultivariateSeries::from_columns(
        NAMES.iter().map(ToString::to_string).collect(),
        vec![rate, co2],
    )
    .expect("generator produces well-formed columns")
}

/// Generates the Gas Rate replica with the crate default seed.
pub fn gas_rate() -> MultivariateSeries {
    gas_rate_with_seed(crate::DEFAULT_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_tslib::stats;

    #[test]
    fn shape_matches_table_one() {
        let m = gas_rate();
        assert_eq!(m.len(), 296);
        assert_eq!(m.dims(), 2);
        assert_eq!(m.names(), &["GasRate".to_string(), "CO2".to_string()]);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(gas_rate_with_seed(1), gas_rate_with_seed(1));
        assert_ne!(gas_rate_with_seed(1), gas_rate_with_seed(2));
    }

    #[test]
    fn scales_match_original() {
        let m = gas_rate();
        let rate = m.column(0).unwrap();
        let co2 = m.column(1).unwrap();
        // Input rate oscillates around 0 within a few units.
        assert!(stats::mean(rate).unwrap().abs() < 1.0);
        assert!(stats::min(rate).unwrap() > -6.0 && stats::max(rate).unwrap() < 6.0);
        // CO₂ stays in a plausible percentage band.
        assert!(stats::min(co2).unwrap() > 40.0, "min {}", stats::min(co2).unwrap());
        assert!(stats::max(co2).unwrap() < 65.0, "max {}", stats::max(co2).unwrap());
    }

    #[test]
    fn dimensions_are_negatively_coupled_at_the_delay() {
        let m = gas_rate();
        let rate = m.column(0).unwrap();
        let co2 = m.column(1).unwrap();
        let c = stats::cross_correlation(rate, co2, -(RESPONSE_DELAY as i64)).unwrap();
        assert!(c < -0.5, "expected strong negative lagged coupling, got {c}");
        // And the coupling at the delay is stronger than instantaneous.
        let c0 = stats::cross_correlation(rate, co2, 0).unwrap();
        assert!(c.abs() > c0.abs(), "lagged {c} vs instantaneous {c0}");
    }

    #[test]
    fn co2_is_smoother_than_rate() {
        let m = gas_rate();
        // Lag-1 autocorrelation of the response should exceed the input's,
        // because of the EMA in the transfer path.
        let r_rate = stats::acf(m.column(0).unwrap(), 1).unwrap()[1];
        let r_co2 = stats::acf(m.column(1).unwrap(), 1).unwrap()[1];
        assert!(r_co2 > r_rate, "co2 acf {r_co2} <= rate acf {r_rate}");
    }
}
