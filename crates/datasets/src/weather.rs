//! Synthetic replica of the **Weather** dataset (MPI Jena weather station).
//!
//! The paper keeps 4 of the original 21 variables over 217 timestamps:
//!
//! - **Tlog** — air temperature in °C;
//! - **H2OC** — water vapor concentration in mmol/mol;
//! - **VPmax** — saturation water vapor pressure in mbar;
//! - **Tpot** — potential temperature in K.
//!
//! All four are functions of one physical latent (air temperature), which
//! is exactly why the paper calls them "all correlated". The replica makes
//! that explicit: a latent temperature process is generated once and the
//! four observed dimensions are derived with the *actual* meteorological
//! transforms — the Magnus formula for saturation vapor pressure, a
//! pressure-scaled vapor concentration, and the Kelvin/pressure offset for
//! potential temperature — plus per-sensor noise.

use mc_tslib::MultivariateSeries;

use crate::generators::{add, ar, ema_smooth, linear_trend, sinusoids, white_noise};

/// Length of the Weather dataset (matches Table I).
pub const LENGTH: usize = 217;
/// Dimension names used by the paper.
pub const NAMES: [&str; 4] = ["Tlog", "H2OC", "VPmax", "Tpot"];
/// Assumed station pressure in mbar (Jena is ~155 m above sea level).
pub const STATION_PRESSURE_MBAR: f64 = 989.0;

/// Magnus formula: saturation vapor pressure (mbar) at temperature `t` °C.
pub fn magnus_vpmax(t_celsius: f64) -> f64 {
    6.1094 * (17.625 * t_celsius / (t_celsius + 243.04)).exp()
}

/// Water vapor concentration (mmol/mol) at saturation for pressure `p` mbar.
pub fn vapor_concentration(vp_mbar: f64, pressure_mbar: f64) -> f64 {
    1000.0 * vp_mbar / pressure_mbar
}

/// Potential temperature (K) from temperature (°C) at station pressure,
/// using the dry-adiabatic exponent against the 1000 mbar reference.
pub fn potential_temperature(t_celsius: f64, pressure_mbar: f64) -> f64 {
    (t_celsius + 273.15) * (1000.0 / pressure_mbar).powf(0.2854)
}

/// Generates the Weather replica with the given seed.
pub fn weather_with_seed(seed: u64) -> MultivariateSeries {
    let n = LENGTH;
    // Latent air temperature: seasonal swing around 9 °C with warm spells.
    let season = sinusoids(n, &[(7.5, 180.0, -1.1), (2.2, 31.0, 0.8), (0.9, 11.0, 2.0)]);
    let warm_drift = linear_trend(n, 9.0, 0.012);
    let weather_noise = ar(&[0.6], n, 0.7, seed);
    let latent_t = ema_smooth(&add(&add(&season, &warm_drift), &weather_noise), 0.6);

    // Observed dimensions = physical transforms of the latent + sensor noise.
    let tlog = add(&latent_t, &white_noise(n, 0.20, seed.wrapping_add(1)));
    let vpmax: Vec<f64> = latent_t.iter().map(|&t| magnus_vpmax(t)).collect();
    let vpmax = add(&vpmax, &white_noise(n, 0.15, seed.wrapping_add(2)));
    let h2oc: Vec<f64> = vpmax
        .iter()
        .map(|&vp| vapor_concentration(vp.max(0.1), STATION_PRESSURE_MBAR) * 0.72)
        .collect();
    let h2oc = add(&h2oc, &white_noise(n, 0.10, seed.wrapping_add(3)));
    let tpot: Vec<f64> =
        latent_t.iter().map(|&t| potential_temperature(t, STATION_PRESSURE_MBAR)).collect();
    let tpot = add(&tpot, &white_noise(n, 0.18, seed.wrapping_add(4)));

    MultivariateSeries::from_columns(
        NAMES.iter().map(ToString::to_string).collect(),
        vec![tlog, h2oc, vpmax, tpot],
    )
    .expect("generator produces well-formed columns")
}

/// Generates the Weather replica with the crate default seed.
pub fn weather() -> MultivariateSeries {
    weather_with_seed(crate::DEFAULT_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_tslib::stats;

    #[test]
    fn shape_matches_table_one() {
        let m = weather();
        assert_eq!(m.len(), 217);
        assert_eq!(m.dims(), 4);
        assert_eq!(
            m.names(),
            &["Tlog".to_string(), "H2OC".to_string(), "VPmax".to_string(), "Tpot".to_string()]
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(weather_with_seed(9), weather_with_seed(9));
        assert_ne!(weather_with_seed(9), weather_with_seed(10));
    }

    #[test]
    fn magnus_formula_reference_points() {
        // Known values: ~6.11 mbar at 0 °C, ~23.4 mbar at 20 °C.
        assert!((magnus_vpmax(0.0) - 6.1094).abs() < 1e-6);
        assert!((magnus_vpmax(20.0) - 23.4).abs() < 0.3, "{}", magnus_vpmax(20.0));
        // Monotone in temperature.
        assert!(magnus_vpmax(25.0) > magnus_vpmax(15.0));
    }

    #[test]
    fn potential_temperature_exceeds_kelvin_at_station() {
        // Below the 1000 mbar reference, theta > T in Kelvin.
        let t = 10.0;
        assert!(potential_temperature(t, STATION_PRESSURE_MBAR) > t + 273.15);
    }

    #[test]
    fn all_dimensions_driven_by_latent_temperature() {
        let m = weather();
        let tlog = m.column_by_name("Tlog").unwrap();
        for other in ["H2OC", "VPmax", "Tpot"] {
            let c = stats::pearson(tlog, m.column_by_name(other).unwrap()).unwrap();
            assert!(c > 0.8, "Tlog vs {other} correlation {c}");
        }
    }

    #[test]
    fn units_are_plausible() {
        let m = weather();
        let tlog = m.column_by_name("Tlog").unwrap();
        let tpot = m.column_by_name("Tpot").unwrap();
        let vpmax = m.column_by_name("VPmax").unwrap();
        let h2oc = m.column_by_name("H2OC").unwrap();
        assert!(stats::min(tlog).unwrap() > -25.0 && stats::max(tlog).unwrap() < 45.0);
        // Kelvin potential temperature sits ~274+ above Celsius.
        assert!(stats::mean(tpot).unwrap() - stats::mean(tlog).unwrap() > 270.0);
        assert!(stats::min(vpmax).unwrap() > 0.0);
        assert!(stats::min(h2oc).unwrap() > 0.0);
    }
}
