//! Generic stochastic-process generators.
//!
//! These are the building blocks of the paper-dataset replicas and are also
//! exported for tests (e.g. the ARIMA estimator is validated on [`ar`]
//! processes with known coefficients) and ablation workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws one standard-normal variate via Box–Muller.
///
/// `rand_distr` is intentionally not a dependency; two uniforms are enough
/// and keep the crate's dependency set minimal.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Gaussian white noise of length `n` with the given standard deviation.
pub fn white_noise(n: usize, sigma: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| sigma * standard_normal(&mut rng)).collect()
}

/// AR(p) process `x_t = Σ phi_i x_{t-i} + e_t`, `e ~ N(0, sigma²)`.
///
/// A burn-in of `10 * p + 50` steps is discarded so the returned samples are
/// from (approximately) the stationary distribution.
pub fn ar(phi: &[f64], n: usize, sigma: f64, seed: u64) -> Vec<f64> {
    let p = phi.len();
    let burn = 10 * p + 50;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hist = vec![0.0; p.max(1)];
    let mut out = Vec::with_capacity(n);
    for t in 0..burn + n {
        let mut x = sigma * standard_normal(&mut rng);
        for (i, &coef) in phi.iter().enumerate() {
            x += coef * hist[i];
        }
        // Shift history: hist[0] is x_{t-1}.
        for i in (1..p).rev() {
            hist[i] = hist[i - 1];
        }
        if p > 0 {
            hist[0] = x;
        }
        if t >= burn {
            out.push(x);
        }
    }
    out
}

/// MA(q) process `x_t = e_t + Σ theta_i e_{t-i}`.
pub fn ma(theta: &[f64], n: usize, sigma: f64, seed: u64) -> Vec<f64> {
    let q = theta.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut errs = vec![0.0; q.max(1)];
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let e = sigma * standard_normal(&mut rng);
        let mut x = e;
        for (i, &coef) in theta.iter().enumerate() {
            x += coef * errs[i];
        }
        for i in (1..q).rev() {
            errs[i] = errs[i - 1];
        }
        if q > 0 {
            errs[0] = e;
        }
        out.push(x);
    }
    out
}

/// Deterministic sum of sinusoids: `Σ amp_i * sin(2π t / period_i + phase_i)`.
pub fn sinusoids(n: usize, components: &[(f64, f64, f64)]) -> Vec<f64> {
    (0..n)
        .map(|t| {
            components
                .iter()
                .map(|&(amp, period, phase)| {
                    amp * (2.0 * std::f64::consts::PI * t as f64 / period + phase).sin()
                })
                .sum()
        })
        .collect()
}

/// Linear trend `intercept + slope * t`.
pub fn linear_trend(n: usize, intercept: f64, slope: f64) -> Vec<f64> {
    (0..n).map(|t| intercept + slope * t as f64).collect()
}

/// Gaussian random walk starting at `start`.
pub fn random_walk(n: usize, start: f64, sigma: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = start;
    (0..n)
        .map(|_| {
            x += sigma * standard_normal(&mut rng);
            x
        })
        .collect()
}

/// Exponential moving average smoother with factor `alpha` in `(0, 1]`
/// (1.0 = no smoothing).
pub fn ema_smooth(xs: &[f64], alpha: f64) -> Vec<f64> {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    let mut out = Vec::with_capacity(xs.len());
    let Some(&first) = xs.first() else { return out };
    let mut acc = first;
    for &x in xs {
        acc = alpha * x + (1.0 - alpha) * acc;
        out.push(acc);
    }
    out
}

/// Shifts a series right by `lag` (prepends the first value `lag` times and
/// truncates the tail), preserving length. Used to build lead/lag coupled
/// dimensions.
pub fn delay(xs: &[f64], lag: usize) -> Vec<f64> {
    if xs.is_empty() || lag == 0 {
        return xs.to_vec();
    }
    let mut out = Vec::with_capacity(xs.len());
    for t in 0..xs.len() {
        out.push(if t < lag { xs[0] } else { xs[t - lag] });
    }
    out
}

/// Pointwise affine map `a * x + b`.
pub fn affine(xs: &[f64], a: f64, b: f64) -> Vec<f64> {
    xs.iter().map(|&x| a * x + b).collect()
}

/// Adds two equal-length series.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_tslib::stats;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(white_noise(50, 1.0, 7), white_noise(50, 1.0, 7));
        assert_eq!(ar(&[0.5], 50, 1.0, 7), ar(&[0.5], 50, 1.0, 7));
        assert_eq!(random_walk(50, 0.0, 1.0, 7), random_walk(50, 0.0, 1.0, 7));
        assert_ne!(white_noise(50, 1.0, 7), white_noise(50, 1.0, 8));
    }

    #[test]
    fn white_noise_moments() {
        let xs = white_noise(20000, 2.0, 42);
        assert!(stats::mean(&xs).unwrap().abs() < 0.06);
        assert!((stats::std_dev(&xs).unwrap() - 2.0).abs() < 0.06);
    }

    #[test]
    fn ar1_autocorrelation_matches_phi() {
        let xs = ar(&[0.75], 30000, 1.0, 11);
        let rho = stats::acf(&xs, 1).unwrap();
        assert!((rho[1] - 0.75).abs() < 0.03, "rho1 = {}", rho[1]);
    }

    #[test]
    fn ar0_is_white_noise() {
        let xs = ar(&[], 1000, 1.0, 3);
        let rho = stats::acf(&xs, 1).unwrap();
        assert!(rho[1].abs() < 0.1);
    }

    #[test]
    fn ma1_acf_theory() {
        // MA(1): rho1 = theta / (1 + theta^2), rho2 = 0.
        let theta = 0.6;
        let xs = ma(&[theta], 40000, 1.0, 5);
        let rho = stats::acf(&xs, 2).unwrap();
        let expected = theta / (1.0 + theta * theta);
        assert!((rho[1] - expected).abs() < 0.02, "rho1 = {}", rho[1]);
        assert!(rho[2].abs() < 0.02, "rho2 = {}", rho[2]);
    }

    #[test]
    fn sinusoids_period() {
        let xs = sinusoids(100, &[(2.0, 10.0, 0.0)]);
        // Period-10 sine: x[t] == x[t+10] and amplitude 2.
        for t in 0..90 {
            assert!((xs[t] - xs[t + 10]).abs() < 1e-9);
        }
        // Period 10 is sampled at integer t, so the peak sample is
        // 2·sin(2π·2/10) ≈ 1.902, not the continuous amplitude 2.
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        assert!((max - 2.0 * (0.4 * std::f64::consts::PI).sin()).abs() < 1e-9);
    }

    #[test]
    fn trend_and_affine() {
        assert_eq!(linear_trend(3, 1.0, 2.0), vec![1.0, 3.0, 5.0]);
        assert_eq!(affine(&[1.0, 2.0], 3.0, 1.0), vec![4.0, 7.0]);
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn delay_preserves_length_and_shifts() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(delay(&xs, 2), vec![1.0, 1.0, 1.0, 2.0]);
        assert_eq!(delay(&xs, 0), xs.to_vec());
        assert!(delay(&[], 3).is_empty());
    }

    #[test]
    fn ema_smooth_reduces_variance() {
        let xs = white_noise(5000, 1.0, 9);
        let sm = ema_smooth(&xs, 0.2);
        assert_eq!(sm.len(), xs.len());
        assert!(stats::variance(&sm).unwrap() < stats::variance(&xs).unwrap());
    }

    #[test]
    fn ema_smooth_identity_at_alpha_one() {
        let xs = [5.0, -1.0, 2.5];
        assert_eq!(ema_smooth(&xs, 1.0), xs.to_vec());
    }

    #[test]
    fn random_walk_starts_near_start() {
        let xs = random_walk(10, 100.0, 0.001, 1);
        assert!((xs[0] - 100.0).abs() < 0.01);
    }
}
