//! # mc-datasets — workload datasets for the MultiCast reproduction
//!
//! Provides deterministic synthetic equivalents of the three real-world
//! datasets evaluated in the paper (Table I):
//!
//! | Dataset      | Dimensions | Length | Paper source            |
//! |--------------|------------|--------|-------------------------|
//! | Gas Rate     | 2          | 296    | darts (Box–Jenkins)     |
//! | Electricity  | 3          | 242    | ETDataset, 3-day resample |
//! | Weather      | 4          | 217    | MPI Jena weather station |
//!
//! The original files are not redistributable/offline-fetchable here, so
//! each is replaced by a *seeded generator* that reproduces the structural
//! properties the experiments exercise — dimension count, length, scale,
//! cross-dimensional coupling, trend and seasonality (see `DESIGN.md` §2
//! for the substitution argument). Generators are deterministic: the same
//! seed always yields bit-identical series, so every table in the
//! reproduction is replayable.
//!
//! The crate also exposes generic process generators ([`generators`]) used
//! by tests and ablations, and re-exports CSV loading from `mc-tslib` so
//! users with the real files can run the harness on them unchanged.

pub mod catalog;
pub mod electricity;
pub mod gas_rate;
pub mod generators;
pub mod weather;

pub use catalog::{DatasetInfo, PaperDataset};
pub use electricity::electricity;
pub use gas_rate::gas_rate;
pub use weather::weather;

/// Default seed used by the paper-dataset generators. All experiment
/// binaries use this value so their outputs are comparable run-to-run.
pub const DEFAULT_SEED: u64 = 0x4d43_4153_5400; // "MCAST\0"
