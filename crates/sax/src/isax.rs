//! iSAX: indexable SAX words with per-symbol cardinality
//! (Shieh & Keogh 2008 — the paper's ref [29], its source for SAX).
//!
//! An iSAX symbol is a cell index at a power-of-two cardinality; symbols in
//! one word may carry *different* cardinalities, which is what makes iSAX
//! words usable as adaptive index keys: a node splits by promoting one
//! symbol to the next cardinality. This module provides the word type,
//! promotion, containment tests, and conversion from a plain SAX encoding.

/// One iSAX symbol: a cell index valid at cardinality `card` (a power of 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ISaxSymbol {
    /// Cell index in `0..card`.
    pub cell: usize,
    /// Cardinality (number of cells); always a power of two here.
    pub card: usize,
}

impl ISaxSymbol {
    /// Creates a symbol, validating the invariants.
    ///
    /// # Panics
    /// If `card` is not a power of two ≥ 2 or `cell >= card`.
    pub fn new(cell: usize, card: usize) -> Self {
        assert!(card.is_power_of_two() && card >= 2, "cardinality must be a power of two >= 2");
        assert!(cell < card, "cell {cell} out of range for cardinality {card}");
        Self { cell, card }
    }

    /// Reduces this symbol to a lower cardinality (prefix of its bits).
    ///
    /// # Panics
    /// If `card` does not divide this symbol's cardinality.
    pub fn demote(self, card: usize) -> Self {
        assert!(card.is_power_of_two() && card >= 2 && card <= self.card);
        let shift = (self.card / card).trailing_zeros();
        Self { cell: self.cell >> shift, card }
    }

    /// Whether `other` (at equal or higher cardinality) falls inside this
    /// symbol's cell when demoted to this symbol's cardinality.
    pub fn contains(self, other: ISaxSymbol) -> bool {
        other.card >= self.card && other.demote(self.card).cell == self.cell
    }
}

/// An iSAX word: a sequence of symbols with possibly mixed cardinalities.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ISaxWord {
    symbols: Vec<ISaxSymbol>,
}

impl ISaxWord {
    /// Builds a word from SAX cell indices at a uniform cardinality.
    pub fn from_cells(cells: &[usize], card: usize) -> Self {
        Self { symbols: cells.iter().map(|&c| ISaxSymbol::new(c, card)).collect() }
    }

    /// The symbols.
    pub fn symbols(&self) -> &[ISaxSymbol] {
        &self.symbols
    }

    /// Word length (number of segments).
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the word is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Splits this word by promoting the symbol at `pos` one cardinality
    /// step: returns the two children (bit 0 and bit 1 refinements).
    /// This is the iSAX-index node-split operation.
    ///
    /// # Panics
    /// If `pos` is out of range.
    pub fn split_at(&self, pos: usize) -> (ISaxWord, ISaxWord) {
        assert!(pos < self.symbols.len(), "split position out of range");
        let mut lo = self.clone();
        let mut hi = self.clone();
        let s = self.symbols[pos];
        lo.symbols[pos] = ISaxSymbol::new(s.cell * 2, s.card * 2);
        hi.symbols[pos] = ISaxSymbol::new(s.cell * 2 + 1, s.card * 2);
        (lo, hi)
    }

    /// Whether a concrete word (uniform, high cardinality) belongs to the
    /// region this (possibly coarser) word denotes.
    pub fn contains(&self, concrete: &ISaxWord) -> bool {
        self.symbols.len() == concrete.symbols.len()
            && self
                .symbols
                .iter()
                .zip(&concrete.symbols)
                .all(|(mine, theirs)| mine.contains(*theirs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demote_drops_low_bits() {
        let s = ISaxSymbol::new(6, 8); // binary 110 at card 8
        assert_eq!(s.demote(4).cell, 3); // 11
        assert_eq!(s.demote(2).cell, 1); // 1
        assert_eq!(s.demote(8), s);
    }

    #[test]
    fn containment_follows_prefixes() {
        let coarse = ISaxSymbol::new(1, 2); // upper half
        assert!(coarse.contains(ISaxSymbol::new(2, 4)));
        assert!(coarse.contains(ISaxSymbol::new(3, 4)));
        assert!(!coarse.contains(ISaxSymbol::new(1, 4)));
        // A finer symbol cannot contain a coarser one.
        let fine = ISaxSymbol::new(2, 4);
        assert!(!fine.contains(coarse));
    }

    #[test]
    fn split_produces_disjoint_children() {
        let w = ISaxWord::from_cells(&[1, 0, 1], 2);
        let (lo, hi) = w.split_at(1);
        assert_eq!(lo.symbols()[1], ISaxSymbol::new(0, 4));
        assert_eq!(hi.symbols()[1], ISaxSymbol::new(1, 4));
        // Children partition the parent's region.
        let concrete_lo = ISaxWord::from_cells(&[2, 0, 3], 4);
        let concrete_hi = ISaxWord::from_cells(&[2, 1, 3], 4);
        assert!(w.contains(&concrete_lo) && w.contains(&concrete_hi));
        assert!(lo.contains(&concrete_lo) && !lo.contains(&concrete_hi));
        assert!(hi.contains(&concrete_hi) && !hi.contains(&concrete_lo));
    }

    #[test]
    fn word_containment_requires_equal_length() {
        let a = ISaxWord::from_cells(&[0, 1], 2);
        let b = ISaxWord::from_cells(&[0, 1, 0], 4);
        assert!(!a.contains(&b));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        ISaxSymbol::new(0, 3);
    }
}
