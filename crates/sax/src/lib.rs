//! # mc-sax — Symbolic Aggregate approXimation substrate
//!
//! Full from-scratch implementation of the quantization stack MultiCast
//! uses to cut token counts (paper §III-B):
//!
//! - [`paa`] — Piecewise Aggregate Approximation: x-axis compression by
//!   segment averaging, with exact reconstruction-by-expansion;
//! - [`gaussian`] — N(0,1) quantile breakpoints (equiprobable cells) via a
//!   high-precision inverse normal CDF, plus per-cell representative
//!   values used for decoding forecasts back to numbers;
//! - [`alphabet`] — the paper's two symbol encodings: alphabetical
//!   (`a`, `b`, …, ≤ 26 symbols) and digital (`0`–`9`, ≤ 10 symbols —
//!   the reason Table IX has an `N/A` cell at size 20);
//! - [`encoder`] — the end-to-end [`encoder::SaxEncoder`]: z-normalize →
//!   PAA → discretize → symbols, and the inverse decode used after the LLM
//!   emits forecast symbols;
//! - [`mindist`] — the lower-bounding MINDIST distance between SAX words;
//! - [`isax`] — indexable SAX words with per-symbol cardinality promotion
//!   (the paper cites iSAX as the SAX source);
//! - [`index`] — an in-memory iSAX tree with approximate and exact
//!   (MINDIST branch-and-bound) nearest-neighbour search.

pub mod alphabet;
pub mod encoder;
pub mod gaussian;
pub mod index;
pub mod isax;
pub mod mindist;
pub mod paa;

pub use alphabet::{SaxAlphabet, SaxAlphabetKind};
pub use encoder::{SaxConfig, SaxEncoder, SaxEncoding};
pub use gaussian::{breakpoints, cell_of, cell_representative, inverse_normal_cdf};
pub use index::ISaxIndex;
pub use paa::{inverse_paa, paa};
