//! End-to-end SAX encoding/decoding for the forecasting pipeline.
//!
//! Encoding (paper §III-B): z-normalize the series, compress the x-axis
//! with PAA, discretize each coefficient against the Gaussian breakpoints,
//! and emit one symbol character per segment. The returned
//! [`SaxEncoding`] keeps the normalization state so that symbols the LLM
//! *generates* can be decoded back to values on the original scale —
//! each symbol maps to its cell's probability-midpoint representative,
//! un-normalized, and (optionally) expanded back to `segment_len` points.

use mc_tslib::transform::{znorm, znorm_inverse, ZNormState};

use crate::alphabet::SaxAlphabet;
use crate::gaussian::{breakpoints, cell_of, cell_representative};
use crate::paa::{inverse_paa, paa};

/// SAX configuration: the paper's two knobs plus the symbol encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaxConfig {
    /// Points per PAA segment (Table II: 3, 6, 9; "SAX segment length").
    pub segment_len: usize,
    /// Symbol alphabet (kind + size; Table II sizes: 5, 10, 20).
    pub alphabet: SaxAlphabet,
}

/// The result of encoding a series: the symbol word plus everything needed
/// to decode generated symbols back to the original scale.
#[derive(Debug, Clone, PartialEq)]
pub struct SaxEncoding {
    /// Symbol indices, one per PAA segment.
    pub symbols: Vec<usize>,
    /// Normalization state of the *training* series (reused for decoding).
    pub znorm: ZNormState,
    /// Original series length the encoding covers.
    pub original_len: usize,
    /// The configuration used.
    pub config: SaxConfig,
}

/// Stateless SAX encoder for a fixed configuration.
///
/// ```
/// use mc_sax::alphabet::{SaxAlphabet, SaxAlphabetKind};
/// use mc_sax::encoder::{SaxConfig, SaxEncoder};
///
/// let encoder = SaxEncoder::new(SaxConfig {
///     segment_len: 3,
///     alphabet: SaxAlphabet::new(SaxAlphabetKind::Alphabetic, 5).unwrap(),
/// });
/// let series: Vec<f64> = (0..30).map(|t| t as f64).collect();
/// let encoding = encoder.encode(&series);
/// let word = encoder.to_string(&encoding.symbols);
/// assert_eq!(word.len(), 10);                    // 30 points / segment 3
/// assert!(word.starts_with('a') && word.ends_with('e')); // rising ramp
/// ```
#[derive(Debug, Clone)]
pub struct SaxEncoder {
    config: SaxConfig,
    breaks: Vec<f64>,
}

impl SaxEncoder {
    /// Creates an encoder; precomputes the Gaussian breakpoints.
    ///
    /// # Panics
    /// If `segment_len == 0`.
    pub fn new(config: SaxConfig) -> Self {
        assert!(config.segment_len > 0, "segment_len must be positive");
        Self { breaks: breakpoints(config.alphabet.size()), config }
    }

    /// The configuration.
    pub fn config(&self) -> SaxConfig {
        self.config
    }

    /// Encodes a raw series into a SAX word.
    pub fn encode(&self, xs: &[f64]) -> SaxEncoding {
        let (z, state) = znorm(xs).expect("encode requires a non-empty series");
        let coeffs = paa(&z, self.config.segment_len);
        let symbols = coeffs.iter().map(|&c| cell_of(c, &self.breaks)).collect();
        SaxEncoding { symbols, znorm: state, original_len: xs.len(), config: self.config }
    }

    /// Renders a SAX word as its character string (e.g. `"abba"`), the text
    /// that gets tokenized and fed to the LLM.
    pub fn to_string(&self, symbols: &[usize]) -> String {
        symbols.iter().map(|&s| self.config.alphabet.symbol(s)).collect()
    }

    /// Parses a character string back to symbol indices; `None` if any
    /// character is outside the alphabet.
    pub fn parse(&self, text: &str) -> Option<Vec<usize>> {
        text.chars().map(|c| self.config.alphabet.index(c)).collect()
    }

    /// Decodes symbols to values on the original scale, one value per
    /// *segment* (no expansion).
    pub fn decode_segments(&self, symbols: &[usize], state: ZNormState) -> Vec<f64> {
        let a = self.config.alphabet.size();
        let z: Vec<f64> = symbols.iter().map(|&s| cell_representative(s, a)).collect();
        znorm_inverse(&z, state)
    }

    /// Decodes symbols and expands each back to `segment_len` points,
    /// yielding `target_len` values on the original scale. This is the
    /// inverse used after the LLM forecasts in symbol space.
    pub fn decode_expanded(
        &self,
        symbols: &[usize],
        state: ZNormState,
        target_len: usize,
    ) -> Vec<f64> {
        let per_segment = self.decode_segments(symbols, state);
        // Normalize in the segment domain, expand as a staircase.
        inverse_paa(&per_segment, self.config.segment_len, target_len)
    }

    /// Number of segments (symbols) an `n`-point series compresses to.
    pub fn segments_for(&self, n: usize) -> usize {
        n.div_ceil(self.config.segment_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::SaxAlphabetKind;

    fn encoder(segment_len: usize, size: usize, kind: SaxAlphabetKind) -> SaxEncoder {
        SaxEncoder::new(SaxConfig { segment_len, alphabet: SaxAlphabet::new(kind, size).unwrap() })
    }

    #[test]
    fn encode_produces_expected_word_shape() {
        let e = encoder(3, 5, SaxAlphabetKind::Alphabetic);
        let xs: Vec<f64> = (0..30).map(|t| t as f64).collect();
        let enc = e.encode(&xs);
        assert_eq!(enc.symbols.len(), 10);
        assert_eq!(enc.original_len, 30);
        // Monotone ramp → non-decreasing symbols from low to high cells.
        for w in enc.symbols.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(enc.symbols[0], 0);
        assert_eq!(*enc.symbols.last().unwrap(), 4);
    }

    #[test]
    fn string_round_trip() {
        let e = encoder(2, 5, SaxAlphabetKind::Alphabetic);
        let xs: Vec<f64> = (0..20).map(|t| ((t as f64) * 0.9).sin()).collect();
        let enc = e.encode(&xs);
        let s = e.to_string(&enc.symbols);
        assert_eq!(s.len(), enc.symbols.len());
        assert_eq!(e.parse(&s).unwrap(), enc.symbols);
        assert!(e.parse("xyz!").is_none());
    }

    #[test]
    fn digital_alphabet_word() {
        let e = encoder(2, 10, SaxAlphabetKind::Digital);
        let xs: Vec<f64> = (0..20).map(|t| t as f64).collect();
        let s = e.to_string(&e.encode(&xs).symbols);
        assert!(s.chars().all(|c| c.is_ascii_digit()), "digital word: {s}");
        assert!(s.starts_with('0'));
        assert!(s.ends_with('9'));
    }

    #[test]
    fn decode_stays_within_value_range() {
        let e = encoder(3, 8, SaxAlphabetKind::Alphabetic);
        let xs: Vec<f64> = (0..60).map(|t| 50.0 + 10.0 * ((t as f64) * 0.4).sin()).collect();
        let enc = e.encode(&xs);
        let dec = e.decode_expanded(&enc.symbols, enc.znorm, xs.len());
        assert_eq!(dec.len(), xs.len());
        // Decoded staircase stays within a reasonable band of the original.
        let (min, max) =
            xs.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        for &v in &dec {
            assert!(v > min - 10.0 && v < max + 10.0, "decoded {v} far out of band");
        }
    }

    #[test]
    fn reconstruction_error_shrinks_with_alphabet() {
        let xs: Vec<f64> =
            (0..120).map(|t| ((t as f64) * 0.23).sin() + 0.3 * ((t as f64) * 0.61).cos()).collect();
        let mut errs = Vec::new();
        for size in [2usize, 5, 10, 20] {
            let e = encoder(1, size, SaxAlphabetKind::Alphabetic);
            let enc = e.encode(&xs);
            let dec = e.decode_expanded(&enc.symbols, enc.znorm, xs.len());
            let mse: f64 =
                xs.iter().zip(&dec).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / xs.len() as f64;
            errs.push(mse);
        }
        for w in errs.windows(2) {
            assert!(w[1] < w[0], "finer alphabets must reconstruct better: {errs:?}");
        }
    }

    #[test]
    fn segments_for_matches_encode() {
        let e = encoder(3, 5, SaxAlphabetKind::Alphabetic);
        for n in [1usize, 3, 7, 30, 31] {
            let xs: Vec<f64> = (0..n).map(|t| (t as f64 * 0.7).sin() + t as f64 * 0.01).collect();
            assert_eq!(e.encode(&xs).symbols.len(), e.segments_for(n), "n={n}");
        }
    }

    #[test]
    fn one_symbol_per_timestamp_claim() {
        // The paper: "each value per timestamp is consisted of only one
        // token instead of multiple" — with segment_len 1 the word length
        // equals the series length.
        let e = encoder(1, 5, SaxAlphabetKind::Alphabetic);
        let xs: Vec<f64> = (0..17).map(|t| (t as f64).cos()).collect();
        assert_eq!(e.encode(&xs).symbols.len(), 17);
    }
}
