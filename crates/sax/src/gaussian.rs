//! Gaussian quantile machinery for SAX discretization.
//!
//! SAX assumes z-normalized series values are ≈ N(0,1) distributed and
//! places breakpoints at the standard-normal quantiles `Φ⁻¹(i/a)` so all
//! `a` symbols are equiprobable. Decoding a symbol back to a value (needed
//! when the LLM forecasts in symbol space) uses the *probability-midpoint*
//! representative `Φ⁻¹((i + ½)/a)`, the median of the cell.

/// Inverse standard-normal CDF (quantile function) via Acklam's rational
/// approximation; relative error < 1.2e-9 over (0, 1) — far below the
/// quantization granularity SAX ever needs.
///
/// # Panics
/// If `p` is outside the open interval (0, 1).
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Standard-normal CDF via the complementary error function
/// (Abramowitz–Stegun 7.1.26-style polynomial, |error| < 7.5e-8, plus the
/// symmetric reflection for accuracy on both tails).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function (W. J. Cody–style rational approximation;
/// sufficient here because [`inverse_normal_cdf`] only uses it inside a
/// contraction step).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// The `a - 1` SAX breakpoints for an alphabet of size `a`:
/// `beta_i = Φ⁻¹((i+1)/a)` for `i` in `0..a-1`, strictly increasing.
///
/// # Panics
/// If `a < 2`.
pub fn breakpoints(a: usize) -> Vec<f64> {
    assert!(a >= 2, "alphabet size must be at least 2, got {a}");
    (1..a).map(|i| inverse_normal_cdf(i as f64 / a as f64)).collect()
}

/// Maps a z-normalized value to its SAX cell index in `0..a` given the
/// breakpoints from [`breakpoints`]. Cell `i` is `(beta_{i-1}, beta_i]`
/// with open ends at ±∞; a binary search keeps this O(log a).
pub fn cell_of(value: f64, breaks: &[f64]) -> usize {
    breaks.partition_point(|&b| b < value)
}

/// Probability-midpoint representative of cell `i` (its conditional median
/// under N(0,1)): `Φ⁻¹((i + 0.5) / a)`.
///
/// # Panics
/// If `i >= a` or `a < 2`.
pub fn cell_representative(i: usize, a: usize) -> f64 {
    assert!(a >= 2, "alphabet size must be at least 2");
    assert!(i < a, "cell {i} out of range for alphabet {a}");
    inverse_normal_cdf((i as f64 + 0.5) / a as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_cdf_reference_values() {
        // Classic table values.
        assert!((inverse_normal_cdf(0.5) - 0.0).abs() < 1e-12);
        assert!((inverse_normal_cdf(0.975) - 1.959963984540054).abs() < 1e-8);
        assert!((inverse_normal_cdf(0.025) + 1.959963984540054).abs() < 1e-8);
        assert!((inverse_normal_cdf(0.8413447460685429) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn inverse_cdf_symmetry() {
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.49] {
            let a = inverse_normal_cdf(p);
            let b = inverse_normal_cdf(1.0 - p);
            assert!((a + b).abs() < 1e-8, "asymmetry at p={p}: {a} vs {b}");
        }
    }

    #[test]
    fn cdf_round_trip() {
        for &x in &[-3.0, -1.5, -0.2, 0.0, 0.7, 2.5] {
            let p = normal_cdf(x);
            assert!((inverse_normal_cdf(p) - x).abs() < 1e-6, "round trip at {x}");
        }
    }

    #[test]
    fn breakpoints_match_sax_literature() {
        // Published SAX breakpoint table for a = 3: (-0.43, 0.43);
        // a = 4: (-0.67, 0, 0.67); a = 5: (-0.84, -0.25, 0.25, 0.84).
        let b3 = breakpoints(3);
        assert!((b3[0] + 0.4307).abs() < 1e-3 && (b3[1] - 0.4307).abs() < 1e-3, "{b3:?}");
        let b4 = breakpoints(4);
        assert!(
            (b4[0] + 0.6745).abs() < 1e-3 && b4[1].abs() < 1e-12 && (b4[2] - 0.6745).abs() < 1e-3
        );
        let b5 = breakpoints(5);
        assert!((b5[0] + 0.8416).abs() < 1e-3 && (b5[3] - 0.8416).abs() < 1e-3);
    }

    #[test]
    fn breakpoints_strictly_increasing() {
        for a in [2usize, 5, 10, 20, 26] {
            let b = breakpoints(a);
            assert_eq!(b.len(), a - 1);
            for w in b.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn cells_partition_the_line() {
        let breaks = breakpoints(5);
        assert_eq!(cell_of(-10.0, &breaks), 0);
        assert_eq!(cell_of(10.0, &breaks), 4);
        assert_eq!(cell_of(0.0, &breaks), 2);
        // Just below/above a breakpoint.
        assert_eq!(cell_of(breaks[0] - 1e-9, &breaks), 0);
        assert_eq!(cell_of(breaks[0] + 1e-9, &breaks), 1);
    }

    #[test]
    fn representative_lies_inside_its_cell() {
        for a in [2usize, 5, 10, 20] {
            let breaks = breakpoints(a);
            for i in 0..a {
                let r = cell_representative(i, a);
                assert_eq!(cell_of(r, &breaks), i, "representative of cell {i}/{a} escaped");
            }
        }
    }

    #[test]
    fn cells_are_equiprobable() {
        // Probability mass between consecutive breakpoints must be 1/a.
        let a = 8;
        let breaks = breakpoints(a);
        let mut prev = 0.0;
        for &b in &breaks {
            let p = normal_cdf(b);
            assert!((p - prev - 1.0 / a as f64).abs() < 1e-6);
            prev = p;
        }
        assert!((1.0 - prev - 1.0 / a as f64).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_alphabet_rejected() {
        breakpoints(1);
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn inverse_cdf_domain_checked() {
        inverse_normal_cdf(1.0);
    }
}
