//! Piecewise Aggregate Approximation (Keogh et al., 2001; Yi & Faloutsos,
//! 2000 — the paper's refs [30], [31]).
//!
//! PAA compresses a series on the x-axis by replacing each block of
//! `segment_len` consecutive values with their mean. The paper's "SAX
//! segment length" parameter (Table II: 3, 6, 9) is exactly this block
//! size; larger blocks mean fewer segments, fewer symbols, fewer tokens.

/// PAA with a fixed *segment length* (block size).
///
/// A trailing partial block is averaged over its actual length, so every
/// input point contributes to exactly one coefficient.
///
/// # Panics
/// If `segment_len == 0` or `xs` is empty.
pub fn paa(xs: &[f64], segment_len: usize) -> Vec<f64> {
    assert!(segment_len > 0, "segment_len must be positive");
    assert!(!xs.is_empty(), "PAA of an empty series");
    xs.chunks(segment_len).map(|c| c.iter().sum::<f64>() / c.len() as f64).collect()
}

/// Expands PAA coefficients back to the original sampling rate by holding
/// each coefficient for its block ("staircase" reconstruction).
///
/// `original_len` controls the final partial block, matching [`paa`]'s
/// chunking; the result always has exactly `original_len` values.
///
/// # Panics
/// If the coefficient count is inconsistent with
/// `ceil(original_len / segment_len)`.
pub fn inverse_paa(coeffs: &[f64], segment_len: usize, original_len: usize) -> Vec<f64> {
    assert!(segment_len > 0, "segment_len must be positive");
    let expected = original_len.div_ceil(segment_len);
    assert_eq!(
        coeffs.len(),
        expected,
        "coefficient count {} inconsistent with length {original_len} / segment {segment_len}",
        coeffs.len()
    );
    let mut out = Vec::with_capacity(original_len);
    for (i, &c) in coeffs.iter().enumerate() {
        let block = segment_len.min(original_len - i * segment_len);
        out.extend(std::iter::repeat_n(c, block));
    }
    out
}

/// Mean squared reconstruction error of a PAA round trip; used by tests and
/// the ablation harness to quantify the x-axis information loss the paper
/// discusses ("quantizing the time series leads to a loss of information").
pub fn reconstruction_mse(xs: &[f64], segment_len: usize) -> f64 {
    let rec = inverse_paa(&paa(xs, segment_len), segment_len, xs.len());
    xs.iter().zip(&rec).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paa_averages_blocks() {
        let xs = [1.0, 3.0, 5.0, 7.0, 9.0, 11.0];
        assert_eq!(paa(&xs, 2), vec![2.0, 6.0, 10.0]);
        assert_eq!(paa(&xs, 3), vec![3.0, 9.0]);
        assert_eq!(paa(&xs, 6), vec![6.0]);
    }

    #[test]
    fn paa_partial_tail_block() {
        let xs = [2.0, 4.0, 6.0, 10.0];
        assert_eq!(paa(&xs, 3), vec![4.0, 10.0]);
    }

    #[test]
    fn paa_segment_one_is_identity() {
        let xs = [1.5, -2.0, 3.25];
        assert_eq!(paa(&xs, 1), xs.to_vec());
    }

    #[test]
    fn inverse_expands_staircase() {
        let rec = inverse_paa(&[2.0, 6.0], 2, 4);
        assert_eq!(rec, vec![2.0, 2.0, 6.0, 6.0]);
        let rec = inverse_paa(&[4.0, 10.0], 3, 4);
        assert_eq!(rec, vec![4.0, 4.0, 4.0, 10.0]);
    }

    #[test]
    fn round_trip_preserves_block_means() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let rec = inverse_paa(&paa(&xs, 3), 3, xs.len());
        assert_eq!(rec.len(), xs.len());
        // Each reconstructed block holds the block mean.
        assert_eq!(&rec[..3], &[2.0, 2.0, 2.0]);
        assert_eq!(&rec[3..6], &[5.0, 5.0, 5.0]);
        assert_eq!(rec[6], 7.0);
    }

    #[test]
    fn constant_series_reconstructs_exactly() {
        let xs = [4.2; 10];
        assert_eq!(reconstruction_mse(&xs, 3), 0.0);
    }

    #[test]
    fn coarser_segments_lose_more() {
        let xs: Vec<f64> = (0..60).map(|t| (t as f64 * 0.7).sin()).collect();
        let e3 = reconstruction_mse(&xs, 3);
        let e6 = reconstruction_mse(&xs, 6);
        let e9 = reconstruction_mse(&xs, 9);
        assert!(e3 <= e6 && e6 <= e9, "loss must grow with segment: {e3} {e6} {e9}");
        assert!(e3 > 0.0);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn inverse_checks_count() {
        inverse_paa(&[1.0, 2.0, 3.0], 2, 4);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn paa_rejects_empty() {
        paa(&[], 2);
    }
}
