//! SAX symbol alphabets.
//!
//! The paper evaluates two encodings (§III-B, Tables VIII–IX): alphabetical
//! characters (`a`, `b`, …) and digits (`0`–`9`). Digits cap the alphabet
//! at 10 symbols — the `N/A` cell in Table IX — while letters go to 26.

/// Which character set encodes SAX symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SaxAlphabetKind {
    /// `a`, `b`, `c`, … (up to 26 symbols).
    Alphabetic,
    /// `0`, `1`, `2`, … (up to 10 symbols).
    Digital,
}

impl SaxAlphabetKind {
    /// Maximum supported alphabet size for this encoding.
    pub fn max_size(self) -> usize {
        match self {
            SaxAlphabetKind::Alphabetic => 26,
            SaxAlphabetKind::Digital => 10,
        }
    }

    /// Name used in reports ("alphabetical" / "digital", as in the paper).
    pub fn display_name(self) -> &'static str {
        match self {
            SaxAlphabetKind::Alphabetic => "alphabetical",
            SaxAlphabetKind::Digital => "digital",
        }
    }
}

/// A sized SAX alphabet: bijection between cell indices `0..size` and
/// characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaxAlphabet {
    kind: SaxAlphabetKind,
    size: usize,
}

impl SaxAlphabet {
    /// Creates an alphabet; fails (returns `None`) if `size` is below 2 or
    /// exceeds the encoding's capacity — e.g. `Digital` with size 20, which
    /// is exactly the combination the paper marks `N/A`.
    pub fn new(kind: SaxAlphabetKind, size: usize) -> Option<Self> {
        if size >= 2 && size <= kind.max_size() {
            Some(Self { kind, size })
        } else {
            None
        }
    }

    /// The encoding kind.
    pub fn kind(self) -> SaxAlphabetKind {
        self.kind
    }

    /// Number of symbols.
    pub fn size(self) -> usize {
        self.size
    }

    /// Character of symbol index `i`.
    ///
    /// # Panics
    /// If `i >= size`.
    pub fn symbol(self, i: usize) -> char {
        assert!(i < self.size, "symbol index {i} out of range for alphabet size {}", self.size);
        match self.kind {
            SaxAlphabetKind::Alphabetic => (b'a' + i as u8) as char,
            SaxAlphabetKind::Digital => (b'0' + i as u8) as char,
        }
    }

    /// Symbol index of character `c`, if it belongs to this alphabet.
    pub fn index(self, c: char) -> Option<usize> {
        let i = match self.kind {
            SaxAlphabetKind::Alphabetic => (c as u32).checked_sub('a' as u32)? as usize,
            SaxAlphabetKind::Digital => (c as u32).checked_sub('0' as u32)? as usize,
        };
        (i < self.size).then_some(i)
    }

    /// All characters of the alphabet in index order.
    pub fn chars(self) -> impl Iterator<Item = char> {
        (0..self.size).map(move |i| self.symbol(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabetic_round_trip() {
        let a = SaxAlphabet::new(SaxAlphabetKind::Alphabetic, 5).unwrap();
        for i in 0..5 {
            assert_eq!(a.index(a.symbol(i)), Some(i));
        }
        assert_eq!(a.symbol(0), 'a');
        assert_eq!(a.symbol(4), 'e');
        assert_eq!(a.index('f'), None);
        assert_eq!(a.index('0'), None);
    }

    #[test]
    fn digital_round_trip() {
        let a = SaxAlphabet::new(SaxAlphabetKind::Digital, 10).unwrap();
        assert_eq!(a.symbol(0), '0');
        assert_eq!(a.symbol(9), '9');
        assert_eq!(a.index('7'), Some(7));
        assert_eq!(a.index('a'), None);
    }

    #[test]
    fn digital_caps_at_ten() {
        // Table IX's N/A cell: no 20-symbol digital alphabet.
        assert!(SaxAlphabet::new(SaxAlphabetKind::Digital, 20).is_none());
        assert!(SaxAlphabet::new(SaxAlphabetKind::Alphabetic, 20).is_some());
        assert!(SaxAlphabet::new(SaxAlphabetKind::Alphabetic, 27).is_none());
        assert!(SaxAlphabet::new(SaxAlphabetKind::Digital, 1).is_none());
    }

    #[test]
    fn chars_enumerates_in_order() {
        let a = SaxAlphabet::new(SaxAlphabetKind::Alphabetic, 3).unwrap();
        let cs: String = a.chars().collect();
        assert_eq!(cs, "abc");
    }

    #[test]
    fn display_names() {
        assert_eq!(SaxAlphabetKind::Alphabetic.display_name(), "alphabetical");
        assert_eq!(SaxAlphabetKind::Digital.display_name(), "digital");
    }
}
