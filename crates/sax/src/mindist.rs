//! MINDIST: the lower-bounding distance between SAX words
//! (Lin et al.; carried into iSAX, the paper's ref [29]).
//!
//! `MINDIST(Q̂, Ĉ) = sqrt(n/w) * sqrt(Σ dist(q̂_i, ĉ_i)²)` where the
//! per-symbol distance is 0 for adjacent-or-equal cells and otherwise the
//! gap between the nearer breakpoints. It lower-bounds the Euclidean
//! distance of the original series — the property that makes SAX usable
//! for indexing, verified by a property test in this module.

use crate::gaussian::breakpoints;

/// Per-symbol distance table for alphabet size `a`:
/// `table[r][c] = 0` if `|r - c| <= 1`, else `beta_{max(r,c)-1} - beta_{min(r,c)}`.
pub fn dist_table(a: usize) -> Vec<Vec<f64>> {
    let b = breakpoints(a);
    let mut table = vec![vec![0.0; a]; a];
    for (r, row) in table.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            if r.abs_diff(c) > 1 {
                let (lo, hi) = (r.min(c), r.max(c));
                *cell = b[hi - 1] - b[lo];
            }
        }
    }
    table
}

/// MINDIST between two equal-length SAX words over the same alphabet,
/// for original series of length `n`.
///
/// # Panics
/// If the words differ in length, are empty, or contain symbols ≥ `a`.
pub fn mindist(word_a: &[usize], word_b: &[usize], a: usize, n: usize) -> f64 {
    assert_eq!(word_a.len(), word_b.len(), "words must have equal length");
    assert!(!word_a.is_empty(), "words must be non-empty");
    let table = dist_table(a);
    let sum: f64 = word_a
        .iter()
        .zip(word_b)
        .map(|(&r, &c)| {
            let d = table[r][c];
            d * d
        })
        .sum();
    ((n as f64 / word_a.len() as f64) * sum).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{SaxAlphabet, SaxAlphabetKind};
    use crate::encoder::{SaxConfig, SaxEncoder};

    #[test]
    fn adjacent_cells_have_zero_distance() {
        let t = dist_table(5);
        for (r, row) in t.iter().enumerate() {
            assert_eq!(row[r], 0.0);
            if r + 1 < 5 {
                assert_eq!(row[r + 1], 0.0);
                assert_eq!(t[r + 1][r], 0.0);
            }
        }
    }

    #[test]
    fn table_is_symmetric_and_monotone() {
        let t = dist_table(8);
        for (r, row) in t.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                assert_eq!(v, t[c][r]);
            }
        }
        // Distance grows as cells separate.
        assert!(t[0][3] > t[0][2]);
        assert!(t[0][7] > t[0][4]);
    }

    #[test]
    fn identical_words_have_zero_mindist() {
        assert_eq!(mindist(&[0, 1, 2], &[0, 1, 2], 5, 30), 0.0);
    }

    #[test]
    fn mindist_lower_bounds_euclidean() {
        // The defining SAX property: MINDIST(Â, B̂) <= ||A - B||₂ for
        // z-normalized series. Checked over a grid of synthetic pairs.
        let enc = SaxEncoder::new(SaxConfig {
            segment_len: 4,
            alphabet: SaxAlphabet::new(SaxAlphabetKind::Alphabetic, 6).unwrap(),
        });
        let n = 64;
        for seed in 0..8u64 {
            // Deterministic pseudo-random pair of z-normalized-ish series.
            let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            let mut gen = || {
                let xs: Vec<f64> = (0..n)
                    .map(|_| {
                        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                    })
                    .collect();
                // z-normalize so SAX's Gaussian assumption applies.
                let m = xs.iter().sum::<f64>() / n as f64;
                let sd = (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64).sqrt();
                xs.iter().map(|x| (x - m) / sd).collect::<Vec<f64>>()
            };
            let a = gen();
            let b = gen();
            let wa = enc.encode(&a).symbols;
            let wb = enc.encode(&b).symbols;
            let md = mindist(&wa, &wb, 6, n);
            let euclid: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
            assert!(
                md <= euclid + 1e-9,
                "MINDIST {md} must lower-bound Euclidean {euclid} (seed {seed})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn unequal_words_rejected() {
        mindist(&[0, 1], &[0], 5, 10);
    }
}
