//! In-memory iSAX index (Shieh & Keogh 2008 — the paper's ref [29]).
//!
//! A tree over iSAX words with **per-symbol cardinality promotion**:
//!
//! - root children live at cardinality 2 in every position (the coarsest
//!   iSAX words);
//! - a leaf that overflows splits by promoting one position to the next
//!   power-of-two cardinality ([`crate::isax::ISaxWord::split_at`]); its
//!   entries are redistributed between the two refined children;
//! - positions are promoted lowest-cardinality-first, so refinement is
//!   balanced across the word; when every position has reached the
//!   alphabet's full cardinality the leaf simply stays oversized
//!   (identical words cannot be separated further).
//!
//! Queries:
//!
//! - [`ISaxIndex::approximate_search`] — descend to the query's leaf and
//!   scan it (the classic cheap iSAX approximation);
//! - [`ISaxIndex::exact_search`] — branch-and-bound over the whole tree
//!   using MINDIST as the lower bound; guaranteed to return the true
//!   nearest neighbour under Euclidean distance on z-normalized series
//!   (verified against a linear scan in the tests).

use crate::encoder::{SaxConfig, SaxEncoder};
use crate::isax::ISaxWord;
use crate::mindist::mindist;
use mc_tslib::transform::znorm;

/// One indexed entry: caller-supplied id plus the normalized series and
/// its full-cardinality SAX cells.
#[derive(Debug, Clone)]
struct Entry {
    id: usize,
    normalized: Vec<f64>,
    cells: Vec<usize>,
}

impl Entry {
    fn full_word(&self, base_card: usize) -> ISaxWord {
        ISaxWord::from_cells(&self.cells, base_card)
    }
}

#[derive(Debug)]
enum Node {
    Leaf(Vec<Entry>),
    Internal(Vec<(ISaxWord, Node)>),
}

/// An iSAX index over fixed-length series.
#[derive(Debug)]
pub struct ISaxIndex {
    encoder: SaxEncoder,
    series_len: usize,
    leaf_capacity: usize,
    /// Root children keyed by all-cardinality-2 words.
    root: Vec<(ISaxWord, Node)>,
    base_cardinality: usize,
    len: usize,
}

impl ISaxIndex {
    /// Creates an index for series of exactly `series_len` points.
    ///
    /// # Panics
    /// If the alphabet size is not a power of two (iSAX splitting needs
    /// binary cardinality promotion), `leaf_capacity == 0`, or the series
    /// are shorter than one segment.
    pub fn new(config: SaxConfig, series_len: usize, leaf_capacity: usize) -> Self {
        assert!(
            config.alphabet.size().is_power_of_two(),
            "iSAX requires a power-of-two alphabet, got {}",
            config.alphabet.size()
        );
        assert!(leaf_capacity > 0, "leaf capacity must be positive");
        assert!(series_len >= config.segment_len, "series shorter than one segment");
        Self {
            encoder: SaxEncoder::new(config),
            series_len,
            leaf_capacity,
            root: Vec::new(),
            base_cardinality: config.alphabet.size(),
            len: 0,
        }
    }

    /// Number of indexed series.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn encode_entry(&self, id: usize, series: &[f64]) -> Entry {
        let (normalized, _) = znorm(series).expect("non-empty series");
        let cells = self.encoder.encode(series).symbols;
        Entry { id, normalized, cells }
    }

    /// Inserts a series under `id`.
    ///
    /// # Panics
    /// If the series length differs from the index's configured length.
    pub fn insert(&mut self, id: usize, series: &[f64]) {
        assert_eq!(series.len(), self.series_len, "series length mismatch");
        let entry = self.encode_entry(id, series);
        let full = entry.full_word(self.base_cardinality);
        let coarse = demote_all(&full, 2);
        let base = self.base_cardinality;
        let capacity = self.leaf_capacity;
        match self.root.iter_mut().find(|(w, _)| *w == coarse) {
            Some((word, node)) => {
                let word = word.clone();
                insert_rec(node, &word, entry, capacity, base);
            }
            None => self.root.push((coarse, Node::Leaf(vec![entry]))),
        }
        self.len += 1;
    }

    /// Approximate nearest neighbour: descend to the query's region and
    /// return the best match inside it (`None` on an empty index or when
    /// no region covers the query).
    pub fn approximate_search(&self, query: &[f64]) -> Option<(usize, f64)> {
        assert_eq!(query.len(), self.series_len, "query length mismatch");
        let probe = self.encode_entry(usize::MAX, query);
        let full = probe.full_word(self.base_cardinality);
        let coarse = demote_all(&full, 2);
        let mut node = &self.root.iter().find(|(w, _)| *w == coarse)?.1;
        loop {
            match node {
                Node::Leaf(entries) => {
                    return entries
                        .iter()
                        .map(|e| (e.id, euclidean(&probe.normalized, &e.normalized)))
                        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
                }
                Node::Internal(children) => {
                    match children.iter().find(|(w, _)| w.contains(&full)) {
                        Some((_, child)) => node = child,
                        None => return None,
                    }
                }
            }
        }
    }

    /// Exact nearest neighbour via MINDIST branch-and-bound.
    pub fn exact_search(&self, query: &[f64]) -> Option<(usize, f64)> {
        assert_eq!(query.len(), self.series_len, "query length mismatch");
        let probe = self.encode_entry(usize::MAX, query);
        let a = self.base_cardinality;
        let n = self.series_len;

        // Seed the upper bound with the cheap approximate answer.
        let mut best: Option<(usize, f64)> = self.approximate_search(query);
        let mut stack: Vec<&Node> = self.root.iter().map(|(_, node)| node).collect();
        while let Some(node) = stack.pop() {
            match node {
                Node::Leaf(entries) => {
                    for e in entries {
                        let lb = mindist(&probe.cells, &e.cells, a, n);
                        if let Some((_, ub)) = best {
                            if lb >= ub {
                                continue;
                            }
                        }
                        let d = euclidean(&probe.normalized, &e.normalized);
                        if best.is_none_or(|(_, ub)| d < ub) {
                            best = Some((e.id, d));
                        }
                    }
                }
                Node::Internal(children) => {
                    for (_, child) in children {
                        stack.push(child);
                    }
                }
            }
        }
        best
    }

    /// Total leaves (exposed for tests asserting split behaviour).
    pub fn leaf_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf(_) => 1,
                Node::Internal(children) => children.iter().map(|(_, c)| count(c)).sum(),
            }
        }
        self.root.iter().map(|(_, node)| count(node)).sum()
    }

    /// Maximum leaf depth below the root layer (diagnostics).
    pub fn depth(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf(_) => 0,
                Node::Internal(children) => {
                    1 + children.iter().map(|(_, c)| depth(c)).max().unwrap_or(0)
                }
            }
        }
        self.root.iter().map(|(_, node)| depth(node)).max().unwrap_or(0)
    }
}

/// Demotes every position of a word to `card`.
fn demote_all(word: &ISaxWord, card: usize) -> ISaxWord {
    let symbols: Vec<usize> = word.symbols().iter().map(|s| s.demote(card).cell).collect();
    ISaxWord::from_cells(&symbols, card)
}

/// Picks the split position: the lowest-cardinality symbol still below
/// `base_card` (ties broken by position). `None` if fully refined.
fn split_position(word: &ISaxWord, base_card: usize) -> Option<usize> {
    word.symbols()
        .iter()
        .enumerate()
        .filter(|(_, s)| s.card < base_card)
        .min_by_key(|(_, s)| s.card)
        .map(|(i, _)| i)
}

fn insert_rec(node: &mut Node, node_word: &ISaxWord, entry: Entry, capacity: usize, base: usize) {
    match node {
        Node::Leaf(entries) => {
            entries.push(entry);
            if entries.len() > capacity {
                try_split(node, node_word, capacity, base);
            }
        }
        Node::Internal(children) => {
            let full = entry.full_word(base);
            let child = children.iter_mut().find(|(w, _)| w.contains(&full));
            match child {
                Some((word, node)) => {
                    let word = word.clone();
                    insert_rec(node, &word, entry, capacity, base);
                }
                None => unreachable!("split children partition the parent region"),
            }
        }
    }
}

/// Splits an overflowing leaf by cardinality promotion; recurses while a
/// child still overflows and can be refined.
fn try_split(node: &mut Node, node_word: &ISaxWord, capacity: usize, base: usize) {
    let Some(pos) = split_position(node_word, base) else {
        return; // fully refined: identical words, leaf stays oversized
    };
    let entries = match node {
        Node::Leaf(entries) => std::mem::take(entries),
        Node::Internal(_) => unreachable!("try_split on internal node"),
    };
    let (lo, hi) = node_word.split_at(pos);
    let mut lo_entries = Vec::new();
    let mut hi_entries = Vec::new();
    for e in entries {
        let full = e.full_word(base);
        if lo.contains(&full) {
            lo_entries.push(e);
        } else {
            debug_assert!(hi.contains(&full), "children must partition the region");
            hi_entries.push(e);
        }
    }
    let mut children = vec![(lo, Node::Leaf(lo_entries)), (hi, Node::Leaf(hi_entries))];
    for (word, child) in &mut children {
        let overflowing = matches!(child, Node::Leaf(v) if v.len() > capacity);
        if overflowing {
            try_split(child, word, capacity, base);
        }
    }
    *node = Node::Internal(children);
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{SaxAlphabet, SaxAlphabetKind};

    fn config() -> SaxConfig {
        SaxConfig {
            segment_len: 8,
            alphabet: SaxAlphabet::new(SaxAlphabetKind::Alphabetic, 8).unwrap(),
        }
    }

    fn make_series(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..n)
            .map(|t| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let noise = ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                (t as f64 * 0.1 * (seed % 7 + 1) as f64).sin() * 5.0 + noise
            })
            .collect()
    }

    #[test]
    fn insert_and_count() {
        let mut idx = ISaxIndex::new(config(), 64, 4);
        assert!(idx.is_empty());
        for i in 0..20 {
            idx.insert(i, &make_series(i as u64, 64));
        }
        assert_eq!(idx.len(), 20);
        assert!(!idx.is_empty());
    }

    #[test]
    fn leaves_split_under_pressure() {
        let mut idx = ISaxIndex::new(config(), 64, 2);
        for i in 0..60 {
            idx.insert(i, &make_series(i as u64, 64));
        }
        assert!(idx.leaf_count() > 10, "60 series in capacity-2 leaves must split repeatedly");
        assert!(idx.depth() >= 1, "cardinality promotion should create internal nodes");
    }

    #[test]
    fn exact_search_matches_linear_scan() {
        let n = 64;
        let mut idx = ISaxIndex::new(config(), n, 3);
        let mut all: Vec<(usize, Vec<f64>)> = Vec::new();
        for i in 0..60 {
            let s = make_series(i as u64 + 100, n);
            idx.insert(i, &s);
            all.push((i, s));
        }
        for q in 0..10u64 {
            let query = make_series(q + 500, n);
            let (qn, _) = znorm(&query).unwrap();
            let brute = all
                .iter()
                .map(|(id, s)| {
                    let (sn, _) = znorm(s).unwrap();
                    (*id, euclidean(&qn, &sn))
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            let found = idx.exact_search(&query).unwrap();
            assert_eq!(found.0, brute.0, "query {q}: exact search disagrees with scan");
            assert!((found.1 - brute.1).abs() < 1e-9);
        }
    }

    #[test]
    fn approximate_search_finds_self() {
        let n = 64;
        let mut idx = ISaxIndex::new(config(), n, 4);
        let mut kept = Vec::new();
        for i in 0..30 {
            let s = make_series(i as u64, n);
            idx.insert(i, &s);
            kept.push(s);
        }
        // Querying with an indexed series must return it at distance ~0.
        let (id, d) = idx.approximate_search(&kept[7]).expect("region non-empty");
        assert_eq!(id, 7);
        assert!(d < 1e-9);
    }

    #[test]
    fn duplicate_words_do_not_split_forever() {
        // The same series inserted many times: identical full-cardinality
        // words can never be separated; the leaf must stay oversized
        // instead of looping.
        let mut idx = ISaxIndex::new(config(), 64, 2);
        let s = make_series(9, 64);
        for i in 0..10 {
            idx.insert(i, &s);
        }
        assert_eq!(idx.len(), 10);
        let (id, d) = idx.exact_search(&s).unwrap();
        assert!(d < 1e-9);
        assert!(id < 10);
    }

    #[test]
    fn empty_index_returns_none() {
        let idx = ISaxIndex::new(config(), 64, 4);
        assert!(idx.approximate_search(&make_series(1, 64)).is_none());
        assert!(idx.exact_search(&make_series(1, 64)).is_none());
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_alphabet_rejected() {
        let cfg = SaxConfig {
            segment_len: 8,
            alphabet: SaxAlphabet::new(SaxAlphabetKind::Alphabetic, 5).unwrap(),
        };
        ISaxIndex::new(cfg, 64, 4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_rejected() {
        let mut idx = ISaxIndex::new(config(), 64, 4);
        idx.insert(0, &make_series(0, 32));
    }
}
