//! # mc-tslib — time-series substrate for the MultiCast reproduction
//!
//! Foundation crate providing the data model ([`UnivariateSeries`],
//! [`MultivariateSeries`]), descriptive statistics, transforms
//! (normalization, differencing, resampling, windowing), forecast accuracy
//! metrics, train/test splitting, and CSV I/O.
//!
//! Everything downstream — the SAX quantizer, the LLM tokenizer pipeline,
//! the ARIMA/LSTM baselines, and the MultiCast forecaster itself — is built
//! on these types.
//!
//! ## Quick example
//!
//! ```
//! use mc_tslib::{MultivariateSeries, metrics::rmse, split::holdout_split};
//!
//! let m = MultivariateSeries::from_rows(
//!     vec!["a".into(), "b".into()],
//!     &[[1.0, 10.0], [2.0, 20.0], [3.0, 30.0], [4.0, 40.0]],
//! ).unwrap();
//! let (train, test) = holdout_split(&m, 0.25).unwrap();
//! assert_eq!(train.len(), 3);
//! assert_eq!(test.len(), 1);
//! assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]).unwrap(), 0.0);
//! ```

pub mod backtest;
pub mod diagnostics;
pub mod error;
pub mod forecast;
pub mod io;
pub mod metrics;
pub mod rolling;
pub mod series;
pub mod spectral;
pub mod split;
pub mod stats;
pub mod transform;

pub use error::TsError;
pub use series::{MultivariateSeries, UnivariateSeries};
