//! Reversible transforms: z-normalization, differencing, block resampling
//! and sliding windows.
//!
//! Each forward transform that loses information required for inversion
//! returns a small state struct ([`ZNormState`], initial values for
//! differencing) so forecasts produced in the transformed domain can be
//! mapped back — exactly what the MultiCast pipeline does after the LLM
//! emits scaled tokens.

use crate::error::{invalid_param, Result, TsError};
use crate::series::MultivariateSeries;
use crate::stats::{mean, std_dev};

/// Parameters of a z-normalization, kept so it can be inverted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZNormState {
    /// Mean subtracted from the series.
    pub mean: f64,
    /// Standard deviation divided out (1.0 for constant series).
    pub std: f64,
}

/// Z-normalizes a slice; returns the transformed values and the state
/// needed to invert. Constant series map to all-zeros with `std = 1`.
pub fn znorm(xs: &[f64]) -> Result<(Vec<f64>, ZNormState)> {
    let m = mean(xs)?;
    let mut s = std_dev(xs)?;
    if s == 0.0 {
        s = 1.0;
    }
    let out = xs.iter().map(|x| (x - m) / s).collect();
    Ok((out, ZNormState { mean: m, std: s }))
}

/// Inverts [`znorm`].
pub fn znorm_inverse(xs: &[f64], state: ZNormState) -> Vec<f64> {
    xs.iter().map(|x| x * state.std + state.mean).collect()
}

/// First-order differencing applied `d` times.
///
/// Returns the differenced series plus the `d` dropped leading values
/// (one per differencing round, in application order) needed by
/// [`undifference`].
pub fn difference(xs: &[f64], d: usize) -> Result<(Vec<f64>, Vec<f64>)> {
    if xs.len() <= d {
        return Err(invalid_param(
            "d",
            format!("cannot difference length {} series {d} times", xs.len()),
        ));
    }
    let mut cur = xs.to_vec();
    let mut heads = Vec::with_capacity(d);
    for _ in 0..d {
        heads.push(cur[0]);
        cur = cur.windows(2).map(|w| w[1] - w[0]).collect();
    }
    Ok((cur, heads))
}

/// Inverts [`difference`]: integrates `d` times using the stored heads.
pub fn undifference(xs: &[f64], heads: &[f64]) -> Vec<f64> {
    let mut cur = xs.to_vec();
    for &h in heads.iter().rev() {
        let mut acc = h;
        let mut out = Vec::with_capacity(cur.len() + 1);
        out.push(acc);
        for &v in &cur {
            acc += v;
            out.push(acc);
        }
        cur = out;
    }
    cur
}

/// Continues an integration given the last value(s) of the original series:
/// maps a forecast made in the `d`-times-differenced domain back to levels.
///
/// `tail` must hold the last `d` values of each integration level of the
/// observed series, ordered from most-differenced to raw — as produced by
/// [`integration_tail`].
///
/// # Errors
/// [`TsError::Empty`] when a tail level holds no values, so the
/// integration constant is undefined.
pub fn undifference_forecast(forecast: &[f64], tail: &[Vec<f64>]) -> Result<Vec<f64>> {
    let mut cur = forecast.to_vec();
    for level in tail.iter().rev() {
        let Some(&last) = level.last() else {
            return Err(TsError::Empty);
        };
        let mut acc = last;
        for v in cur.iter_mut() {
            acc += *v;
            *v = acc;
        }
    }
    Ok(cur)
}

/// Computes the per-level tails needed by [`undifference_forecast`]:
/// element `i` is the raw series differenced `i` times (only its last value
/// is used, but the full level is kept for diagnostics).
pub fn integration_tail(xs: &[f64], d: usize) -> Result<Vec<Vec<f64>>> {
    if xs.len() <= d {
        return Err(invalid_param(
            "d",
            format!("series of length {} too short for d={d}", xs.len()),
        ));
    }
    let mut levels = Vec::with_capacity(d);
    let mut cur = xs.to_vec();
    for _ in 0..d {
        levels.push(cur.clone());
        cur = cur.windows(2).map(|w| w[1] - w[0]).collect();
    }
    Ok(levels)
}

/// Block-mean resampling: averages consecutive `block` values.
/// A trailing partial block (if any) is averaged over its actual length.
///
/// This mirrors the paper's "resampled on a 3-day basis" preprocessing of
/// the Electricity dataset.
pub fn resample_mean(xs: &[f64], block: usize) -> Result<Vec<f64>> {
    if block == 0 {
        return Err(invalid_param("block", "must be >= 1"));
    }
    if xs.is_empty() {
        return Err(TsError::Empty);
    }
    Ok(xs.chunks(block).map(|c| c.iter().sum::<f64>() / c.len() as f64).collect())
}

/// Sliding windows of length `width` with the given `stride`;
/// returns starting indices plus window slices materialized as vectors.
pub fn sliding_windows(xs: &[f64], width: usize, stride: usize) -> Result<Vec<Vec<f64>>> {
    if width == 0 || stride == 0 {
        return Err(invalid_param("width/stride", "must be >= 1"));
    }
    if xs.len() < width {
        return Err(invalid_param("width", format!("{width} > length {}", xs.len())));
    }
    let mut out = Vec::new();
    let mut start = 0;
    while start + width <= xs.len() {
        out.push(xs[start..start + width].to_vec());
        start += stride;
    }
    Ok(out)
}

/// A supervised sample: a lookback window of rows plus the next row.
pub type SupervisedSample = (Vec<Vec<f64>>, Vec<f64>);

/// Supervised windowing for sequence models: `(inputs, targets)` pairs where
/// each input is `lookback` consecutive rows of the multivariate series and
/// the target is the row right after the window.
///
/// This is the exact setup used by the LSTM baseline.
pub fn supervised_windows(
    series: &MultivariateSeries,
    lookback: usize,
) -> Result<Vec<SupervisedSample>> {
    if lookback == 0 {
        return Err(invalid_param("lookback", "must be >= 1"));
    }
    if series.len() <= lookback {
        return Err(invalid_param(
            "lookback",
            format!("{} too large for series of length {}", lookback, series.len()),
        ));
    }
    let mut out = Vec::with_capacity(series.len() - lookback);
    for t in 0..series.len() - lookback {
        let mut input = Vec::with_capacity(lookback);
        for i in t..t + lookback {
            input.push(series.row(i)?);
        }
        let target = series.row(t + lookback)?;
        out.push((input, target));
    }
    Ok(out)
}

/// Z-normalizes every dimension of a multivariate series independently.
pub fn znorm_multivariate(
    series: &MultivariateSeries,
) -> Result<(MultivariateSeries, Vec<ZNormState>)> {
    let mut cols = Vec::with_capacity(series.dims());
    let mut states = Vec::with_capacity(series.dims());
    for d in 0..series.dims() {
        let (column, state) = znorm(series.column(d)?)?;
        cols.push(column);
        states.push(state);
    }
    Ok((MultivariateSeries::from_columns(series.names().to_vec(), cols)?, states))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    fn close(a: &[f64], b: &[f64], eps: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < eps)
    }

    #[test]
    fn znorm_round_trip() {
        let xs = [3.0, 7.0, 1.0, 9.0, 5.0];
        let (z, st) = znorm(&xs).unwrap();
        assert!((mean(&z).unwrap()).abs() < EPS);
        assert!((std_dev(&z).unwrap() - 1.0).abs() < EPS);
        assert!(close(&znorm_inverse(&z, st), &xs, EPS));
    }

    #[test]
    fn znorm_constant_series() {
        let (z, st) = znorm(&[4.0, 4.0, 4.0]).unwrap();
        assert_eq!(z, vec![0.0, 0.0, 0.0]);
        assert_eq!(st.std, 1.0);
        assert!(close(&znorm_inverse(&z, st), &[4.0, 4.0, 4.0], EPS));
    }

    #[test]
    fn difference_round_trip_single() {
        let xs = [1.0, 4.0, 9.0, 16.0, 25.0];
        let (d, heads) = difference(&xs, 1).unwrap();
        assert_eq!(d, vec![3.0, 5.0, 7.0, 9.0]);
        assert!(close(&undifference(&d, &heads), &xs, EPS));
    }

    #[test]
    fn difference_round_trip_double() {
        let xs = [1.0, 4.0, 9.0, 16.0, 25.0, 36.0];
        let (d, heads) = difference(&xs, 2).unwrap();
        assert_eq!(d, vec![2.0, 2.0, 2.0, 2.0]); // second difference of squares
        assert!(close(&undifference(&d, &heads), &xs, EPS));
    }

    #[test]
    fn difference_rejects_short_series() {
        assert!(difference(&[1.0, 2.0], 2).is_err());
    }

    #[test]
    fn undifference_forecast_extends_levels() {
        // Linear series: first difference constant at 2. Forecasting 2s in the
        // differenced domain must extend the line.
        let xs = [1.0, 3.0, 5.0, 7.0];
        let tail = integration_tail(&xs, 1).unwrap();
        let fc = undifference_forecast(&[2.0, 2.0, 2.0], &tail).unwrap();
        assert!(close(&fc, &[9.0, 11.0, 13.0], EPS));
    }

    #[test]
    fn undifference_forecast_second_order() {
        // Quadratic t^2: second difference is constant 2.
        let xs: Vec<f64> = (0..6).map(|t| (t * t) as f64).collect();
        let tail = integration_tail(&xs, 2).unwrap();
        let fc = undifference_forecast(&[2.0, 2.0], &tail).unwrap();
        assert!(close(&fc, &[36.0, 49.0], EPS));
    }

    #[test]
    fn resample_mean_blocks() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(resample_mean(&xs, 2).unwrap(), vec![1.5, 3.5, 5.0]);
        assert_eq!(resample_mean(&xs, 5).unwrap(), vec![3.0]);
        assert!(resample_mean(&xs, 0).is_err());
        assert!(resample_mean(&[], 2).is_err());
    }

    #[test]
    fn sliding_windows_stride() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let w = sliding_windows(&xs, 3, 1).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], vec![1.0, 2.0, 3.0]);
        assert_eq!(w[2], vec![3.0, 4.0, 5.0]);
        let w2 = sliding_windows(&xs, 2, 3).unwrap();
        assert_eq!(w2, vec![vec![1.0, 2.0], vec![4.0, 5.0]]);
        assert!(sliding_windows(&xs, 6, 1).is_err());
        assert!(sliding_windows(&xs, 0, 1).is_err());
    }

    #[test]
    fn supervised_windows_shapes() {
        let m = MultivariateSeries::from_rows(
            vec!["a".into(), "b".into()],
            &[[0.0, 10.0], [1.0, 11.0], [2.0, 12.0], [3.0, 13.0]],
        )
        .unwrap();
        let pairs = supervised_windows(&m, 2).unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, vec![vec![0.0, 10.0], vec![1.0, 11.0]]);
        assert_eq!(pairs[0].1, vec![2.0, 12.0]);
        assert_eq!(pairs[1].1, vec![3.0, 13.0]);
        assert!(supervised_windows(&m, 4).is_err());
        assert!(supervised_windows(&m, 0).is_err());
    }

    #[test]
    fn znorm_multivariate_per_dimension() {
        let m = MultivariateSeries::from_rows(
            vec!["a".into(), "b".into()],
            &[[0.0, 100.0], [10.0, 300.0], [20.0, 200.0]],
        )
        .unwrap();
        let (z, states) = znorm_multivariate(&m).unwrap();
        for (d, &state) in states.iter().enumerate() {
            let col = z.column(d).unwrap();
            assert!(mean(col).unwrap().abs() < EPS);
            let back = znorm_inverse(col, state);
            assert!(close(&back, m.column(d).unwrap(), EPS));
        }
    }
}
