//! Residual diagnostics: the Ljung–Box portmanteau test.
//!
//! A fitted forecaster's one-step residuals should be white noise; left-
//! over autocorrelation means structure the model missed. The Ljung–Box
//! statistic aggregates the first `m` residual autocorrelations:
//!
//! ```text
//! Q = n (n + 2) Σ_{k=1..m} ρ_k² / (n − k)   ~  χ²(m − fitted_params)
//! ```
//!
//! The chi-squared survival function is computed from the regularized
//! incomplete gamma function (series + continued-fraction evaluation), so
//! the module reports an actual p-value without external tables.

use crate::error::{invalid_param, Result};
use crate::stats::acf;

/// Outcome of a Ljung–Box test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LjungBox {
    /// The Q statistic.
    pub statistic: f64,
    /// Degrees of freedom used.
    pub df: usize,
    /// `P(χ²(df) >= Q)` — small values reject whiteness.
    pub p_value: f64,
}

/// Runs the Ljung–Box test on residuals with `lags` autocorrelations,
/// adjusting degrees of freedom for `fitted_params` estimated parameters.
///
/// # Errors
/// If inputs are too short or the degrees of freedom are non-positive.
pub fn ljung_box(residuals: &[f64], lags: usize, fitted_params: usize) -> Result<LjungBox> {
    let n = residuals.len();
    if lags == 0 || lags >= n {
        return Err(invalid_param("lags", format!("{lags} not in 1..{n}")));
    }
    if fitted_params >= lags {
        return Err(invalid_param(
            "fitted_params",
            format!("{fitted_params} >= lags {lags} leaves no degrees of freedom"),
        ));
    }
    let rho = acf(residuals, lags)?;
    let nf = n as f64;
    let mut q = 0.0;
    for (k, &r) in rho.iter().enumerate().skip(1) {
        q += r * r / (nf - k as f64);
    }
    q *= nf * (nf + 2.0);
    let df = lags - fitted_params;
    Ok(LjungBox { statistic: q, df, p_value: chi_squared_sf(q, df as f64) })
}

/// Survival function of the chi-squared distribution:
/// `P(X >= x) = 1 - P(df/2, x/2)` via the regularized incomplete gamma.
pub fn chi_squared_sf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    1.0 - lower_regularized_gamma(df / 2.0, x / 2.0)
}

/// Regularized lower incomplete gamma `P(a, x)`, by series expansion for
/// `x < a + 1` and Lentz's continued fraction otherwise (Numerical Recipes
/// style; |error| well below 1e-10 for the ranges used here).
fn lower_regularized_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma domain");
    if x == 0.0 {
        return 0.0;
    }
    let log_gamma_a = ln_gamma(a);
    if x < a + 1.0 {
        // Series: P(a,x) = x^a e^-x / Γ(a) Σ x^n / (a (a+1) … (a+n)).
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (a * x.ln() - x - log_gamma_a).exp()
    } else {
        // Continued fraction for Q(a,x); P = 1 − Q.
        let mut b = x + 1.0 - a;
        let mut c = 1e300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-15 {
                break;
            }
        }
        1.0 - h * (a * x.ln() - x - log_gamma_a).exp()
    }
}

/// Lanczos approximation of `ln Γ(z)` (g = 7, 9 coefficients).
#[allow(clippy::excessive_precision)] // published Lanczos constants, kept verbatim
fn ln_gamma(z: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if z < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * z).sin()).ln() - ln_gamma(1.0 - z);
    }
    let z = z - 1.0;
    let mut x = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        x += c / (z + i as f64);
    }
    let t = z + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * t.ln() - t + x.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn chi_squared_reference_values() {
        // Classic table entries: P(χ²(1) >= 3.841) = 0.05,
        // P(χ²(5) >= 11.070) = 0.05, P(χ²(10) >= 15.987) = 0.10.
        assert!((chi_squared_sf(3.841, 1.0) - 0.05).abs() < 2e-4);
        assert!((chi_squared_sf(11.070, 5.0) - 0.05).abs() < 2e-4);
        assert!((chi_squared_sf(15.987, 10.0) - 0.10).abs() < 2e-4);
        assert_eq!(chi_squared_sf(0.0, 3.0), 1.0);
        assert!(chi_squared_sf(1000.0, 3.0) < 1e-12);
    }

    #[test]
    fn white_noise_passes_ljung_box() {
        // Deterministic pseudo-noise must not be rejected at 1 %.
        let mut state = 17u64;
        let xs: Vec<f64> = (0..600)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect();
        let lb = ljung_box(&xs, 10, 0).unwrap();
        assert!(lb.p_value > 0.01, "white noise rejected: {lb:?}");
        assert_eq!(lb.df, 10);
    }

    #[test]
    fn autocorrelated_residuals_are_rejected() {
        // A strong AR(1) signal has huge residual autocorrelation.
        let mut x = 0.0;
        let mut state = 23u64;
        let xs: Vec<f64> = (0..400)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let e = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                x = 0.9 * x + e;
                x
            })
            .collect();
        let lb = ljung_box(&xs, 10, 0).unwrap();
        assert!(lb.p_value < 1e-6, "AR(1) must be flagged: {lb:?}");
        assert!(lb.statistic > 100.0);
    }

    #[test]
    fn arima_residuals_are_whiter_than_raw_series() {
        // End-to-end diagnostic: fitting an AR(1) should whiten an AR(1).
        let mut x = 0.0;
        let mut state = 31u64;
        let xs: Vec<f64> = (0..2000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let e = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                x = 0.8 * x + e;
                x
            })
            .collect();
        let raw = ljung_box(&xs, 10, 0).unwrap();
        // Residuals from the true model.
        let resid: Vec<f64> = xs.windows(2).map(|w| w[1] - 0.8 * w[0]).collect();
        let fitted = ljung_box(&resid, 10, 1).unwrap();
        assert!(raw.p_value < 1e-9, "raw AR(1) series is autocorrelated");
        assert!(fitted.p_value > 0.01, "true-model residuals should be white: {fitted:?}");
    }

    #[test]
    fn validation() {
        let xs = vec![1.0; 20];
        assert!(ljung_box(&xs, 0, 0).is_err());
        assert!(ljung_box(&xs, 25, 0).is_err());
        assert!(ljung_box(&xs, 5, 5).is_err());
    }
}
