//! Minimal CSV reader/writer for multivariate series.
//!
//! A deliberate subset of CSV: comma-separated numeric columns with a
//! header row of dimension names, no quoting (series data never needs it).
//! Keeping the parser in-tree avoids a dependency and makes error positions
//! precise.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::{Result, TsError};
use crate::series::MultivariateSeries;

/// Parses a multivariate series from CSV text with a header row.
pub fn read_csv_str(text: &str) -> Result<MultivariateSeries> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(TsError::Empty)?;
    let names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    if names.is_empty() || names.iter().any(String::is_empty) {
        return Err(TsError::Parse { line: 1, message: "empty header field".into() });
    }
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    for (idx, line) in lines {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != names.len() {
            return Err(TsError::Parse {
                line: line_no,
                message: format!("expected {} fields, got {}", names.len(), fields.len()),
            });
        }
        for (d, f) in fields.iter().enumerate() {
            let v: f64 = f.trim().parse().map_err(|_| TsError::Parse {
                line: line_no,
                message: format!("`{}` is not a number", f.trim()),
            })?;
            columns[d].push(v);
        }
    }
    MultivariateSeries::from_columns(names, columns)
}

/// Reads a multivariate series from a CSV file with a header row.
pub fn read_csv(path: impl AsRef<Path>) -> Result<MultivariateSeries> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    read_csv_str(&text)
}

/// Serializes a multivariate series to CSV text (header + one row per
/// timestamp). Values are written with full round-trip precision.
pub fn write_csv_str(series: &MultivariateSeries) -> String {
    let mut out = String::new();
    out.push_str(&series.names().join(","));
    out.push('\n');
    for row in series.rows() {
        let fields: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

/// Writes a multivariate series to a CSV file.
pub fn write_csv(series: &MultivariateSeries, path: impl AsRef<Path>) -> Result<()> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    writer.write_all(write_csv_str(series).as_bytes())?;
    writer.flush()?;
    Ok(())
}

/// Reads whitespace- or comma-separated bare numbers (no header) as a single
/// dimension. Handy for pasting reference series into tests.
pub fn read_values(text: &str) -> Result<Vec<f64>> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        for tok in line.split(|c: char| c == ',' || c.is_whitespace()) {
            if tok.is_empty() {
                continue;
            }
            out.push(tok.parse().map_err(|_| TsError::Parse {
                line: idx + 1,
                message: format!("`{tok}` is not a number"),
            })?);
        }
    }
    if out.is_empty() {
        return Err(TsError::Empty);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip_via_string() {
        let m = MultivariateSeries::from_rows(
            vec!["x".into(), "y".into()],
            &[[1.5, -2.0], [3.25, 4.0]],
        )
        .unwrap();
        let text = write_csv_str(&m);
        let back = read_csv_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn csv_round_trip_via_file() {
        let m = MultivariateSeries::from_rows(vec!["a".into()], &[[1.0], [2.0], [3.0]]).unwrap();
        let path = std::env::temp_dir().join("mc_tslib_io_test.csv");
        write_csv(&m, &path).unwrap();
        let back = read_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, m);
    }

    #[test]
    fn parse_error_reports_line() {
        let err = read_csv_str("a,b\n1,2\n3,oops\n").unwrap_err();
        assert_eq!(err, TsError::Parse { line: 3, message: "`oops` is not a number".into() });
    }

    #[test]
    fn field_count_mismatch_detected() {
        let err = read_csv_str("a,b\n1,2\n3\n").unwrap_err();
        assert!(matches!(err, TsError::Parse { line: 3, .. }));
    }

    #[test]
    fn blank_lines_skipped() {
        let m = read_csv_str("a\n1\n\n2\n").unwrap();
        assert_eq!(m.column(0).unwrap(), &[1.0, 2.0]);
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(read_csv_str("").unwrap_err(), TsError::Empty);
        assert!(read_csv_str("a,\n1,2\n").is_err());
    }

    #[test]
    fn read_values_mixed_separators() {
        let v = read_values("1 2, 3\n4,5").unwrap();
        assert_eq!(v, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(read_values(" \n ").is_err());
        assert!(read_values("1 x").is_err());
    }
}
