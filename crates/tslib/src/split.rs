//! Train/test splitting for forecasting experiments.
//!
//! Forecasting splits are *temporal*: the test set is always the final
//! segment of the series (never shuffled), matching how the paper holds out
//! the tail of each dataset for evaluation.

use crate::error::{invalid_param, Result};
use crate::series::{MultivariateSeries, UnivariateSeries};

/// Splits a multivariate series into `(train, test)` where the test set is
/// the final `test_fraction` of timestamps (rounded down, at least 1).
///
/// # Errors
/// If `test_fraction` is outside `(0, 1)` or either side would be empty.
pub fn holdout_split(
    series: &MultivariateSeries,
    test_fraction: f64,
) -> Result<(MultivariateSeries, MultivariateSeries)> {
    if !(test_fraction > 0.0 && test_fraction < 1.0) {
        return Err(invalid_param("test_fraction", format!("{test_fraction} not in (0, 1)")));
    }
    let n = series.len();
    let test_len = ((n as f64 * test_fraction).floor() as usize).max(1);
    if test_len >= n {
        return Err(invalid_param("test_fraction", "train side would be empty"));
    }
    Ok((series.slice(0, n - test_len)?, series.slice(n - test_len, n)?))
}

/// Splits a multivariate series at an absolute index: train is `[0, at)`,
/// test is `[at, n)`.
pub fn split_at(
    series: &MultivariateSeries,
    at: usize,
) -> Result<(MultivariateSeries, MultivariateSeries)> {
    let n = series.len();
    if at == 0 || at >= n {
        return Err(invalid_param("at", format!("{at} must be in (0, {n})")));
    }
    Ok((series.slice(0, at)?, series.slice(at, n)?))
}

/// Univariate variant of [`holdout_split`].
pub fn holdout_split_univariate(
    series: &UnivariateSeries,
    test_fraction: f64,
) -> Result<(UnivariateSeries, UnivariateSeries)> {
    if !(test_fraction > 0.0 && test_fraction < 1.0) {
        return Err(invalid_param("test_fraction", format!("{test_fraction} not in (0, 1)")));
    }
    let n = series.len();
    let test_len = ((n as f64 * test_fraction).floor() as usize).max(1);
    if test_len >= n {
        return Err(invalid_param("test_fraction", "train side would be empty"));
    }
    Ok((series.slice(0, n - test_len)?, series.slice(n - test_len, n)?))
}

/// Expanding-window cross-validation folds: for each fold the train set
/// grows by `step` and the test set is the next `horizon` points.
///
/// Returns `(train_end, test_end)` index pairs; callers slice the series
/// themselves so no data is copied here.
pub fn expanding_folds(
    n: usize,
    initial_train: usize,
    horizon: usize,
    step: usize,
) -> Result<Vec<(usize, usize)>> {
    if initial_train == 0 || horizon == 0 || step == 0 {
        return Err(invalid_param("fold", "initial_train, horizon and step must be >= 1"));
    }
    if initial_train + horizon > n {
        return Err(invalid_param(
            "fold",
            format!("first fold needs {} points, series has {n}", initial_train + horizon),
        ));
    }
    let mut folds = Vec::new();
    let mut train_end = initial_train;
    while train_end + horizon <= n {
        folds.push((train_end, train_end + horizon));
        train_end += step;
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> MultivariateSeries {
        MultivariateSeries::from_columns(vec!["a".into()], vec![(0..n).map(|i| i as f64).collect()])
            .unwrap()
    }

    #[test]
    fn holdout_takes_tail() {
        let m = series(10);
        let (train, test) = holdout_split(&m, 0.2).unwrap();
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        assert_eq!(test.column(0).unwrap(), &[8.0, 9.0]);
    }

    #[test]
    fn holdout_minimum_one_test_point() {
        let m = series(10);
        let (train, test) = holdout_split(&m, 0.01).unwrap();
        assert_eq!(train.len(), 9);
        assert_eq!(test.len(), 1);
    }

    #[test]
    fn holdout_rejects_bad_fractions() {
        let m = series(10);
        assert!(holdout_split(&m, 0.0).is_err());
        assert!(holdout_split(&m, 1.0).is_err());
        assert!(holdout_split(&m, -0.5).is_err());
    }

    #[test]
    fn split_at_index() {
        let m = series(5);
        let (train, test) = split_at(&m, 3).unwrap();
        assert_eq!(train.len(), 3);
        assert_eq!(test.column(0).unwrap(), &[3.0, 4.0]);
        assert!(split_at(&m, 0).is_err());
        assert!(split_at(&m, 5).is_err());
    }

    #[test]
    fn univariate_holdout() {
        let u = UnivariateSeries::new("u", (0..8).map(|i| i as f64).collect());
        let (train, test) = holdout_split_univariate(&u, 0.25).unwrap();
        assert_eq!(train.len(), 6);
        assert_eq!(test.values(), &[6.0, 7.0]);
        assert!(holdout_split_univariate(&u, 1.5).is_err());
    }

    #[test]
    fn expanding_folds_cover_series() {
        let folds = expanding_folds(20, 10, 2, 4).unwrap();
        assert_eq!(folds, vec![(10, 12), (14, 16), (18, 20)]);
        assert!(expanding_folds(5, 10, 2, 1).is_err());
        assert!(expanding_folds(5, 0, 1, 1).is_err());
    }
}
