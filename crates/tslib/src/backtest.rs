//! Rolling-origin backtesting.
//!
//! A single train/test split (what the paper's tables use) measures one
//! draw; rolling-origin evaluation refits at several cut points and
//! aggregates, giving variance estimates alongside the mean. Built on
//! [`crate::split::expanding_folds`] and the common
//! [`crate::forecast::MultivariateForecaster`] interface, so every method
//! in the workspace can be backtested with one call.

use crate::error::{invalid_param, Result};
use crate::forecast::MultivariateForecaster;
use crate::metrics::rmse;
use crate::series::MultivariateSeries;
use crate::split::expanding_folds;

/// Configuration for a rolling-origin backtest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BacktestConfig {
    /// Training length of the first fold.
    pub initial_train: usize,
    /// Forecast horizon of every fold.
    pub horizon: usize,
    /// Cut-point advance between folds.
    pub step: usize,
}

/// Aggregated backtest outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct BacktestReport {
    /// `per_fold[f][d]`: RMSE of fold `f` on dimension `d`.
    pub per_fold: Vec<Vec<f64>>,
    /// Mean RMSE per dimension across folds.
    pub mean_rmse: Vec<f64>,
    /// Standard deviation of the per-fold RMSE per dimension.
    pub std_rmse: Vec<f64>,
    /// The fold boundaries used (`(train_end, test_end)`).
    pub folds: Vec<(usize, usize)>,
}

impl BacktestReport {
    /// Grand mean RMSE (over folds and dimensions).
    pub fn grand_mean(&self) -> f64 {
        self.mean_rmse.iter().sum::<f64>() / self.mean_rmse.len() as f64
    }
}

/// Runs a rolling-origin backtest of one forecaster.
///
/// ```
/// use mc_tslib::backtest::{backtest, BacktestConfig};
/// use mc_tslib::forecast::{PerDimension, UnivariateForecaster};
/// use mc_tslib::MultivariateSeries;
///
/// struct Naive;
/// impl UnivariateForecaster for Naive {
///     fn name(&self) -> String { "naive".into() }
///     fn forecast_univariate(&mut self, train: &[f64], h: usize)
///         -> mc_tslib::error::Result<Vec<f64>> {
///         Ok(vec![*train.last().unwrap(); h])
///     }
/// }
///
/// let series = MultivariateSeries::from_columns(
///     vec!["x".into()],
///     vec![(0..40).map(|t| t as f64).collect()],
/// ).unwrap();
/// let report = backtest(
///     &mut PerDimension(Naive),
///     &series,
///     BacktestConfig { initial_train: 20, horizon: 4, step: 8 },
/// ).unwrap();
/// assert_eq!(report.folds.len(), 3);
/// assert!(report.grand_mean() > 0.0);           // naive errs on a ramp
/// ```
///
/// # Errors
/// If the fold plan is infeasible or any fold's forecast fails.
pub fn backtest(
    forecaster: &mut dyn MultivariateForecaster,
    series: &MultivariateSeries,
    config: BacktestConfig,
) -> Result<BacktestReport> {
    let folds = expanding_folds(series.len(), config.initial_train, config.horizon, config.step)?;
    if folds.is_empty() {
        return Err(invalid_param("config", "fold plan produced no folds"));
    }
    let dims = series.dims();
    let mut per_fold = Vec::with_capacity(folds.len());
    for &(train_end, test_end) in &folds {
        let train = series.slice(0, train_end)?;
        let test = series.slice(train_end, test_end)?;
        let fc = forecaster.forecast(&train, test.len())?;
        let mut row = Vec::with_capacity(dims);
        for d in 0..dims {
            row.push(rmse(test.column(d)?, fc.column(d)?)?);
        }
        per_fold.push(row);
    }
    let n = per_fold.len() as f64;
    let mut mean_rmse = vec![0.0; dims];
    for row in &per_fold {
        for (m, &v) in mean_rmse.iter_mut().zip(row) {
            *m += v / n;
        }
    }
    let mut std_rmse = vec![0.0; dims];
    for row in &per_fold {
        for ((s, &v), &m) in std_rmse.iter_mut().zip(row).zip(&mean_rmse) {
            *s += (v - m) * (v - m) / n;
        }
    }
    for s in &mut std_rmse {
        *s = s.sqrt();
    }
    Ok(BacktestReport { per_fold, mean_rmse, std_rmse, folds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TsError;
    use crate::forecast::UnivariateForecaster;

    /// Repeat-last-value forecaster for plumbing tests.
    struct LastValue;
    impl UnivariateForecaster for LastValue {
        fn name(&self) -> String {
            "last-value".into()
        }
        fn forecast_univariate(&mut self, train: &[f64], horizon: usize) -> Result<Vec<f64>> {
            let last = *train.last().ok_or(TsError::Empty)?;
            Ok(vec![last; horizon])
        }
    }

    fn ramp(n: usize) -> MultivariateSeries {
        MultivariateSeries::from_columns(vec!["a".into()], vec![(0..n).map(|t| t as f64).collect()])
            .unwrap()
    }

    #[test]
    fn fold_errors_are_exact_for_known_forecaster() {
        // On a unit ramp, a last-value forecast over horizon 2 errs by
        // (1, 2) → RMSE sqrt(2.5), identically in every fold.
        let series = ramp(20);
        let mut f = crate::forecast::PerDimension(LastValue);
        let report =
            backtest(&mut f, &series, BacktestConfig { initial_train: 10, horizon: 2, step: 4 })
                .unwrap();
        assert_eq!(report.folds.len(), 3);
        let expected = (2.5f64).sqrt();
        for row in &report.per_fold {
            assert!((row[0] - expected).abs() < 1e-12);
        }
        assert!((report.mean_rmse[0] - expected).abs() < 1e-12);
        assert!(report.std_rmse[0] < 1e-12, "identical folds have zero spread");
        assert!((report.grand_mean() - expected).abs() < 1e-12);
    }

    #[test]
    fn infeasible_plans_rejected() {
        let series = ramp(10);
        let mut f = crate::forecast::PerDimension(LastValue);
        assert!(backtest(
            &mut f,
            &series,
            BacktestConfig { initial_train: 10, horizon: 2, step: 1 }
        )
        .is_err());
        assert!(backtest(
            &mut f,
            &series,
            BacktestConfig { initial_train: 0, horizon: 2, step: 1 }
        )
        .is_err());
    }

    #[test]
    fn multivariate_dimensions_scored_independently() {
        let series = MultivariateSeries::from_columns(
            vec!["flat".into(), "ramp".into()],
            vec![vec![5.0; 16], (0..16).map(|t| t as f64).collect()],
        )
        .unwrap();
        let mut f = crate::forecast::PerDimension(LastValue);
        let report =
            backtest(&mut f, &series, BacktestConfig { initial_train: 8, horizon: 2, step: 3 })
                .unwrap();
        // The flat dimension is forecast perfectly; the ramp is not.
        assert!(report.mean_rmse[0] < 1e-12);
        assert!(report.mean_rmse[1] > 1.0);
    }
}
