//! Descriptive statistics: moments, quantiles, autocorrelation,
//! partial autocorrelation and cross-correlation.
//!
//! The ACF/PACF implementations here back the ARIMA estimator in
//! `mc-baselines` (Yule–Walker equations are solved with the same
//! Levinson–Durbin recursion exposed as [`levinson_durbin`]).

use crate::error::{invalid_param, Result, TsError};

/// Arithmetic mean. Errors on empty input.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(TsError::Empty);
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance (divides by `n`). Errors on empty input.
pub fn variance(xs: &[f64]) -> Result<f64> {
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    Ok(variance(xs)?.sqrt())
}

/// Minimum value. Errors on empty input; NaNs are ignored unless all-NaN.
pub fn min(xs: &[f64]) -> Result<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc: Option<f64>, x| Some(acc.map_or(x, |a| a.min(x))))
        .ok_or(TsError::Empty)
}

/// Maximum value. Errors on empty input; NaNs are ignored unless all-NaN.
pub fn max(xs: &[f64]) -> Result<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc: Option<f64>, x| Some(acc.map_or(x, |a| a.max(x))))
        .ok_or(TsError::Empty)
}

/// Linear-interpolation quantile, `q` in `[0, 1]`.
///
/// Matches the "linear" method of NumPy's `quantile`: the sorted sample is
/// indexed at `q * (n - 1)` with fractional positions interpolated.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(TsError::Empty);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(invalid_param("q", format!("{q} not in [0, 1]")));
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Median (50 % quantile).
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// Sample autocovariance at lag `k` (biased, divides by `n`).
pub fn autocovariance(xs: &[f64], k: usize) -> Result<f64> {
    if xs.is_empty() {
        return Err(TsError::Empty);
    }
    if k >= xs.len() {
        return Err(invalid_param("k", format!("lag {k} >= length {}", xs.len())));
    }
    let m = mean(xs)?;
    let n = xs.len();
    let mut acc = 0.0;
    for t in 0..n - k {
        acc += (xs[t] - m) * (xs[t + k] - m);
    }
    Ok(acc / n as f64)
}

/// Autocorrelation function for lags `0..=max_lag`.
pub fn acf(xs: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    let c0 = autocovariance(xs, 0)?;
    if c0 == 0.0 {
        // Constant series: ACF is 1 at lag 0 and (by convention) 0 elsewhere.
        let mut out = vec![0.0; max_lag + 1];
        out[0] = 1.0;
        return Ok(out);
    }
    (0..=max_lag).map(|k| Ok(autocovariance(xs, k)? / c0)).collect()
}

/// Solves the Yule–Walker system for an AR(`order`) model via
/// Levinson–Durbin, given autocorrelations `rho[0..=order]` (`rho[0] == 1`).
///
/// Returns `(phi, reflection)` where `phi[j]` is the coefficient of lag
/// `j + 1` and `reflection[k]` is the lag-(k+1) partial autocorrelation.
pub fn levinson_durbin(rho: &[f64], order: usize) -> Result<(Vec<f64>, Vec<f64>)> {
    if rho.len() <= order {
        return Err(TsError::LengthMismatch { expected: order + 1, actual: rho.len() });
    }
    let mut phi = vec![0.0; order];
    let mut prev = vec![0.0; order];
    let mut reflection = Vec::with_capacity(order);
    let mut err = 1.0_f64;
    for k in 0..order {
        let mut acc = rho[k + 1];
        for j in 0..k {
            acc -= prev[j] * rho[k - j];
        }
        let kappa = if err.abs() < 1e-12 { 0.0 } else { acc / err };
        reflection.push(kappa);
        phi[..k].copy_from_slice(&prev[..k]);
        for j in 0..k {
            phi[j] = prev[j] - kappa * prev[k - 1 - j];
        }
        phi[k] = kappa;
        err *= 1.0 - kappa * kappa;
        prev[..=k].copy_from_slice(&phi[..=k]);
    }
    Ok((phi, reflection))
}

/// Partial autocorrelation function for lags `1..=max_lag`
/// (Levinson–Durbin on the sample ACF).
pub fn pacf(xs: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    if max_lag == 0 {
        return Ok(vec![]);
    }
    if max_lag >= xs.len() {
        return Err(invalid_param("max_lag", format!("{max_lag} >= length {}", xs.len())));
    }
    let rho = acf(xs, max_lag)?;
    let (_, reflection) = levinson_durbin(&rho, max_lag)?;
    Ok(reflection)
}

/// Pearson correlation between two equal-length slices.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(TsError::LengthMismatch { expected: xs.len(), actual: ys.len() });
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(invalid_param("input", "zero variance"));
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Cross-correlation of `xs` against `ys` shifted by `lag`
/// (`lag > 0` means `ys` lags behind `xs`).
pub fn cross_correlation(xs: &[f64], ys: &[f64], lag: i64) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(TsError::LengthMismatch { expected: xs.len(), actual: ys.len() });
    }
    let n = xs.len() as i64;
    if lag.abs() >= n {
        return Err(invalid_param("lag", format!("|{lag}| >= length {n}")));
    }
    let (a, b): (&[f64], &[f64]) = if lag >= 0 {
        (&xs[lag as usize..], &ys[..(n - lag) as usize])
    } else {
        (&xs[..(n + lag) as usize], &ys[(-lag) as usize..])
    };
    pearson(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs).unwrap() - 5.0).abs() < EPS);
        assert!((variance(&xs).unwrap() - 4.0).abs() < EPS);
        assert!((std_dev(&xs).unwrap() - 2.0).abs() < EPS);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn min_max_skip_nans() {
        let xs = [3.0, f64::NAN, -1.0, 2.0];
        assert_eq!(min(&xs).unwrap(), -1.0);
        assert_eq!(max(&xs).unwrap(), 3.0);
        assert!(min(&[f64::NAN]).is_err());
        assert!(max(&[]).is_err());
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&xs, 0.0).unwrap() - 1.0).abs() < EPS);
        assert!((quantile(&xs, 1.0).unwrap() - 4.0).abs() < EPS);
        assert!((quantile(&xs, 0.5).unwrap() - 2.5).abs() < EPS);
        assert!((median(&[5.0, 1.0, 3.0]).unwrap() - 3.0).abs() < EPS);
        assert!(quantile(&xs, 1.5).is_err());
    }

    #[test]
    fn acf_of_white_noise_is_small() {
        // Deterministic pseudo-noise via an LCG so the test is stable.
        let mut state = 12345u64;
        let xs: Vec<f64> = (0..2000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect();
        let rho = acf(&xs, 5).unwrap();
        assert!((rho[0] - 1.0).abs() < EPS);
        for &r in &rho[1..] {
            assert!(r.abs() < 0.1, "white-noise ACF too large: {r}");
        }
    }

    #[test]
    fn acf_of_constant_series() {
        let rho = acf(&[3.0; 10], 3).unwrap();
        assert_eq!(rho, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn ar1_acf_decays_geometrically() {
        // x_t = 0.8 x_{t-1} + e_t → rho_k ≈ 0.8^k.
        let mut state = 7u64;
        let mut x = 0.0;
        let xs: Vec<f64> = (0..20000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let e = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                x = 0.8 * x + e;
                x
            })
            .collect();
        let rho = acf(&xs, 3).unwrap();
        assert!((rho[1] - 0.8).abs() < 0.05, "rho1={}", rho[1]);
        assert!((rho[2] - 0.64).abs() < 0.07, "rho2={}", rho[2]);
    }

    #[test]
    fn pacf_of_ar1_cuts_off_after_lag_one() {
        let mut state = 99u64;
        let mut x = 0.0;
        let xs: Vec<f64> = (0..20000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let e = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                x = 0.7 * x + e;
                x
            })
            .collect();
        let p = pacf(&xs, 4).unwrap();
        assert!((p[0] - 0.7).abs() < 0.05, "pacf1={}", p[0]);
        for &v in &p[1..] {
            assert!(v.abs() < 0.06, "AR(1) PACF should cut off, got {v}");
        }
    }

    #[test]
    fn levinson_durbin_recovers_ar2() {
        // Theoretical ACF of AR(2) with phi1=0.5, phi2=0.3:
        // rho1 = phi1/(1-phi2), rho2 = phi1*rho1 + phi2.
        let rho1 = 0.5 / (1.0 - 0.3);
        let rho2 = 0.5 * rho1 + 0.3;
        let rho3 = 0.5 * rho2 + 0.3 * rho1;
        let (phi, _) = levinson_durbin(&[1.0, rho1, rho2, rho3], 2).unwrap();
        assert!((phi[0] - 0.5).abs() < 1e-9, "phi1={}", phi[0]);
        assert!((phi[1] - 0.3).abs() < 1e-9, "phi2={}", phi[1]);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0];
        assert!((pearson(&xs, &[2.0, 4.0, 6.0]).unwrap() - 1.0).abs() < EPS);
        assert!((pearson(&xs, &[-1.0, -2.0, -3.0]).unwrap() + 1.0).abs() < EPS);
        assert!(pearson(&xs, &[1.0, 1.0, 1.0]).is_err());
        assert!(pearson(&xs, &[1.0]).is_err());
    }

    #[test]
    fn cross_correlation_finds_lag() {
        let xs: Vec<f64> = (0..100).map(|t| (t as f64 * 0.3).sin()).collect();
        let ys: Vec<f64> = (0..100).map(|t| ((t as f64 - 5.0) * 0.3).sin()).collect();
        // ys is xs delayed by 5 → correlation at lag -5 of xs vs ys is max.
        let at_lag = cross_correlation(&xs, &ys, -5).unwrap();
        let at_zero = cross_correlation(&xs, &ys, 0).unwrap();
        assert!(at_lag > 0.99, "lagged correlation {at_lag}");
        assert!(at_lag > at_zero);
        assert!(cross_correlation(&xs, &ys, 100).is_err());
    }

    #[test]
    fn autocovariance_bounds() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!(autocovariance(&xs, 4).is_err());
        assert!(autocovariance(&[], 0).is_err());
        let c0 = autocovariance(&xs, 0).unwrap();
        let c1 = autocovariance(&xs, 1).unwrap();
        assert!(c0 >= c1.abs());
    }
}
