//! Core data model: univariate and multivariate time series.
//!
//! A [`MultivariateSeries`] is stored column-major (one contiguous `Vec<f64>`
//! per dimension) because every consumer in this workspace — rescaling,
//! SAX quantization, per-dimension metrics — operates on whole dimensions.
//! Row-major access is provided through [`MultivariateSeries::row`] and the
//! [`MultivariateSeries::rows`] iterator for the multiplexers, which walk
//! timestamps.

use crate::error::{invalid_param, Result, TsError};

/// A single-dimension time series: equally spaced observations plus a name.
#[derive(Debug, Clone, PartialEq)]
pub struct UnivariateSeries {
    name: String,
    values: Vec<f64>,
}

impl UnivariateSeries {
    /// Creates a named series from raw values.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Self { name: name.into(), values }
    }

    /// The series name (e.g. `"CO2"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Borrow the observations.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the observations.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Consumes the series, returning its values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Returns the sub-series `[start, end)` with the same name.
    pub fn slice(&self, start: usize, end: usize) -> Result<Self> {
        if start > end || end > self.values.len() {
            return Err(invalid_param(
                "range",
                format!("[{start}, {end}) out of bounds for length {}", self.values.len()),
            ));
        }
        Ok(Self { name: self.name.clone(), values: self.values[start..end].to_vec() })
    }
}

/// An equally spaced multivariate time series.
///
/// Invariants (enforced by every constructor):
/// - at least one dimension;
/// - all dimensions have the same length;
/// - dimension names are unique and as many as dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct MultivariateSeries {
    names: Vec<String>,
    /// Column-major storage: `columns[d][t]`.
    columns: Vec<Vec<f64>>,
}

impl MultivariateSeries {
    /// Builds a series from named columns.
    ///
    /// # Errors
    /// [`TsError::Empty`] if no columns are given, [`TsError::LengthMismatch`]
    /// if the columns are ragged or names don't match column count.
    pub fn from_columns(names: Vec<String>, columns: Vec<Vec<f64>>) -> Result<Self> {
        if columns.is_empty() {
            return Err(TsError::Empty);
        }
        if names.len() != columns.len() {
            return Err(TsError::LengthMismatch { expected: columns.len(), actual: names.len() });
        }
        let n = columns[0].len();
        for (d, col) in columns.iter().enumerate() {
            if col.len() != n {
                return Err(TsError::RaggedRows { row: d, expected: n, actual: col.len() });
            }
        }
        for (i, a) in names.iter().enumerate() {
            if names[..i].contains(a) {
                return Err(invalid_param("names", format!("duplicate dimension name `{a}`")));
            }
        }
        Ok(Self { names, columns })
    }

    /// Builds a series from timestamp rows (`rows[t][d]`).
    pub fn from_rows<R: AsRef<[f64]>>(names: Vec<String>, rows: &[R]) -> Result<Self> {
        if names.is_empty() {
            return Err(TsError::Empty);
        }
        let d = names.len();
        let mut columns = vec![Vec::with_capacity(rows.len()); d];
        for (t, row) in rows.iter().enumerate() {
            let row = row.as_ref();
            if row.len() != d {
                return Err(TsError::RaggedRows { row: t, expected: d, actual: row.len() });
            }
            for (j, &v) in row.iter().enumerate() {
                columns[j].push(v);
            }
        }
        Self::from_columns(names, columns)
    }

    /// Wraps a set of univariate series as one multivariate series.
    pub fn from_univariate(series: Vec<UnivariateSeries>) -> Result<Self> {
        let names = series.iter().map(|s| s.name.clone()).collect();
        let columns = series.into_iter().map(|s| s.values).collect();
        Self::from_columns(names, columns)
    }

    /// Number of timestamps.
    pub fn len(&self) -> usize {
        self.columns[0].len()
    }

    /// Whether the series has no timestamps.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.columns.len()
    }

    /// Dimension names, in storage order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Borrow dimension `d`.
    pub fn column(&self, d: usize) -> Result<&[f64]> {
        self.columns
            .get(d)
            .map(Vec::as_slice)
            .ok_or(TsError::DimensionOutOfBounds { dim: d, dims: self.columns.len() })
    }

    /// Mutable access to dimension `d`.
    pub fn column_mut(&mut self, d: usize) -> Result<&mut [f64]> {
        let dims = self.columns.len();
        self.columns
            .get_mut(d)
            .map(Vec::as_mut_slice)
            .ok_or(TsError::DimensionOutOfBounds { dim: d, dims })
    }

    /// Borrow all columns.
    pub fn columns(&self) -> &[Vec<f64>] {
        &self.columns
    }

    /// Finds a dimension by name.
    pub fn column_by_name(&self, name: &str) -> Option<&[f64]> {
        self.names.iter().position(|n| n == name).map(|d| self.columns[d].as_slice())
    }

    /// The values of timestamp `t` across dimensions (allocates a row).
    pub fn row(&self, t: usize) -> Result<Vec<f64>> {
        if t >= self.len() {
            return Err(invalid_param("t", format!("{t} out of bounds for length {}", self.len())));
        }
        Ok(self.columns.iter().map(|c| c[t]).collect())
    }

    /// Iterator over timestamp rows.
    pub fn rows(&self) -> impl Iterator<Item = Vec<f64>> + '_ {
        (0..self.len()).map(move |t| self.columns.iter().map(|c| c[t]).collect())
    }

    /// Extracts dimension `d` as a [`UnivariateSeries`].
    pub fn dimension(&self, d: usize) -> Result<UnivariateSeries> {
        let col = self.column(d)?;
        Ok(UnivariateSeries::new(self.names[d].clone(), col.to_vec()))
    }

    /// Returns the sub-series `[start, end)` of timestamps.
    pub fn slice(&self, start: usize, end: usize) -> Result<Self> {
        if start > end || end > self.len() {
            return Err(invalid_param(
                "range",
                format!("[{start}, {end}) out of bounds for length {}", self.len()),
            ));
        }
        Ok(Self {
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c[start..end].to_vec()).collect(),
        })
    }

    /// Keeps only the named dimensions, in the given order.
    pub fn select(&self, keep: &[&str]) -> Result<Self> {
        let mut names = Vec::with_capacity(keep.len());
        let mut columns = Vec::with_capacity(keep.len());
        for &k in keep {
            match self.names.iter().position(|n| n == k) {
                Some(d) => {
                    names.push(self.names[d].clone());
                    columns.push(self.columns[d].clone());
                }
                None => return Err(invalid_param("keep", format!("unknown dimension `{k}`"))),
            }
        }
        Self::from_columns(names, columns)
    }

    /// Appends a timestamp row.
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        if row.len() != self.dims() {
            return Err(TsError::LengthMismatch { expected: self.dims(), actual: row.len() });
        }
        for (c, &v) in self.columns.iter_mut().zip(row) {
            c.push(v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MultivariateSeries {
        MultivariateSeries::from_rows(
            vec!["x".into(), "y".into()],
            &[[1.0, 4.0], [2.0, 5.0], [3.0, 6.0]],
        )
        .unwrap()
    }

    #[test]
    fn from_rows_transposes_correctly() {
        let m = sample();
        assert_eq!(m.len(), 3);
        assert_eq!(m.dims(), 2);
        assert_eq!(m.column(0).unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(m.column(1).unwrap(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn rows_round_trip() {
        let m = sample();
        let rows: Vec<Vec<f64>> = m.rows().collect();
        assert_eq!(rows, vec![vec![1.0, 4.0], vec![2.0, 5.0], vec![3.0, 6.0]]);
        let back = MultivariateSeries::from_rows(m.names().to_vec(), &rows).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = MultivariateSeries::from_rows(
            vec!["x".into(), "y".into()],
            &[vec![1.0, 2.0], vec![3.0]],
        )
        .unwrap_err();
        assert_eq!(err, TsError::RaggedRows { row: 1, expected: 2, actual: 1 });
    }

    #[test]
    fn ragged_columns_rejected() {
        let err = MultivariateSeries::from_columns(
            vec!["x".into(), "y".into()],
            vec![vec![1.0, 2.0], vec![3.0]],
        )
        .unwrap_err();
        assert!(matches!(err, TsError::RaggedRows { row: 1, .. }));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = MultivariateSeries::from_columns(
            vec!["x".into(), "x".into()],
            vec![vec![1.0], vec![2.0]],
        )
        .unwrap_err();
        assert!(matches!(err, TsError::InvalidParameter { name: "names", .. }));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(MultivariateSeries::from_columns(vec![], vec![]).unwrap_err(), TsError::Empty);
    }

    #[test]
    fn select_reorders_dimensions() {
        let m = sample();
        let s = m.select(&["y", "x"]).unwrap();
        assert_eq!(s.names(), &["y".to_string(), "x".to_string()]);
        assert_eq!(s.column(0).unwrap(), &[4.0, 5.0, 6.0]);
        assert!(m.select(&["nope"]).is_err());
    }

    #[test]
    fn slice_bounds_checked() {
        let m = sample();
        let s = m.slice(1, 3).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.column(0).unwrap(), &[2.0, 3.0]);
        assert!(m.slice(2, 1).is_err());
        assert!(m.slice(0, 4).is_err());
    }

    #[test]
    fn push_row_appends() {
        let mut m = sample();
        m.push_row(&[7.0, 8.0]).unwrap();
        assert_eq!(m.len(), 4);
        assert_eq!(m.row(3).unwrap(), vec![7.0, 8.0]);
        assert!(m.push_row(&[1.0]).is_err());
    }

    #[test]
    fn dimension_extracts_named_univariate() {
        let m = sample();
        let u = m.dimension(1).unwrap();
        assert_eq!(u.name(), "y");
        assert_eq!(u.values(), &[4.0, 5.0, 6.0]);
        assert!(m.dimension(2).is_err());
    }

    #[test]
    fn column_by_name_works() {
        let m = sample();
        assert_eq!(m.column_by_name("y").unwrap(), &[4.0, 5.0, 6.0]);
        assert!(m.column_by_name("z").is_none());
    }

    #[test]
    fn univariate_slice() {
        let u = UnivariateSeries::new("u", vec![1.0, 2.0, 3.0]);
        let s = u.slice(0, 2).unwrap();
        assert_eq!(s.values(), &[1.0, 2.0]);
        assert!(u.slice(1, 4).is_err());
    }
}
