//! Error type shared by all `mc-tslib` operations.

use std::fmt;

/// Errors produced by time-series operations.
///
/// The substrate is deliberately strict: empty inputs, length mismatches and
/// out-of-range parameters are surfaced as errors instead of being silently
/// coerced, because every downstream consumer (tokenizers, quantizers,
/// forecasters) depends on shape invariants established here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsError {
    /// The operation requires a non-empty series.
    Empty,
    /// Two inputs that must agree in length did not.
    LengthMismatch {
        /// Expected length (from the first operand).
        expected: usize,
        /// Actual length (from the second operand).
        actual: usize,
    },
    /// A dimension index was out of bounds.
    DimensionOutOfBounds {
        /// Requested dimension.
        dim: usize,
        /// Number of available dimensions.
        dims: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// A CSV file could not be parsed.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An I/O error occurred (message-only so the error stays `Clone + Eq`).
    Io(String),
    /// The rows of a multivariate construction were ragged.
    RaggedRows {
        /// 0-based index of the first offending row.
        row: usize,
        /// Expected width.
        expected: usize,
        /// Actual width.
        actual: usize,
    },
    /// Too few valid samples survived validation and retries to aggregate
    /// a forecast (and no fallback was allowed to absorb the loss).
    SampleQuorum {
        /// Valid samples that survived.
        valid: usize,
        /// Samples the quorum policy required.
        required: usize,
    },
    /// A pipeline stage failed in a way that indicates an internal bug or
    /// an unusable backend — not a repairable sample defect.
    Pipeline {
        /// Stage that failed (e.g. `"encode-prompt"`).
        stage: &'static str,
        /// Description of the failure.
        message: String,
    },
    /// A serve-handle lookup named a request id that was never issued.
    UnknownRequest {
        /// The id that failed to resolve.
        id: usize,
    },
    /// A request was rejected by the serve path's overload protection
    /// (admission control, quotas, or a tripped circuit breaker) rather
    /// than failing — resubmit later or at lower load.
    Overloaded {
        /// Stable rejection kind: `queue-full`, `shed`, `quota`, or
        /// `breaker-open`.
        kind: &'static str,
        /// Human-readable detail (client, priority, capacity...).
        detail: String,
    },
}

impl fmt::Display for TsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsError::Empty => write!(f, "operation requires a non-empty series"),
            TsError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            TsError::DimensionOutOfBounds { dim, dims } => {
                write!(f, "dimension {dim} out of bounds for {dims}-dimensional series")
            }
            TsError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            TsError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            TsError::Io(msg) => write!(f, "I/O error: {msg}"),
            TsError::RaggedRows { row, expected, actual } => {
                write!(f, "ragged rows: row {row} has {actual} values, expected {expected}")
            }
            TsError::SampleQuorum { valid, required } => {
                write!(f, "sample quorum failed: {valid} valid samples, {required} required")
            }
            TsError::Pipeline { stage, message } => {
                write!(f, "pipeline stage `{stage}` failed: {message}")
            }
            TsError::UnknownRequest { id } => {
                write!(f, "unknown request id {id}: no such submission on this handle")
            }
            TsError::Overloaded { kind, detail } => {
                write!(f, "request rejected under overload ({kind}): {detail}")
            }
        }
    }
}

impl std::error::Error for TsError {}

impl From<std::io::Error> for TsError {
    fn from(e: std::io::Error) -> Self {
        TsError::Io(e.to_string())
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, TsError>;

/// Builds an [`TsError::InvalidParameter`] with a formatted message.
pub fn invalid_param(name: &'static str, message: impl Into<String>) -> TsError {
    TsError::InvalidParameter { name, message: message.into() }
}

/// Builds a [`TsError::Pipeline`] with a formatted message.
pub fn pipeline_error(stage: &'static str, message: impl Into<String>) -> TsError {
    TsError::Pipeline { stage, message: message.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(TsError::Empty.to_string(), "operation requires a non-empty series");
        assert_eq!(
            TsError::LengthMismatch { expected: 3, actual: 2 }.to_string(),
            "length mismatch: expected 3, got 2"
        );
        assert_eq!(
            TsError::DimensionOutOfBounds { dim: 5, dims: 2 }.to_string(),
            "dimension 5 out of bounds for 2-dimensional series"
        );
        assert_eq!(
            invalid_param("alpha", "must be positive").to_string(),
            "invalid parameter `alpha`: must be positive"
        );
        assert_eq!(
            TsError::SampleQuorum { valid: 1, required: 3 }.to_string(),
            "sample quorum failed: 1 valid samples, 3 required"
        );
        assert_eq!(
            pipeline_error("encode-prompt", "char 'x' not in vocabulary").to_string(),
            "pipeline stage `encode-prompt` failed: char 'x' not in vocabulary"
        );
        assert_eq!(
            TsError::UnknownRequest { id: 9 }.to_string(),
            "unknown request id 9: no such submission on this handle"
        );
        assert_eq!(
            TsError::Overloaded { kind: "queue-full", detail: "cap 4".into() }.to_string(),
            "request rejected under overload (queue-full): cap 4"
        );
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let ts: TsError = io.into();
        assert!(matches!(ts, TsError::Io(_)));
        assert!(ts.to_string().contains("missing"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(TsError::Empty, TsError::Empty);
        assert_ne!(TsError::Empty, TsError::Io("x".into()));
    }
}
