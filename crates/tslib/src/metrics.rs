//! Forecast accuracy metrics.
//!
//! The paper evaluates exclusively with RMSE; MAE, MAPE, sMAPE and MASE are
//! provided as well because the benchmark harness reports them alongside
//! (they are standard in the forecasting literature and cheap to compute).

use crate::error::{invalid_param, Result, TsError};

fn check(actual: &[f64], predicted: &[f64]) -> Result<()> {
    if actual.is_empty() {
        return Err(TsError::Empty);
    }
    if actual.len() != predicted.len() {
        return Err(TsError::LengthMismatch { expected: actual.len(), actual: predicted.len() });
    }
    Ok(())
}

/// Root Mean Squared Error: `sqrt(mean((y - ŷ)^2))`.
///
/// This is the paper's sole accuracy metric (Section IV-A5).
pub fn rmse(actual: &[f64], predicted: &[f64]) -> Result<f64> {
    check(actual, predicted)?;
    let mse = actual.iter().zip(predicted).map(|(y, yhat)| (y - yhat) * (y - yhat)).sum::<f64>()
        / actual.len() as f64;
    Ok(mse.sqrt())
}

/// Mean Absolute Error.
pub fn mae(actual: &[f64], predicted: &[f64]) -> Result<f64> {
    check(actual, predicted)?;
    Ok(actual.iter().zip(predicted).map(|(y, yhat)| (y - yhat).abs()).sum::<f64>()
        / actual.len() as f64)
}

/// Mean Absolute Percentage Error (in percent).
/// Errors if any actual value is zero (undefined).
pub fn mape(actual: &[f64], predicted: &[f64]) -> Result<f64> {
    check(actual, predicted)?;
    if actual.contains(&0.0) {
        return Err(invalid_param("actual", "MAPE undefined when an actual value is 0"));
    }
    Ok(100.0 * actual.iter().zip(predicted).map(|(y, yhat)| ((y - yhat) / y).abs()).sum::<f64>()
        / actual.len() as f64)
}

/// Symmetric MAPE (in percent, 0–200 range). Terms with both values zero
/// contribute 0.
pub fn smape(actual: &[f64], predicted: &[f64]) -> Result<f64> {
    check(actual, predicted)?;
    let acc: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(y, yhat)| {
            let denom = y.abs() + yhat.abs();
            if denom == 0.0 {
                0.0
            } else {
                2.0 * (y - yhat).abs() / denom
            }
        })
        .sum();
    Ok(100.0 * acc / actual.len() as f64)
}

/// Mean Absolute Scaled Error: MAE of the forecast divided by the MAE of the
/// in-sample naive (lag-1) forecast on `train`.
pub fn mase(train: &[f64], actual: &[f64], predicted: &[f64]) -> Result<f64> {
    check(actual, predicted)?;
    if train.len() < 2 {
        return Err(invalid_param("train", "needs at least 2 values for the naive scale"));
    }
    let scale =
        train.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (train.len() - 1) as f64;
    if scale == 0.0 {
        return Err(invalid_param("train", "constant training series gives zero MASE scale"));
    }
    Ok(mae(actual, predicted)? / scale)
}

/// All metrics bundled, as emitted by the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricReport {
    /// Root mean squared error.
    pub rmse: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Symmetric MAPE (percent).
    pub smape: f64,
}

/// Computes the full [`MetricReport`] in one pass over the inputs.
pub fn report(actual: &[f64], predicted: &[f64]) -> Result<MetricReport> {
    Ok(MetricReport {
        rmse: rmse(actual, predicted)?,
        mae: mae(actual, predicted)?,
        smape: smape(actual, predicted)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn rmse_matches_hand_computation() {
        // errors: 1, -1, 2 → mse = 2 → rmse = sqrt(2)
        let actual = [1.0, 2.0, 3.0];
        let predicted = [0.0, 3.0, 1.0];
        assert!((rmse(&actual, &predicted).unwrap() - 2.0_f64.sqrt()).abs() < EPS);
    }

    #[test]
    fn perfect_forecast_scores_zero() {
        let xs = [1.5, -2.0, 0.0, 7.25];
        assert_eq!(rmse(&xs, &xs).unwrap(), 0.0);
        assert_eq!(mae(&xs, &xs).unwrap(), 0.0);
        assert_eq!(smape(&xs, &xs).unwrap(), 0.0);
    }

    #[test]
    fn rmse_dominates_mae() {
        // RMSE >= MAE always (Jensen).
        let actual = [0.0, 0.0, 0.0, 0.0];
        let predicted = [1.0, -3.0, 2.0, 0.5];
        let r = rmse(&actual, &predicted).unwrap();
        let m = mae(&actual, &predicted).unwrap();
        assert!(r >= m);
    }

    #[test]
    fn mape_and_guards() {
        let actual = [10.0, 20.0];
        let predicted = [11.0, 18.0];
        // |1/10| + |2/20| = 0.1 + 0.1 → mean 0.1 → 10 %
        assert!((mape(&actual, &predicted).unwrap() - 10.0).abs() < EPS);
        assert!(mape(&[0.0, 1.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn smape_is_bounded() {
        let actual = [1.0, 2.0];
        let predicted = [-1.0, -2.0];
        // Fully opposite signs → 200 %.
        assert!((smape(&actual, &predicted).unwrap() - 200.0).abs() < EPS);
        assert_eq!(smape(&[0.0], &[0.0]).unwrap(), 0.0);
    }

    #[test]
    fn mase_scales_by_naive() {
        let train = [1.0, 2.0, 3.0, 4.0]; // naive MAE = 1
        let actual = [5.0, 6.0];
        let predicted = [5.5, 6.5];
        assert!((mase(&train, &actual, &predicted).unwrap() - 0.5).abs() < EPS);
        assert!(mase(&[2.0, 2.0], &actual, &predicted).is_err());
        assert!(mase(&[1.0], &actual, &predicted).is_err());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(rmse(&[1.0], &[1.0, 2.0]).is_err());
        assert!(mae(&[], &[]).is_err());
    }

    #[test]
    fn report_bundles_all() {
        let r = report(&[1.0, 2.0], &[1.0, 2.0]).unwrap();
        assert_eq!(r, MetricReport { rmse: 0.0, mae: 0.0, smape: 0.0 });
    }
}
