//! Spectral analysis: radix-2 FFT, periodogram, dominant-period detection.
//!
//! A more principled period detector than the ACF heuristic in
//! [`crate::rolling`]: the periodogram concentrates a periodic component's
//! energy in one frequency bin regardless of phase. Used by the ablation
//! harness to characterize the replica datasets and available to library
//! users for seasonal-model configuration (e.g. picking the Holt–Winters
//! period).

use crate::error::{invalid_param, Result, TsError};

/// A complex number (minimal, local — no dependency).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs from parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    fn mul(self, other: Complex) -> Complex {
        Complex::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }

    fn add(self, other: Complex) -> Complex {
        Complex::new(self.re + other.re, self.im + other.im)
    }

    fn sub(self, other: Complex) -> Complex {
        Complex::new(self.re - other.re, self.im - other.im)
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Panics
/// If the length is not a power of two (callers zero-pad; see [`fft_real`]).
pub fn fft(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterfly passes.
    let mut len = 2;
    while len <= n {
        let angle = -2.0 * std::f64::consts::PI / len as f64;
        let w_len = Complex::new(angle.cos(), angle.sin());
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let (lo, hi) = chunk.split_at_mut(len / 2);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let t = w.mul(*b);
                *b = a.sub(t);
                *a = a.add(t);
                w = w.mul(w_len);
            }
        }
        len <<= 1;
    }
}

/// FFT of a real series, zero-padded to the next power of two after mean
/// removal. Returns the padded length alongside the spectrum.
pub fn fft_real(xs: &[f64]) -> Result<(Vec<Complex>, usize)> {
    if xs.len() < 4 {
        return Err(invalid_param("series", "need at least 4 points for a spectrum"));
    }
    if xs.iter().any(|v| !v.is_finite()) {
        return Err(invalid_param("series", "values must be finite"));
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let n = xs.len().next_power_of_two();
    let mut data: Vec<Complex> = xs
        .iter()
        .map(|&x| Complex::new(x - mean, 0.0))
        .chain(std::iter::repeat(Complex::new(0.0, 0.0)))
        .take(n)
        .collect();
    fft(&mut data);
    Ok((data, n))
}

/// One periodogram bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumBin {
    /// Frequency in cycles per sample, in `(0, 0.5]`.
    pub frequency: f64,
    /// Corresponding period in samples (`1 / frequency`).
    pub period: f64,
    /// Power (squared magnitude, normalized by series length).
    pub power: f64,
}

/// Periodogram of a real series: one bin per positive frequency up to
/// Nyquist, mean removed, zero-padded to a power of two.
pub fn periodogram(xs: &[f64]) -> Result<Vec<SpectrumBin>> {
    let (spec, n) = fft_real(xs)?;
    let m = xs.len() as f64;
    Ok((1..=n / 2)
        .map(|k| {
            let frequency = k as f64 / n as f64;
            SpectrumBin { frequency, period: 1.0 / frequency, power: spec[k].norm_sq() / m }
        })
        .collect())
}

/// The dominant period of a series, by peak periodogram power.
///
/// Returns `None` when no bin dominates (peak power below `min_share` of
/// total power — white noise spreads energy across all bins).
pub fn dominant_period(xs: &[f64], min_share: f64) -> Result<Option<f64>> {
    if !(0.0..1.0).contains(&min_share) {
        return Err(invalid_param("min_share", format!("{min_share} not in [0, 1)")));
    }
    let bins = periodogram(xs)?;
    if bins.is_empty() {
        return Err(TsError::Empty);
    }
    let total: f64 = bins.iter().map(|b| b.power).sum();
    if total <= 0.0 {
        return Ok(None); // constant series
    }
    let mut peak = &bins[0];
    for bin in &bins[1..] {
        if bin.power > peak.power {
            peak = bin;
        }
    }
    Ok((peak.power / total >= min_share).then_some(peak.period))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_matches_dft_on_small_input() {
        // Compare against a naive DFT for n = 8.
        let xs: Vec<f64> = vec![1.0, 2.0, -1.0, 0.5, 0.0, -2.0, 3.0, 1.5];
        let mut data: Vec<Complex> = xs.iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft(&mut data);
        for (k, got) in data.iter().enumerate() {
            let mut want = Complex::new(0.0, 0.0);
            for (t, &x) in xs.iter().enumerate() {
                let angle = -2.0 * std::f64::consts::PI * (k * t) as f64 / 8.0;
                want = want.add(Complex::new(x * angle.cos(), x * angle.sin()));
            }
            assert!((got.re - want.re).abs() < 1e-9, "bin {k} re");
            assert!((got.im - want.im).abs() < 1e-9, "bin {k} im");
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::new(0.0, 0.0); 16];
        data[0] = Complex::new(1.0, 0.0);
        fft(&mut data);
        for c in &data {
            assert!((c.re - 1.0).abs() < 1e-12 && c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let xs: Vec<f64> = (0..64).map(|t| ((t * 7 % 13) as f64) - 6.0).collect();
        let mut data: Vec<Complex> = xs.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let time_energy: f64 = xs.iter().map(|x| x * x).sum();
        fft(&mut data);
        let freq_energy: f64 = data.iter().map(|c| c.norm_sq()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-6);
    }

    #[test]
    fn periodogram_peaks_at_sine_frequency() {
        // Period 16 = frequency 1/16; with n = 128 (power of two) the bin
        // lands exactly on k = 8.
        let xs: Vec<f64> =
            (0..128).map(|t| (2.0 * std::f64::consts::PI * t as f64 / 16.0).sin()).collect();
        let bins = periodogram(&xs).unwrap();
        let peak = bins.iter().max_by(|a, b| a.power.partial_cmp(&b.power).unwrap()).unwrap();
        assert!((peak.period - 16.0).abs() < 1e-9, "peak period {}", peak.period);
    }

    #[test]
    fn dominant_period_detects_and_rejects() {
        let sine: Vec<f64> =
            (0..200).map(|t| (2.0 * std::f64::consts::PI * t as f64 / 20.0).sin()).collect();
        let p = dominant_period(&sine, 0.2).unwrap().expect("sine has a period");
        // Zero-padding to 256 shifts bins slightly; accept ±2 samples.
        assert!((p - 20.0).abs() < 2.0, "period {p}");

        // Deterministic pseudo-noise: no single bin should dominate.
        let mut state = 11u64;
        let noise: Vec<f64> = (0..512)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect();
        assert_eq!(dominant_period(&noise, 0.2).unwrap(), None);

        // Constant series has zero AC power.
        assert_eq!(dominant_period(&[5.0; 32], 0.2).unwrap(), None);
    }

    #[test]
    fn input_validation() {
        assert!(periodogram(&[1.0, 2.0]).is_err());
        assert!(periodogram(&[1.0, f64::NAN, 2.0, 3.0]).is_err());
        assert!(dominant_period(&[1.0; 32], 1.5).is_err());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![Complex::new(0.0, 0.0); 12];
        fft(&mut data);
    }
}
