//! Rolling-window statistics and classical seasonal decomposition.
//!
//! Supporting analysis tools: centered moving averages, rolling mean/std,
//! and an additive trend/seasonal/residual decomposition (the classical
//! moving-average method). The benchmark harness uses these to
//! characterize the replica datasets; the task detectors use rolling
//! baselines in their evaluation harness.

use crate::error::{invalid_param, Result, TsError};

/// Centered moving average of odd window `w` (edges use the available
/// partial window, so the output has the input's length).
pub fn moving_average(xs: &[f64], w: usize) -> Result<Vec<f64>> {
    if w == 0 || w.is_multiple_of(2) {
        return Err(invalid_param("w", format!("window must be odd and positive, got {w}")));
    }
    if xs.is_empty() {
        return Err(TsError::Empty);
    }
    let half = w / 2;
    let mut out = Vec::with_capacity(xs.len());
    for i in 0..xs.len() {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(xs.len());
        out.push(xs[lo..hi].iter().sum::<f64>() / (hi - lo) as f64);
    }
    Ok(out)
}

/// Trailing rolling mean over windows of `w` (first `w-1` entries use the
/// partial prefix).
pub fn rolling_mean(xs: &[f64], w: usize) -> Result<Vec<f64>> {
    if w == 0 {
        return Err(invalid_param("w", "window must be positive"));
    }
    if xs.is_empty() {
        return Err(TsError::Empty);
    }
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = 0.0;
    for i in 0..xs.len() {
        acc += xs[i];
        if i >= w {
            acc -= xs[i - w];
        }
        out.push(acc / w.min(i + 1) as f64);
    }
    Ok(out)
}

/// Trailing rolling standard deviation (population, partial prefixes as in
/// [`rolling_mean`]).
pub fn rolling_std(xs: &[f64], w: usize) -> Result<Vec<f64>> {
    if w == 0 {
        return Err(invalid_param("w", "window must be positive"));
    }
    if xs.is_empty() {
        return Err(TsError::Empty);
    }
    let mut out = Vec::with_capacity(xs.len());
    for i in 0..xs.len() {
        let lo = (i + 1).saturating_sub(w);
        let win = &xs[lo..=i];
        let m = win.iter().sum::<f64>() / win.len() as f64;
        let v = win.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / win.len() as f64;
        out.push(v.sqrt());
    }
    Ok(out)
}

/// Result of an additive classical decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Smooth trend component.
    pub trend: Vec<f64>,
    /// Seasonal component (periodic with the given period, zero mean).
    pub seasonal: Vec<f64>,
    /// Residual: `x - trend - seasonal`.
    pub residual: Vec<f64>,
}

/// Classical additive decomposition with known `period`:
/// trend = centered moving average over one period (odd-extended),
/// seasonal = per-phase mean of the detrended series (re-centered),
/// residual = remainder.
pub fn decompose_additive(xs: &[f64], period: usize) -> Result<Decomposition> {
    if period < 2 {
        return Err(invalid_param("period", "must be at least 2"));
    }
    if xs.len() < 2 * period {
        return Err(invalid_param(
            "period",
            format!("need at least two periods ({} points), have {}", 2 * period, xs.len()),
        ));
    }
    let w = if period % 2 == 1 { period } else { period + 1 };
    let trend = moving_average(xs, w)?;
    let detrended: Vec<f64> = xs.iter().zip(&trend).map(|(x, t)| x - t).collect();
    // Per-phase means.
    let mut phase_sum = vec![0.0; period];
    let mut phase_count = vec![0usize; period];
    for (i, &d) in detrended.iter().enumerate() {
        phase_sum[i % period] += d;
        phase_count[i % period] += 1;
    }
    let mut phase_mean: Vec<f64> =
        phase_sum.iter().zip(&phase_count).map(|(s, &c)| s / c as f64).collect();
    // Re-center so the seasonal component has zero mean.
    let grand = phase_mean.iter().sum::<f64>() / period as f64;
    for p in &mut phase_mean {
        *p -= grand;
    }
    let seasonal: Vec<f64> = (0..xs.len()).map(|i| phase_mean[i % period]).collect();
    let residual: Vec<f64> =
        xs.iter().zip(&trend).zip(&seasonal).map(|((x, t), s)| x - t - s).collect();
    Ok(Decomposition { trend, seasonal, residual })
}

/// Estimates the dominant period via the autocorrelation function: the
/// lag in `2..=max_lag` with the highest ACF that is also a local
/// maximum. `None` when nothing periodic stands out (peak ACF < 0.1).
pub fn estimate_period(xs: &[f64], max_lag: usize) -> Result<Option<usize>> {
    let max_lag = max_lag.min(xs.len().saturating_sub(2));
    if max_lag < 3 {
        return Err(invalid_param("max_lag", "series too short for period estimation"));
    }
    let rho = crate::stats::acf(xs, max_lag)?;
    let mut best: Option<(usize, f64)> = None;
    for lag in 2..max_lag {
        let is_peak = rho[lag] > rho[lag - 1] && rho[lag] >= rho[lag + 1];
        if is_peak && best.is_none_or(|(_, v)| rho[lag] > v) {
            best = Some((lag, rho[lag]));
        }
    }
    Ok(best.filter(|&(_, v)| v >= 0.1).map(|(lag, _)| lag))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn moving_average_smooths_and_keeps_length() {
        let xs = [1.0, 5.0, 1.0, 5.0, 1.0];
        let ma = moving_average(&xs, 3).unwrap();
        assert_eq!(ma.len(), 5);
        assert!((ma[1] - 7.0 / 3.0).abs() < EPS);
        assert!((ma[0] - 3.0).abs() < EPS); // partial edge window
        assert!(moving_average(&xs, 2).is_err());
        assert!(moving_average(&[], 3).is_err());
    }

    #[test]
    fn rolling_mean_trailing_window() {
        let xs = [2.0, 4.0, 6.0, 8.0];
        let rm = rolling_mean(&xs, 2).unwrap();
        assert_eq!(rm, vec![2.0, 3.0, 5.0, 7.0]);
        assert!(rolling_mean(&xs, 0).is_err());
    }

    #[test]
    fn rolling_std_on_constant_is_zero() {
        let rs = rolling_std(&[3.0; 6], 3).unwrap();
        assert!(rs.iter().all(|&v| v.abs() < EPS));
        let rs = rolling_std(&[0.0, 2.0, 0.0, 2.0], 2).unwrap();
        assert!((rs[1] - 1.0).abs() < EPS);
    }

    #[test]
    fn decomposition_recovers_known_components() {
        let period = 8;
        let n = 96;
        let xs: Vec<f64> = (0..n)
            .map(|t| {
                0.25 * t as f64 // trend
                    + 5.0 * (t as f64 * 2.0 * std::f64::consts::PI / period as f64).sin()
            })
            .collect();
        let d = decompose_additive(&xs, period).unwrap();
        // Interior trend slope ≈ 0.25 (edges are biased by partial windows).
        let slope = (d.trend[70] - d.trend[30]) / 40.0;
        assert!((slope - 0.25).abs() < 0.02, "slope {slope}");
        // Seasonal is periodic and roughly ±5 amplitude.
        for t in 0..n - period {
            assert!((d.seasonal[t] - d.seasonal[t + period]).abs() < EPS);
        }
        let amp = d.seasonal.iter().cloned().fold(f64::MIN, f64::max);
        assert!((amp - 5.0).abs() < 0.5, "amplitude {amp}");
        // Residuals small away from the edges.
        let mid_res: f64 = d.residual[20..76].iter().map(|r| r.abs()).sum::<f64>() / 56.0;
        assert!(mid_res < 0.6, "mean residual {mid_res}");
    }

    #[test]
    fn decomposition_components_sum_back() {
        let xs: Vec<f64> = (0..40).map(|t| (t as f64 * 0.7).sin() + 0.1 * t as f64).collect();
        let d = decompose_additive(&xs, 9).unwrap();
        for (i, &x) in xs.iter().enumerate() {
            let sum = d.trend[i] + d.seasonal[i] + d.residual[i];
            assert!((sum - x).abs() < EPS);
        }
        assert!(decompose_additive(&xs, 1).is_err());
        assert!(decompose_additive(&xs, 30).is_err());
    }

    #[test]
    fn period_estimation_finds_sine_period() {
        let xs: Vec<f64> =
            (0..200).map(|t| (t as f64 * 2.0 * std::f64::consts::PI / 16.0).sin()).collect();
        let p = estimate_period(&xs, 40).unwrap();
        assert_eq!(p, Some(16));
    }

    #[test]
    fn period_estimation_rejects_noise() {
        // Deterministic pseudo-noise.
        let mut state = 5u64;
        let xs: Vec<f64> = (0..3000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect();
        let p = estimate_period(&xs, 50).unwrap();
        assert_eq!(p, None, "white noise has no dominant period");
    }
}
