//! The common forecaster interface.
//!
//! Every method the paper evaluates — the three MultiCast variants,
//! LLMTime, ARIMA and LSTM — implements [`MultivariateForecaster`], so the
//! benchmark harness can sweep methods uniformly (Tables IV–VI are exactly
//! such sweeps). Univariate methods (ARIMA, LLMTime) are applied
//! per-dimension, as the paper does, via [`PerDimension`].

use crate::error::Result;
use crate::series::MultivariateSeries;

/// A method that, given an observed multivariate history, predicts the next
/// `horizon` timestamps for every dimension.
pub trait MultivariateForecaster {
    /// Method name as it appears in the paper's tables.
    fn name(&self) -> String;

    /// Produces a forecast of `horizon` rows continuing `train`.
    fn forecast(
        &mut self,
        train: &MultivariateSeries,
        horizon: usize,
    ) -> Result<MultivariateSeries>;
}

/// A univariate method applied to one dimension at a time.
pub trait UnivariateForecaster {
    /// Method name.
    fn name(&self) -> String;

    /// Forecast `horizon` values continuing `train`.
    fn forecast_univariate(&mut self, train: &[f64], horizon: usize) -> Result<Vec<f64>>;
}

/// Adapter: runs a univariate forecaster independently on every dimension —
/// the paper's protocol for ARIMA and LLMTime ("applied in each dimension
/// separately").
pub struct PerDimension<F>(pub F);

impl<F: UnivariateForecaster> MultivariateForecaster for PerDimension<F> {
    fn name(&self) -> String {
        self.0.name()
    }

    fn forecast(
        &mut self,
        train: &MultivariateSeries,
        horizon: usize,
    ) -> Result<MultivariateSeries> {
        let mut columns = Vec::with_capacity(train.dims());
        for d in 0..train.dims() {
            columns.push(self.0.forecast_univariate(train.column(d)?, horizon)?);
        }
        MultivariateSeries::from_columns(train.names().to_vec(), columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A forecaster that repeats the last value — used to validate the
    /// adapter plumbing.
    struct LastValue;

    impl UnivariateForecaster for LastValue {
        fn name(&self) -> String {
            "last-value".into()
        }

        fn forecast_univariate(&mut self, train: &[f64], horizon: usize) -> Result<Vec<f64>> {
            let last = *train.last().ok_or(crate::TsError::Empty)?;
            Ok(vec![last; horizon])
        }
    }

    #[test]
    fn per_dimension_adapter_runs_each_column() {
        let m = MultivariateSeries::from_rows(
            vec!["a".into(), "b".into()],
            &[[1.0, 10.0], [2.0, 20.0]],
        )
        .unwrap();
        let mut f = PerDimension(LastValue);
        assert_eq!(f.name(), "last-value");
        let fc = f.forecast(&m, 3).unwrap();
        assert_eq!(fc.len(), 3);
        assert_eq!(fc.column(0).unwrap(), &[2.0, 2.0, 2.0]);
        assert_eq!(fc.column(1).unwrap(), &[20.0, 20.0, 20.0]);
        assert_eq!(fc.names(), m.names());
    }
}
