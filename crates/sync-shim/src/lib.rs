//! Workspace-wide shim over the concurrency primitives.
//!
//! Concurrency-bearing crates import `Mutex`, `Condvar`, `Arc`, the
//! atomics, and `thread` from here instead of `std::sync` /
//! `std::thread`. An ordinary build compiles to zero-cost re-exports of
//! `std`; a `--cfg loom` build (the model-checking CI job) swaps in the
//! [`mc_loom`] primitives, whose every operation is a schedule point
//! explored by the bounded-exhaustive checker.
//!
//! Direct `std::sync::{Mutex, Condvar}` use outside this crate is a
//! workspace invariant enforced by `cargo xtask lint` — new code that
//! bypasses the shim is invisible to the model checker and fails CI.

/// `Mutex`/`Condvar`/`Arc` — `std::sync` or model-checked equivalents.
#[cfg(loom)]
pub use mc_loom::sync::{Arc, Condvar, Mutex, MutexGuard};
#[cfg(not(loom))]
pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Atomic integers and `Ordering`.
#[cfg(loom)]
pub use mc_loom::sync::atomic;
#[cfg(not(loom))]
pub use std::sync::atomic;

/// Thread spawn/join/yield (model-scheduled under `--cfg loom`).
#[cfg(loom)]
pub use mc_loom::thread;
#[cfg(not(loom))]
pub use std::thread;
