//! Golden-spec fixtures: every `specs/*.spec` file parses, and its
//! lowering reproduces exactly what the pre-refactor bench bins
//! hard-coded — dataset, seeds, sample counts, serve shape, fault
//! profiles and sweep axes. A drift here means a scenario silently
//! measures something different from the committed `results/` artifacts.

use std::fs;
use std::path::{Path, PathBuf};

use mc_datasets::PaperDataset;
use mc_spec::{Lowered, ScenarioKind, ScenarioSpec};
use multicast_core::{ForecastConfig, MuxMethod};

fn specs_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs")
}

fn load(name: &str) -> ScenarioSpec {
    let path = specs_dir().join(format!("{name}.spec"));
    let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    ScenarioSpec::parse(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

/// Every former bench bin has exactly one golden spec, the file stem is
/// the scenario's canonical name, and nothing else lives in `specs/`.
#[test]
fn spec_directory_is_complete_and_canonical() {
    let expected = [
        "ablation",
        "backtest",
        "cache_reuse",
        "concurrent_serving",
        "fault_injection",
        "figures",
        "latency_audit",
        "prompt_reuse",
        "serve_chaos",
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "table7",
        "table8",
        "table9",
        "tasks_eval",
        "telemetry",
        "tokenization",
    ];
    let mut found: Vec<String> = fs::read_dir(specs_dir())
        .expect("specs/ exists")
        .map(|e| e.expect("dir entry").path())
        .map(|p| {
            assert_eq!(
                p.extension().and_then(|x| x.to_str()),
                Some("spec"),
                "stray file {}",
                p.display()
            );
            p.file_stem().and_then(|s| s.to_str()).expect("utf-8 stem").to_string()
        })
        .collect();
    found.sort();
    assert_eq!(found, expected);
    for name in expected {
        let spec = load(name);
        assert_eq!(spec.name, name, "{name}.spec must keep the canonical scenario name");
        assert_eq!(spec.kind.token(), name, "{name}.spec names a different scenario");
    }
}

/// The fully-pinned chaos spec lowers to the same shape as the builder's
/// bare kind defaults — the explicit file documents what the defaults
/// are, and this test keeps the two from drifting apart.
#[test]
fn serve_chaos_spec_pins_the_old_bin_exactly() {
    let lowered = Lowered::lower(&load("serve_chaos"), false);
    let defaults = Lowered::lower(&ScenarioSpec::new(ScenarioKind::ServeChaos), false);
    assert_eq!(lowered, defaults, "specs/serve_chaos.spec drifted from the builder defaults");
    // And both match the values the pre-refactor serve_chaos bin wired.
    assert_eq!(lowered.config.samples, 3);
    assert_eq!(lowered.config.seed, 9000);
    assert_eq!(lowered.config.robust.deadline_tokens, Some(240));
    assert_eq!(lowered.config.robust.backoff_base, 2);
    assert_eq!(lowered.serve.workers, 8);
    assert_eq!(lowered.serve.queue_cap, Some(6));
    assert_eq!(lowered.serve.submit_cap, Some(8));
    assert_eq!(lowered.serve.quota_tokens, Some(2500));
    assert!(lowered.serve.breaker.is_some());
    assert_eq!((lowered.waves, lowered.per_wave), (3, 8));
    let faults = lowered.faults.expect("chaos profile");
    assert_eq!((faults.rate, faults.seed, faults.latency_tokens), (0.3, 77, 8));
    assert_eq!(faults.quota_tokens, Some(2500));
}

/// The fully-pinned cache spec lowers to the same shape as the
/// builder's bare kind defaults, and both keep the bench gate's
/// geometry: at least two waves (so the later ones are warm) of at
/// least eight requests each.
#[test]
fn cache_reuse_spec_pins_the_builder_defaults() {
    let lowered = Lowered::lower(&load("cache_reuse"), false);
    let defaults = Lowered::lower(&ScenarioSpec::new(ScenarioKind::CacheReuse), false);
    assert_eq!(lowered, defaults, "specs/cache_reuse.spec drifted from the builder defaults");
    assert_eq!(lowered.config.samples, 5);
    assert_eq!(lowered.config.seed, 1000);
    assert_eq!(lowered.serve.workers, 8);
    assert_eq!(lowered.serve.cache, Some(mc_lm::cache::CacheConfig::default()));
    assert_eq!((lowered.waves, lowered.per_wave), (3, 8));
    let fast = Lowered::lower(&ScenarioSpec::new(ScenarioKind::CacheReuse), true);
    assert!(fast.waves >= 2 && fast.per_wave >= 8, "--fast must keep the gate geometry");
}

/// The fully-pinned latency-audit spec lowers to the same shape as the
/// builder's bare kind defaults: the audited wave's geometry is what
/// the gated `BENCH_latency_audit.json` percentiles were measured at.
#[test]
fn latency_audit_spec_pins_the_builder_defaults() {
    let lowered = Lowered::lower(&load("latency_audit"), false);
    let defaults = Lowered::lower(&ScenarioSpec::new(ScenarioKind::LatencyAudit), false);
    assert_eq!(lowered, defaults, "specs/latency_audit.spec drifted from the builder defaults");
    assert_eq!(lowered.config.samples, 5);
    assert_eq!(lowered.config.seed, 1000);
    assert_eq!(lowered.config.robust.backoff_base, 2);
    assert_eq!(lowered.serve.workers, 8);
    assert_eq!(lowered.serve.quota_tokens, None, "no quota: the audited wave must complete");
    assert_eq!(lowered.audit_requests, 8);
    assert_eq!(lowered.blame_tolerance, 0.01);
    let faults = lowered.faults.expect("audit fault profile");
    assert_eq!((faults.rate, faults.seed, faults.latency_tokens), (0.25, 77, 4));
    assert_eq!(faults.quota_tokens, None);
    // The pinned file keeps the gate geometry under --fast; the bare
    // kind shrinks.
    assert_eq!(Lowered::lower(&load("latency_audit"), true).audit_requests, 8);
    assert_eq!(
        Lowered::lower(&ScenarioSpec::new(ScenarioKind::LatencyAudit), true).audit_requests,
        5
    );
}

#[test]
fn fault_injection_spec_pins_the_old_bin_exactly() {
    let spec = load("fault_injection");
    let lowered = Lowered::lower(&spec, false);
    assert_eq!(lowered, Lowered::lower(&ScenarioSpec::new(ScenarioKind::FaultInjection), false));
    assert_eq!(lowered.config.samples, 5, "paper default sampling width");
    assert_eq!(Lowered::lower(&spec, true).config.samples, 3, "--fast keeps the 3-sample floor");
    let faults = lowered.faults.expect("fault profile");
    assert_eq!(faults.seed, 0xFA017);
    assert_eq!(faults.panic_sample, Some(0));
    assert_eq!(faults.rate, 0.0, "the scenario sweeps the rate itself");
}

#[test]
fn backtest_spec_pins_the_old_bin_exactly() {
    let lowered = Lowered::lower(&load("backtest"), false);
    assert_eq!(lowered.config.samples, 5);
    assert_eq!(lowered.config.seed, ForecastConfig::default().seed);
    assert_eq!(lowered.config.digits, 3);
    assert!(lowered.faults.is_none());
    assert_eq!(lowered.config.robust.deadline_tokens, None);
    // The old bin's --fast dropped to one sample.
    assert_eq!(Lowered::lower(&load("backtest"), true).config.samples, 5, "explicit pin wins");
    assert_eq!(Lowered::lower(&ScenarioSpec::new(ScenarioKind::Backtest), true).config.samples, 1);
}

#[test]
fn serving_specs_pin_the_old_bin_exactly() {
    let serving = Lowered::lower(&load("concurrent_serving"), false);
    assert_eq!(serving.config.seed, 1000, "requests seed from 1000 + index");
    assert_eq!(serving.serve.workers, 8);
    assert_eq!(serving.sweep, vec![1, 2, 4, 8], "request counts R");
    assert_eq!(serving.samples_sweep, vec![5, 10], "sampling widths S");
    assert_eq!(serving, Lowered::lower(&ScenarioSpec::new(ScenarioKind::ConcurrentServing), false));

    let telemetry = Lowered::lower(&load("telemetry"), false);
    assert_eq!(telemetry.config.samples, 5);
    assert_eq!(telemetry.config.seed, 1000);
    assert_eq!((telemetry.waves, telemetry.per_wave), (1, 8), "one 8-request batch");
    assert_eq!(telemetry.serve.workers, 8);
    assert_eq!(telemetry, Lowered::lower(&ScenarioSpec::new(ScenarioKind::Telemetry), false));
}

#[test]
fn sweep_specs_pin_the_old_bins_exactly() {
    assert_eq!(Lowered::lower(&load("table7"), false).sweep, vec![5, 10, 20]);
    assert_eq!(Lowered::lower(&load("table8"), false).sweep, vec![3, 6, 9]);
    assert_eq!(Lowered::lower(&load("table9"), false).sweep, vec![5, 10, 20]);
    assert_eq!(Lowered::lower(&load("prompt_reuse"), false).sweep, vec![5, 10, 20]);
    // Unpinned sweeps shrink under --fast; the pinned files do not.
    assert_eq!(
        Lowered::lower(&ScenarioSpec::new(ScenarioKind::PromptReuse), true).sweep,
        vec![1, 2]
    );
    assert_eq!(Lowered::lower(&load("prompt_reuse"), true).sweep, vec![5, 10, 20]);
}

#[test]
fn single_dataset_specs_default_to_gas_rate_and_vi() {
    for name in ["tokenization", "ablation", "tasks_eval", "figures", "table1"] {
        let lowered = Lowered::lower(&load(name), false);
        assert_eq!(lowered.dataset, PaperDataset::GasRate, "{name}");
        assert_eq!(lowered.mux, MuxMethod::ValueInterleave, "{name}");
        assert_eq!(lowered.config.samples, 5, "{name}");
        assert_eq!(lowered.config, ForecastConfig { samples: 5, ..ForecastConfig::default() });
    }
}
