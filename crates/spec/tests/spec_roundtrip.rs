//! Property tests for the spec surface: `parse(display(spec)) == spec`
//! over randomly-populated specs, duplicate/unknown keys are typed
//! errors, and hostile input never panics the parser.

use mc_datasets::PaperDataset;
use mc_lm::presets::ModelPreset;
use mc_spec::{ScenarioKind, ScenarioSpec, SpecError};
use multicast_core::robust::FaultProfile;
use multicast_core::MuxMethod;
use proptest::prelude::*;

const FAULT_PROFILES: [&str; 4] = [
    "rate=0.3,seed=77,latency=8,quota=2500",
    "rate=0,seed=1024023,panic=0",
    "rate=1,seed=9",
    "rate=0.05,seed=3,panic=2,latency=1,quota=100",
];

const DATASETS: [PaperDataset; 3] =
    [PaperDataset::GasRate, PaperDataset::Electricity, PaperDataset::Weather];
const MUXES: [MuxMethod; 3] =
    [MuxMethod::DigitInterleave, MuxMethod::ValueInterleave, MuxMethod::ValueConcat];
const PRESETS: [ModelPreset; 5] = [
    ModelPreset::Large,
    ModelPreset::Small,
    ModelPreset::Suffix,
    ModelPreset::Ensemble,
    ModelPreset::Ppm,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The canonical `Display` form parses back to the identical spec,
    /// whatever subset of knobs is populated.
    #[test]
    fn display_then_parse_round_trips(
        kind_idx in 0usize..ScenarioKind::ALL.len(),
        mask in any::<u32>(),
        name in "[a-z][a-z0-9_]{0,11}",
        picks in (0usize..3, 0usize..3, 0usize..5, 0usize..4),
        samples in 1usize..64,
        digits in 1u32..9,
        seed in any::<u64>(),
        temp_milli in 0u64..5000,
        sweep in prop::collection::vec(1usize..200, 1..6),
        samples_sweep in prop::collection::vec(1usize..40, 1..4),
        robust in (0usize..8, 1usize..8, 1u64..600, 0u32..6),
        serve in (1usize..16, 1usize..32, 1usize..40, 1usize..6, 1usize..20),
        breaker_on in any::<bool>(),
        latency in (1usize..32, 0u64..200),
    ) {
        let mut spec = ScenarioSpec::new(ScenarioKind::ALL[kind_idx]);
        let bit = |i: u32| mask & (1 << i) != 0;
        if bit(0) { spec.name = name; }
        if bit(1) { spec.dataset = Some(DATASETS[picks.0]); }
        if bit(2) { spec.mux = Some(MUXES[picks.1]); }
        if bit(3) { spec.preset = Some(PRESETS[picks.2]); }
        if bit(4) { spec.samples = Some(samples); }
        if bit(5) { spec.digits = Some(digits); }
        if bit(6) { spec.seed = Some(seed); }
        if bit(7) { spec.temperature = Some(temp_milli as f64 / 1000.0); }
        if bit(8) {
            spec.faults =
                Some(FaultProfile::parse(FAULT_PROFILES[picks.3]).expect("fixture profile"));
        }
        if bit(9) { spec.sweep = Some(sweep); }
        if bit(10) { spec.samples_sweep = Some(samples_sweep); }
        if bit(11) { spec.robust.retries = Some(robust.0); }
        if bit(12) { spec.robust.min_valid = Some(robust.1); }
        if bit(13) { spec.robust.deadline_tokens = Some(robust.2); }
        if bit(14) { spec.robust.backoff_base = Some(robust.3); }
        if bit(15) { spec.serve.workers = Some(serve.0); }
        if bit(16) { spec.serve.queue_cap = Some(serve.1); }
        if bit(17) { spec.serve.submit_cap = Some(serve.2); }
        if bit(18) { spec.serve.breaker = Some(breaker_on); }
        if bit(19) { spec.serve.waves = Some(serve.3); }
        if bit(20) { spec.serve.per_wave = Some(serve.4); }
        if bit(21) { spec.latency.requests = Some(latency.0); }
        // Permille keeps the f64 round-trip exact through `Display`.
        if bit(22) { spec.latency.tolerance = Some(latency.1 as f64 / 1000.0); }

        let text = spec.to_string();
        let parsed = match ScenarioSpec::parse(&text) {
            Ok(parsed) => parsed,
            Err(e) => return Err(TestCaseError::Fail(format!("reparse failed: {e}\n{text}"))),
        };
        prop_assert_eq!(parsed, spec, "canonical form:\n{}", text);
    }

    /// Appending any already-present top-level key is a typed
    /// `DuplicateKey` error, never a silent last-one-wins.
    #[test]
    fn duplicate_keys_are_rejected(
        kind_idx in 0usize..ScenarioKind::ALL.len(),
        samples in 1usize..50,
        again in 1usize..50,
    ) {
        let mut spec = ScenarioSpec::new(ScenarioKind::ALL[kind_idx]);
        spec.samples = Some(samples);
        // No sections are populated, so the duplicate lands top-level.
        let text = format!("{spec}samples = {again}\n");
        let err = ScenarioSpec::parse(&text).expect_err("duplicate must not parse");
        prop_assert!(
            matches!(&err, SpecError::DuplicateKey { key, .. } if key == "samples"),
            "got {:?}", err
        );
    }

    /// Unknown top-level keys are typed errors regardless of value.
    #[test]
    fn unknown_keys_are_rejected(
        key in "[a-z][a-z_]{0,11}",
        value in "[a-z0-9,.=]{0,16}",
    ) {
        const KNOWN: [&str; 12] = [
            "scenario", "name", "dataset", "mux", "preset", "samples", "digits", "seed",
            "temperature", "faults", "sweep", "samples_sweep",
        ];
        prop_assume!(!KNOWN.contains(&key.as_str()));
        let text = format!("scenario = backtest\n{key} = {value}\n");
        let err = ScenarioSpec::parse(&text).expect_err("unknown key must not parse");
        prop_assert!(
            matches!(&err, SpecError::UnknownKey { key: k, section: None, .. } if *k == key),
            "got {:?}", err
        );
    }

    /// Arbitrary printable line soup parses or fails with a typed error;
    /// it never panics and never fabricates a scenario.
    #[test]
    fn hostile_input_never_panics(
        lines in prop::collection::vec("[ -~]{0,32}", 0..10),
    ) {
        let text = lines.join("\n");
        if let Ok(spec) = ScenarioSpec::parse(&text) {
            // Anything that parses must re-parse to itself.
            prop_assert_eq!(ScenarioSpec::parse(&spec.to_string()).ok(), Some(spec));
        }
    }
}
