//! End-to-end parity: the scenario runner reproduces the checked-in
//! `results/` artifacts the pre-refactor bins produced, byte for byte,
//! and the chaos BENCH report is schedule-independent — identical at 1,
//! 2 and 8 workers and across repeats, because every metric derives from
//! the logical clock, never the scheduler.

use std::fs;
use std::path::{Path, PathBuf};

use mc_spec::{RunOptions, Runner, ScenarioKind, ScenarioSpec};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// A fresh per-test scratch directory under the system temp root.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mc-spec-parity-{}-{tag}", std::process::id()));
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn committed(rel: &str) -> String {
    let path = repo_root().join(rel);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn backtest_runner_matches_checked_in_artifact() {
    let dir = scratch("backtest");
    let opts = RunOptions { results_dir: dir.clone(), ..RunOptions::default() };
    let summary = Runner::new(opts).run_kind(ScenarioKind::Backtest).expect("backtest runs");
    assert_eq!(summary.artifacts.len(), 1);
    let fresh = fs::read_to_string(dir.join("backtest.md")).expect("fresh artifact");
    assert_eq!(
        fresh,
        committed("results/backtest.md"),
        "runner output diverged from the checked-in results/backtest.md"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_chaos_runner_matches_checked_in_artifact() {
    let dir = scratch("serve-chaos-md");
    let opts = RunOptions {
        results_dir: dir.clone(),
        bench_dir: Some(dir.clone()),
        ..RunOptions::default()
    };
    let summary = Runner::new(opts).run_kind(ScenarioKind::ServeChaos).expect("chaos runs");
    let fresh = fs::read_to_string(dir.join("serve_chaos.md")).expect("fresh artifact");
    assert_eq!(
        fresh,
        committed("results/serve_chaos.md"),
        "runner output diverged from the checked-in results/serve_chaos.md"
    );
    let bench = summary.bench.expect("chaos emits a BENCH report");
    assert_eq!(
        bench.to_pretty(),
        committed("results/BENCH_serve_chaos.json"),
        "BENCH report diverged from the checked-in results/BENCH_serve_chaos.json"
    );
    fs::remove_dir_all(&dir).ok();
}

/// The acceptance bar for machine-readable gates: the chaos BENCH file is
/// byte-identical across worker counts and repeats. Every number in it is
/// logical-clock-derived; a scheduler dependency would surface here.
#[test]
fn serve_chaos_bench_is_schedule_independent() {
    let mut renders: Vec<(usize, String)> = Vec::new();
    for workers in [1usize, 2, 8] {
        for repeat in 0..if workers == 8 { 2 } else { 1 } {
            let dir = scratch(&format!("chaos-w{workers}-r{repeat}"));
            let mut spec = ScenarioSpec::new(ScenarioKind::ServeChaos);
            spec.serve.workers = Some(workers);
            let opts = RunOptions {
                results_dir: dir.clone(),
                bench_dir: Some(dir.clone()),
                ..RunOptions::default()
            };
            let summary = Runner::new(opts).run(&spec).expect("chaos runs");
            let from_summary = summary.bench.expect("BENCH report").to_pretty();
            let from_disk =
                fs::read_to_string(dir.join("BENCH_serve_chaos.json")).expect("BENCH on disk");
            assert_eq!(from_summary, from_disk, "summary and disk BENCH agree");
            renders.push((workers, from_disk));
            fs::remove_dir_all(&dir).ok();
        }
    }
    let (_, reference) = &renders[0];
    for (workers, render) in &renders[1..] {
        assert_eq!(
            render, reference,
            "BENCH_serve_chaos.json changed at {workers} workers — a metric leaked \
             scheduler state"
        );
    }
}

/// The cache study's BENCH file carries only logical-clock numbers (hit
/// ledger, fit-normalized throughput, token spends), so it must be
/// byte-identical across worker counts and repeats — at CI (`--fast`)
/// scale, which keeps the gate geometry of >= 2 waves x >= 8 requests.
#[test]
fn cache_reuse_bench_is_schedule_independent() {
    let mut renders: Vec<(usize, String)> = Vec::new();
    for workers in [2usize, 8] {
        for repeat in 0..if workers == 8 { 2 } else { 1 } {
            let dir = scratch(&format!("cache-w{workers}-r{repeat}"));
            let mut spec = ScenarioSpec::new(ScenarioKind::CacheReuse);
            spec.serve.workers = Some(workers);
            let opts = RunOptions { results_dir: dir.clone(), fast: true, ..RunOptions::default() };
            let summary = Runner::new(opts).run(&spec).expect("cache reuse runs");
            let bench = summary.bench.expect("cache reuse emits a BENCH report");
            assert!(bench.metric("hit_rate").unwrap_or(0.0) > 0.0, "warm waves must hit");
            assert!(
                bench.metric("throughput_warm_over_cold").unwrap_or(0.0) >= 2.0,
                "warm serving must at least double fit-normalized throughput"
            );
            renders.push((workers, bench.to_pretty()));
            fs::remove_dir_all(&dir).ok();
        }
    }
    let (_, reference) = &renders[0];
    for (workers, render) in &renders[1..] {
        assert_eq!(
            render, reference,
            "BENCH_cache_reuse.json changed at {workers} workers — a metric leaked \
             scheduler state"
        );
    }
}

/// The tokenization study's BENCH report is deterministic across repeats
/// (it has no serve path at all — pure single-threaded decode).
#[test]
fn tokenization_bench_is_deterministic_across_repeats() {
    let mut renders: Vec<String> = Vec::new();
    for repeat in 0..2 {
        let dir = scratch(&format!("tok-r{repeat}"));
        let opts = RunOptions {
            results_dir: dir.clone(),
            bench_dir: Some(dir.clone()),
            ..RunOptions::default()
        };
        let summary =
            Runner::new(opts).run_kind(ScenarioKind::Tokenization).expect("tokenization runs");
        renders.push(summary.bench.expect("BENCH report").to_pretty());
        fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(renders[0], renders[1]);
    assert_eq!(
        renders[0],
        committed("results/BENCH_tokenization.json"),
        "BENCH report diverged from the checked-in results/BENCH_tokenization.json"
    );
}
