//! One function per paper table; the table binaries and the `repro`
//! umbrella are thin wrappers around these.
//!
//! Each function runs the complete experiment and returns a
//! [`Table`] ready to print/save. A `samples_override` lets tests run the
//! sweeps with one sample instead of the paper defaults.

use mc_datasets::PaperDataset;
use mc_lm::presets::ModelPreset;
use mc_sax::alphabet::{SaxAlphabet, SaxAlphabetKind};
use mc_sax::encoder::SaxConfig;
use mc_tslib::error::Result;
use mc_tslib::forecast::MultivariateForecaster;
use mc_tslib::metrics::rmse;
use mc_tslib::split::holdout_split;
use multicast_core::{
    ForecastConfig, LlmTimeForecaster, MultiCastForecaster, MuxMethod, SaxForecastConfig,
    SaxMultiCastForecaster,
};

use crate::report::{fmt_metric, Table};
use crate::roster::{evaluate_roster, mark_winners, standard_roster};
use crate::timing::{format_seconds, timed};
use crate::TEST_FRACTION;

fn config_with(samples: usize, preset: ModelPreset) -> ForecastConfig {
    ForecastConfig { samples, preset, ..ForecastConfig::default() }
}

/// Table I — dataset inventory.
pub fn table1_datasets() -> Table {
    let mut t = Table::new("Table I — Datasets", &["Dataset", "Dimensions", "Length"]);
    for ds in PaperDataset::ALL {
        let info = ds.info();
        t.row(vec![info.name.to_string(), info.dims.to_string(), info.length.to_string()]);
    }
    t
}

/// Table II — parameter space with defaults.
pub fn table2_parameters() -> Table {
    let mut t = Table::new("Table II — Parameters (defaults in bold)", &["Parameter", "Range"]);
    t.row(vec!["Dimensions".into(), "**2**, 3, 4".into()]);
    t.row(vec!["Number of samples".into(), "**5**, 10, 20".into()]);
    t.row(vec!["SAX segment length".into(), "3, **6**, 9".into()]);
    t.row(vec!["SAX alphabet size".into(), "**5**, 10, 20".into()]);
    t
}

/// Table III — backend comparison (LLaMA2-7B vs Phi-2 stand-ins) on
/// Gas Rate with MultiCast (VI).
pub fn table3_model_comparison(samples: usize) -> Result<Table> {
    let series = PaperDataset::GasRate.load();
    let (train, test) = holdout_split(&series, TEST_FRACTION)?;
    let mut t = Table::new(
        "Table III — LLM model comparison (Gas Rate, MultiCast VI)",
        &["Model", "GasRate", "CO2"],
    );
    for preset in [ModelPreset::Large, ModelPreset::Small] {
        let mut f =
            MultiCastForecaster::new(MuxMethod::ValueInterleave, config_with(samples, preset));
        let fc = f.forecast(&train, test.len())?;
        let mut cells = vec![format!("MultiCast ({})", preset.display_name())];
        for d in 0..2 {
            cells.push(fmt_metric(rmse(test.column(d)?, fc.column(d)?)?));
        }
        t.row(cells);
    }
    Ok(t)
}

/// Tables IV–VI — full six-method RMSE sweep on one dataset, winners
/// marked bold (best) / italic (second), matching the paper's convention.
pub fn table_rmse_sweep(dataset: PaperDataset, samples: usize, title: &str) -> Result<Table> {
    let series = dataset.load();
    let info = dataset.info();
    let mut header: Vec<&str> = vec!["Model"];
    header.extend(info.dimension_names);
    let mut t = Table::new(title, &header);
    let mut methods = standard_roster(config_with(samples, ModelPreset::Large));
    let results = evaluate_roster(&mut methods, &series, TEST_FRACTION)?;
    // Column-wise winner marking.
    let mut marked: Vec<Vec<String>> = vec![Vec::new(); results.len()];
    for d in 0..info.dims {
        let column: Vec<f64> = results.iter().map(|r| r.per_dim_rmse[d]).collect();
        let formatted: Vec<String> = column.iter().map(|&v| fmt_metric(v)).collect();
        for (row, cell) in marked.iter_mut().zip(mark_winners(&column, &formatted)) {
            row.push(cell);
        }
    }
    for (r, cells) in results.iter().zip(marked) {
        let mut row = vec![r.method.clone()];
        row.extend(cells);
        t.row(row);
    }
    Ok(t)
}

/// Table IV — Gas Rate.
pub fn table4_gas_rate(samples: usize) -> Result<Table> {
    table_rmse_sweep(
        PaperDataset::GasRate,
        samples,
        "Table IV — Forecasting RMSE for the Gas Rate dataset",
    )
}

/// Table V — Electricity.
pub fn table5_electricity(samples: usize) -> Result<Table> {
    table_rmse_sweep(
        PaperDataset::Electricity,
        samples,
        "Table V — Forecasting RMSE for the Electricity dataset",
    )
}

/// Table VI — Weather.
pub fn table6_weather(samples: usize) -> Result<Table> {
    table_rmse_sweep(
        PaperDataset::Weather,
        samples,
        "Table VI — Forecasting RMSE for the Weather dataset",
    )
}

/// Table VII — RMSE (first Gas Rate dimension) and execution time for an
/// increasing number of samples. `sample_counts` defaults to the paper's
/// {5, 10, 20}.
pub fn table7_samples_sweep(sample_counts: &[usize]) -> Result<Table> {
    let series = PaperDataset::GasRate.load();
    let (train, test) = holdout_split(&series, TEST_FRACTION)?;
    let header: Vec<String> = std::iter::once("Method".to_string())
        .chain(sample_counts.iter().map(|s| format!("S = {s}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Table VII — Performance for an increasing number of samples (Gas Rate dim 1: RMSE / time / tokens)",
        &header_refs,
    );
    for mux in MuxMethod::ALL {
        let mut row = vec![mux.display_name().to_string()];
        for &s in sample_counts {
            let mut f = MultiCastForecaster::new(mux, config_with(s, ModelPreset::Large));
            let (fc, secs) = timed(|| f.forecast(&train, test.len()));
            let fc = fc?;
            let err = rmse(test.column(0)?, fc.column(0)?)?;
            let tokens = f.last_cost.map_or(0, |c| c.total_tokens());
            row.push(format!("{} / {} / {}tok", fmt_metric(err), format_seconds(secs), tokens));
        }
        t.row(row);
    }
    // LLMTIME row.
    let mut row = vec!["LLMTIME".to_string()];
    for &s in sample_counts {
        let mut f = LlmTimeForecaster::new(config_with(s, ModelPreset::Large));
        let (fc, secs) = timed(|| MultivariateForecaster::forecast(&mut f, &train, test.len()));
        let fc = fc?;
        let err = rmse(test.column(0)?, fc.column(0)?)?;
        let tokens = f.last_cost.map_or(0, |c| c.total_tokens());
        row.push(format!("{} / {} / {}tok", fmt_metric(err), format_seconds(secs), tokens));
    }
    t.row(row);
    Ok(t)
}

/// Shared runner for the two SAX sweeps: evaluates the SAX forecaster on
/// Gas Rate and reports the CO2-dimension RMSE, time and tokens.
fn sax_cell(
    kind: SaxAlphabetKind,
    segment_len: usize,
    alphabet_size: usize,
    samples: usize,
) -> Result<Option<String>> {
    let Some(alphabet) = SaxAlphabet::new(kind, alphabet_size) else {
        return Ok(None); // e.g. digital size 20 — the paper's N/A cell
    };
    let series = PaperDataset::GasRate.load();
    let (train, test) = holdout_split(&series, TEST_FRACTION)?;
    let cfg = SaxForecastConfig {
        sax: SaxConfig { segment_len, alphabet },
        base: config_with(samples, ModelPreset::Large),
    };
    let mut f = SaxMultiCastForecaster::new(cfg);
    let (fc, secs) = timed(|| f.forecast(&train, test.len()));
    let fc = fc?;
    let err = rmse(test.column(1)?, fc.column(1)?)?;
    let tokens = f.last_cost.map_or(0, |c| c.total_tokens());
    Ok(Some(format!("{} / {} / {}tok", fmt_metric(err), format_seconds(secs), tokens)))
}

/// The non-quantized MultiCast reference row used by Tables VIII and IX.
fn raw_multicast_reference(samples: usize) -> Result<String> {
    let series = PaperDataset::GasRate.load();
    let (train, test) = holdout_split(&series, TEST_FRACTION)?;
    let mut f = MultiCastForecaster::new(
        MuxMethod::DigitInterleave,
        config_with(samples, ModelPreset::Large),
    );
    let (fc, secs) = timed(|| f.forecast(&train, test.len()));
    let fc = fc?;
    let err = rmse(test.column(1)?, fc.column(1)?)?;
    let tokens = f.last_cost.map_or(0, |c| c.total_tokens());
    Ok(format!("{} / {} / {}tok", fmt_metric(err), format_seconds(secs), tokens))
}

/// Table VIII — increasing SAX segment length (alphabet fixed at 5).
pub fn table8_segment_sweep(segments: &[usize], samples: usize) -> Result<Table> {
    let header: Vec<String> = std::iter::once("Method".to_string())
        .chain(segments.iter().map(|s| format!("seg = {s}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Table VIII — Increasing SAX segment length (Gas Rate CO2: RMSE / time / tokens)",
        &header_refs,
    );
    for kind in [SaxAlphabetKind::Alphabetic, SaxAlphabetKind::Digital] {
        let mut row = vec![format!("MultiCast SAX ({})", kind.display_name())];
        for &seg in segments {
            row.push(sax_cell(kind, seg, 5, samples)?.expect("size 5 valid for both kinds"));
        }
        t.row(row);
    }
    let mut reference = vec!["MultiCast (no quantization)".to_string()];
    reference.push(raw_multicast_reference(samples)?);
    reference.extend(std::iter::repeat_n(String::from("—"), segments.len() - 1));
    t.row(reference);
    Ok(t)
}

/// Table IX — increasing SAX alphabet size (segment fixed at 6); the
/// digital alphabet cannot reach size 20 (`N/A`, as in the paper).
pub fn table9_alphabet_sweep(sizes: &[usize], samples: usize) -> Result<Table> {
    let header: Vec<String> = std::iter::once("Method".to_string())
        .chain(sizes.iter().map(|s| format!("a = {s}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Table IX — Increasing SAX alphabet size (Gas Rate CO2: RMSE / time / tokens)",
        &header_refs,
    );
    for kind in [SaxAlphabetKind::Alphabetic, SaxAlphabetKind::Digital] {
        let mut row = vec![format!("MultiCast SAX ({})", kind.display_name())];
        for &size in sizes {
            row.push(sax_cell(kind, 6, size, samples)?.unwrap_or_else(|| "N/A".into()));
        }
        t.row(row);
    }
    let mut reference = vec!["MultiCast (no quantization)".to_string()];
    reference.push(raw_multicast_reference(samples)?);
    reference.extend(std::iter::repeat_n(String::from("—"), sizes.len() - 1));
    t.row(reference);
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_and_2_are_static() {
        let t1 = table1_datasets();
        assert_eq!(t1.len(), 3);
        assert!(t1.to_markdown().contains("Gas Rate"));
        let t2 = table2_parameters();
        assert_eq!(t2.len(), 4);
    }

    #[test]
    fn table3_runs_with_one_sample() {
        let t = table3_model_comparison(1).unwrap();
        assert_eq!(t.len(), 2);
        let md = t.to_markdown();
        assert!(md.contains("LLaMA2"), "{md}");
        assert!(md.contains("Phi-2"), "{md}");
    }

    #[test]
    fn table7_has_all_llm_methods() {
        let t = table7_samples_sweep(&[1]).unwrap();
        assert_eq!(t.len(), 4); // DI, VI, VC, LLMTIME
        assert!(t.to_markdown().contains("tok"));
    }

    #[test]
    fn table9_digital_20_is_na() {
        let t = table9_alphabet_sweep(&[5, 20], 1).unwrap();
        let md = t.to_markdown();
        assert!(md.contains("N/A"), "{md}");
    }
}
