//! [`ScenarioSpec`] — the declarative description of one experiment.
//!
//! A spec names *what* to run (the [`ScenarioKind`]) and every knob the
//! old hand-rolled bench bins used to wire by hand: dataset ×
//! multiplexing × backend preset × robustness policy × fault profile ×
//! serve shape, plus the sweep axes of the grid scenarios. Parsing is
//! strict — unknown keys, unknown sections and duplicate fields are
//! typed [`SpecError`]s, because a scenario with a silently-dropped knob
//! measures the wrong thing. `Display` renders the canonical form, and
//! `parse(display(spec)) == spec` (property-tested).

use std::fmt;

use mc_datasets::PaperDataset;
use mc_lm::presets::ModelPreset;
use multicast_core::robust::FaultProfile;
use multicast_core::MuxMethod;

use crate::grammar::{self, Entry};

/// Typed spec-layer errors (parsing and validation).
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// A line that is neither blank, comment, section header nor pair.
    Syntax { line: usize, message: String },
    /// The same key twice in one section.
    DuplicateKey { line: usize, section: Option<String>, key: String },
    /// A key the schema does not know.
    UnknownKey { line: usize, section: Option<String>, key: String },
    /// A `[section]` the schema does not know.
    UnknownSection { name: String },
    /// A value that does not parse as its key's type.
    BadValue { line: usize, key: String, message: String },
    /// A required key is absent.
    MissingKey { key: String },
    /// `scenario =` names no known kind.
    UnknownScenario { line: usize, name: String },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let in_section = |s: &Option<String>| match s {
            Some(name) => format!(" in [{name}]"),
            None => String::new(),
        };
        match self {
            SpecError::Syntax { line, message } => write!(f, "spec line {line}: {message}"),
            SpecError::DuplicateKey { line, section, key } => {
                write!(f, "spec line {line}: duplicate key `{key}`{}", in_section(section))
            }
            SpecError::UnknownKey { line, section, key } => {
                write!(f, "spec line {line}: unknown key `{key}`{}", in_section(section))
            }
            SpecError::UnknownSection { name } => write!(f, "spec: unknown section [{name}]"),
            SpecError::BadValue { line, key, message } => {
                write!(f, "spec line {line}: bad value for `{key}`: {message}")
            }
            SpecError::MissingKey { key } => write!(f, "spec: missing required key `{key}`"),
            SpecError::UnknownScenario { line, name } => {
                write!(f, "spec line {line}: unknown scenario `{name}`")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Which experiment a spec describes — one kind per former bench bin
/// artifact family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Paper table N (`table1` also emits Table II, as the old bin did).
    Table(u8),
    /// Figures 2–8 as SVGs.
    Figures,
    /// Rolling-origin robustness study (`results/backtest.md`).
    Backtest,
    /// Defect-rate sweep under injected faults (`results/fault_injection.md`).
    FaultInjection,
    /// Backend × mux / temperature / digit-budget / classical grids.
    Ablation,
    /// Digit-level vs BPE serialization (`results/ablation_tokenization.md`).
    Tokenization,
    /// Imputation / anomaly / change-point studies (`results/tasks_eval_*.md`).
    TasksEval,
    /// Fit-once vs refit-per-sample (`results/prompt_reuse.md`).
    PromptReuse,
    /// Sequential refit vs shared-frozen serving (`results/concurrent_serving.md`).
    ConcurrentServing,
    /// Recorder-seam overhead + canonical trace (`results/serving_telemetry.md`).
    Telemetry,
    /// Saturating fault-injected overload drill (`results/serve_chaos.md`).
    ServeChaos,
    /// Warm-vs-cold context-cache sweep (`results/cache_reuse.md`).
    CacheReuse,
    /// Causal-span latency audit: per-stage blame + critical path
    /// (`results/latency_audit.md`).
    LatencyAudit,
}

impl ScenarioKind {
    /// Every kind, in documentation order.
    pub const ALL: [ScenarioKind; 21] = [
        ScenarioKind::Table(1),
        ScenarioKind::Table(2),
        ScenarioKind::Table(3),
        ScenarioKind::Table(4),
        ScenarioKind::Table(5),
        ScenarioKind::Table(6),
        ScenarioKind::Table(7),
        ScenarioKind::Table(8),
        ScenarioKind::Table(9),
        ScenarioKind::Figures,
        ScenarioKind::Backtest,
        ScenarioKind::FaultInjection,
        ScenarioKind::Ablation,
        ScenarioKind::Tokenization,
        ScenarioKind::TasksEval,
        ScenarioKind::PromptReuse,
        ScenarioKind::ConcurrentServing,
        ScenarioKind::Telemetry,
        ScenarioKind::ServeChaos,
        ScenarioKind::CacheReuse,
        ScenarioKind::LatencyAudit,
    ];

    /// The kind's spec token (`scenario = <token>`).
    pub fn token(self) -> String {
        match self {
            ScenarioKind::Table(n) => format!("table{n}"),
            ScenarioKind::Figures => "figures".into(),
            ScenarioKind::Backtest => "backtest".into(),
            ScenarioKind::FaultInjection => "fault_injection".into(),
            ScenarioKind::Ablation => "ablation".into(),
            ScenarioKind::Tokenization => "tokenization".into(),
            ScenarioKind::TasksEval => "tasks_eval".into(),
            ScenarioKind::PromptReuse => "prompt_reuse".into(),
            ScenarioKind::ConcurrentServing => "concurrent_serving".into(),
            ScenarioKind::Telemetry => "telemetry".into(),
            ScenarioKind::ServeChaos => "serve_chaos".into(),
            ScenarioKind::CacheReuse => "cache_reuse".into(),
            ScenarioKind::LatencyAudit => "latency_audit".into(),
        }
    }

    /// Parses a spec token back into a kind.
    pub fn parse(token: &str) -> Option<ScenarioKind> {
        if let Some(n) = token.strip_prefix("table") {
            let n: u8 = n.parse().ok()?;
            return (1..=9).contains(&n).then_some(ScenarioKind::Table(n));
        }
        match token {
            "figures" => Some(ScenarioKind::Figures),
            "backtest" => Some(ScenarioKind::Backtest),
            "fault_injection" => Some(ScenarioKind::FaultInjection),
            "ablation" => Some(ScenarioKind::Ablation),
            "tokenization" => Some(ScenarioKind::Tokenization),
            "tasks_eval" => Some(ScenarioKind::TasksEval),
            "prompt_reuse" => Some(ScenarioKind::PromptReuse),
            "concurrent_serving" => Some(ScenarioKind::ConcurrentServing),
            "telemetry" => Some(ScenarioKind::Telemetry),
            "serve_chaos" => Some(ScenarioKind::ServeChaos),
            "cache_reuse" => Some(ScenarioKind::CacheReuse),
            "latency_audit" => Some(ScenarioKind::LatencyAudit),
            _ => None,
        }
    }
}

/// `[robust]` — overrides over [`RobustPolicy::default`](multicast_core::robust::RobustPolicy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RobustSpec {
    /// Retry budget per sample.
    pub retries: Option<usize>,
    /// Quorum of valid samples required to aggregate.
    pub min_valid: Option<usize>,
    /// Per-request generated-token deadline.
    pub deadline_tokens: Option<u64>,
    /// Exponential retry backoff base, in dispatch slots.
    pub backoff_base: Option<u32>,
}

/// `[serve]` — the serve shape (scheduler knobs + chaos load geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSpec {
    /// Worker threads draining the sample-task queue.
    pub workers: Option<usize>,
    /// Admission cap per flush (excess shed by priority).
    pub queue_cap: Option<usize>,
    /// Hard cap on pending submissions per flush.
    pub submit_cap: Option<usize>,
    /// Whether the per-preset circuit breaker is engaged.
    pub breaker: Option<bool>,
    /// Flush waves in the generated load.
    pub waves: Option<usize>,
    /// Requests per wave in the generated load.
    pub per_wave: Option<usize>,
}

/// `[cache]` — the cross-batch frozen-context cache shape
/// (`ServeConfig::cache` in `multicast-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSpec {
    /// Maximum resident contexts across all shards.
    pub capacity: Option<usize>,
    /// Independent shard locks.
    pub shards: Option<usize>,
    /// Eviction policy (`lru` / `slru`).
    pub policy: Option<CachePolicyToken>,
    /// Refit behaviour for prefix-extended prompts
    /// (`incremental` / `rebuild`).
    pub refit: Option<CacheRefitToken>,
}

/// Spec token for the cache eviction policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicyToken {
    /// Plain least-recently-used.
    Lru,
    /// Segmented LRU (probationary entries evict first).
    Slru,
}

/// `[latency]` — the latency-audit shape (causal-span blame study).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySpec {
    /// Audited requests in the reference wave.
    pub requests: Option<usize>,
    /// Tolerance on `|Σ blame − end-to-end| / end-to-end` (the
    /// critical-path partition invariant; blame is exact by
    /// construction, so this guards the aggregation arithmetic).
    pub tolerance: Option<f64>,
}

/// Spec token for the cache refit mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheRefitToken {
    /// Delta-update prefix-extended prompts in place.
    Incremental,
    /// Always refit extended prompts from scratch.
    Rebuild,
}

/// One declarative scenario. Every field except `kind`/`name` is an
/// optional override; kind-specific defaults (pinned by the golden-spec
/// tests) live in [`builder`](crate::builder).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// What to run.
    pub kind: ScenarioKind,
    /// Scenario name — the `BENCH_<name>.json` stem. Defaults to the
    /// kind token.
    pub name: String,
    /// Dataset under evaluation.
    pub dataset: Option<PaperDataset>,
    /// Multiplexing strategy (`di` / `vi` / `vc`).
    pub mux: Option<MuxMethod>,
    /// Backend preset.
    pub preset: Option<ModelPreset>,
    /// Continuations per forecast.
    pub samples: Option<usize>,
    /// Digits per rescaled value.
    pub digits: Option<u32>,
    /// Base seed.
    pub seed: Option<u64>,
    /// Sampler temperature.
    pub temperature: Option<f64>,
    /// Fault profile (the PR 6 chaos grammar, verbatim).
    pub faults: Option<FaultProfile>,
    /// Primary sweep axis (kind-specific: sample counts for `table7`,
    /// segment lengths for `table8`, alphabet sizes for `table9`,
    /// request counts for `concurrent_serving`).
    pub sweep: Option<Vec<usize>>,
    /// Secondary sweep axis (sampling widths for `concurrent_serving`).
    pub samples_sweep: Option<Vec<usize>>,
    /// Robustness-policy overrides.
    pub robust: RobustSpec,
    /// Serve shape.
    pub serve: ServeSpec,
    /// Cross-batch context-cache shape.
    pub cache: CacheSpec,
    /// Latency-audit shape.
    pub latency: LatencySpec,
}

impl ScenarioSpec {
    /// A bare spec of the given kind: every knob at its kind default.
    pub fn new(kind: ScenarioKind) -> Self {
        Self {
            kind,
            name: kind.token(),
            dataset: None,
            mux: None,
            preset: None,
            samples: None,
            digits: None,
            seed: None,
            temperature: None,
            faults: None,
            sweep: None,
            samples_sweep: None,
            robust: RobustSpec::default(),
            serve: ServeSpec::default(),
            cache: CacheSpec::default(),
            latency: LatencySpec::default(),
        }
    }

    /// Parses the textual spec form.
    ///
    /// # Errors
    /// Any [`SpecError`]: syntax, duplicate/unknown keys, unknown
    /// sections, malformed values, or a missing `scenario` key.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let doc = grammar::parse(text)?;
        for name in doc.section_names() {
            if name != "robust" && name != "serve" && name != "cache" && name != "latency" {
                return Err(SpecError::UnknownSection { name: name.to_string() });
            }
        }
        let scenario =
            doc.get(None, "scenario").ok_or(SpecError::MissingKey { key: "scenario".into() })?;
        let kind = ScenarioKind::parse(&scenario.value).ok_or(SpecError::UnknownScenario {
            line: scenario.line,
            name: scenario.value.clone(),
        })?;
        let mut spec = ScenarioSpec::new(kind);
        for entry in doc.section(None) {
            spec.apply_top(entry)?;
        }
        for entry in doc.section(Some("robust")) {
            spec.apply_robust(entry)?;
        }
        for entry in doc.section(Some("serve")) {
            spec.apply_serve(entry)?;
        }
        for entry in doc.section(Some("cache")) {
            spec.apply_cache(entry)?;
        }
        for entry in doc.section(Some("latency")) {
            spec.apply_latency(entry)?;
        }
        Ok(spec)
    }

    fn apply_top(&mut self, e: &Entry) -> Result<(), SpecError> {
        match e.key.as_str() {
            "scenario" => {} // consumed above
            "name" => {
                if e.value.is_empty()
                    || !e.value.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                {
                    return Err(bad(e, "scenario names are [A-Za-z0-9_]+"));
                }
                self.name = e.value.clone();
            }
            "dataset" => self.dataset = Some(parse_dataset(e)?),
            "mux" => self.mux = Some(parse_mux(e)?),
            "preset" => self.preset = Some(parse_preset(e)?),
            "samples" => self.samples = Some(num(e)?),
            "digits" => self.digits = Some(num(e)?),
            "seed" => self.seed = Some(num(e)?),
            "temperature" => {
                let t: f64 = e.value.parse().map_err(|_| bad(e, "not a number"))?;
                if !t.is_finite() {
                    return Err(bad(e, "temperature must be finite"));
                }
                self.temperature = Some(t);
            }
            "faults" => {
                self.faults =
                    Some(FaultProfile::parse(&e.value).map_err(|err| SpecError::BadValue {
                        line: e.line,
                        key: e.key.clone(),
                        message: err.to_string(),
                    })?);
            }
            "sweep" => self.sweep = Some(list(e)?),
            "samples_sweep" => self.samples_sweep = Some(list(e)?),
            _ => return Err(unknown(e)),
        }
        Ok(())
    }

    fn apply_robust(&mut self, e: &Entry) -> Result<(), SpecError> {
        match e.key.as_str() {
            "retries" => self.robust.retries = Some(num(e)?),
            "min_valid" => self.robust.min_valid = Some(num(e)?),
            "deadline_tokens" => self.robust.deadline_tokens = Some(num(e)?),
            "backoff_base" => self.robust.backoff_base = Some(num(e)?),
            _ => return Err(unknown(e)),
        }
        Ok(())
    }

    fn apply_serve(&mut self, e: &Entry) -> Result<(), SpecError> {
        match e.key.as_str() {
            "workers" => self.serve.workers = Some(num(e)?),
            "queue_cap" => self.serve.queue_cap = Some(num(e)?),
            "submit_cap" => self.serve.submit_cap = Some(num(e)?),
            "breaker" => {
                self.serve.breaker = Some(match e.value.as_str() {
                    "on" | "true" => true,
                    "off" | "false" => false,
                    _ => return Err(bad(e, "expected on/off")),
                });
            }
            "waves" => self.serve.waves = Some(num(e)?),
            "per_wave" => self.serve.per_wave = Some(num(e)?),
            _ => return Err(unknown(e)),
        }
        Ok(())
    }

    fn apply_cache(&mut self, e: &Entry) -> Result<(), SpecError> {
        match e.key.as_str() {
            "capacity" => self.cache.capacity = Some(num(e)?),
            "shards" => self.cache.shards = Some(num(e)?),
            "policy" => {
                self.cache.policy = Some(match e.value.as_str() {
                    "lru" => CachePolicyToken::Lru,
                    "slru" => CachePolicyToken::Slru,
                    _ => return Err(bad(e, "expected lru / slru")),
                });
            }
            "refit" => {
                self.cache.refit = Some(match e.value.as_str() {
                    "incremental" => CacheRefitToken::Incremental,
                    "rebuild" => CacheRefitToken::Rebuild,
                    _ => return Err(bad(e, "expected incremental / rebuild")),
                });
            }
            _ => return Err(unknown(e)),
        }
        Ok(())
    }

    fn apply_latency(&mut self, e: &Entry) -> Result<(), SpecError> {
        match e.key.as_str() {
            "requests" => self.latency.requests = Some(num(e)?),
            "tolerance" => {
                let t: f64 = e.value.parse().map_err(|_| bad(e, "not a number"))?;
                if !t.is_finite() || t < 0.0 {
                    return Err(bad(e, "tolerance must be a finite non-negative number"));
                }
                self.latency.tolerance = Some(t);
            }
            _ => return Err(unknown(e)),
        }
        Ok(())
    }
}

impl fmt::Display for ScenarioSpec {
    /// The canonical textual form: fixed key order, only non-default
    /// fields, sections last. `ScenarioSpec::parse` inverts it exactly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "scenario = {}", self.kind.token())?;
        if self.name != self.kind.token() {
            writeln!(f, "name = {}", self.name)?;
        }
        if let Some(ds) = self.dataset {
            writeln!(f, "dataset = {}", dataset_token(ds))?;
        }
        if let Some(mux) = self.mux {
            writeln!(f, "mux = {}", mux_token(mux))?;
        }
        if let Some(p) = self.preset {
            writeln!(f, "preset = {}", preset_token(p))?;
        }
        if let Some(s) = self.samples {
            writeln!(f, "samples = {s}")?;
        }
        if let Some(d) = self.digits {
            writeln!(f, "digits = {d}")?;
        }
        if let Some(s) = self.seed {
            writeln!(f, "seed = {s}")?;
        }
        if let Some(t) = self.temperature {
            writeln!(f, "temperature = {t}")?;
        }
        if let Some(faults) = &self.faults {
            writeln!(f, "faults = {faults}")?;
        }
        if let Some(sweep) = &self.sweep {
            writeln!(f, "sweep = {}", join(sweep))?;
        }
        if let Some(sweep) = &self.samples_sweep {
            writeln!(f, "samples_sweep = {}", join(sweep))?;
        }
        if self.robust != RobustSpec::default() {
            writeln!(f, "\n[robust]")?;
            if let Some(r) = self.robust.retries {
                writeln!(f, "retries = {r}")?;
            }
            if let Some(m) = self.robust.min_valid {
                writeln!(f, "min_valid = {m}")?;
            }
            if let Some(d) = self.robust.deadline_tokens {
                writeln!(f, "deadline_tokens = {d}")?;
            }
            if let Some(b) = self.robust.backoff_base {
                writeln!(f, "backoff_base = {b}")?;
            }
        }
        if self.serve != ServeSpec::default() {
            writeln!(f, "\n[serve]")?;
            if let Some(w) = self.serve.workers {
                writeln!(f, "workers = {w}")?;
            }
            if let Some(q) = self.serve.queue_cap {
                writeln!(f, "queue_cap = {q}")?;
            }
            if let Some(s) = self.serve.submit_cap {
                writeln!(f, "submit_cap = {s}")?;
            }
            if let Some(b) = self.serve.breaker {
                writeln!(f, "breaker = {}", if b { "on" } else { "off" })?;
            }
            if let Some(w) = self.serve.waves {
                writeln!(f, "waves = {w}")?;
            }
            if let Some(p) = self.serve.per_wave {
                writeln!(f, "per_wave = {p}")?;
            }
        }
        if self.cache != CacheSpec::default() {
            writeln!(f, "\n[cache]")?;
            if let Some(c) = self.cache.capacity {
                writeln!(f, "capacity = {c}")?;
            }
            if let Some(s) = self.cache.shards {
                writeln!(f, "shards = {s}")?;
            }
            if let Some(p) = self.cache.policy {
                let token = match p {
                    CachePolicyToken::Lru => "lru",
                    CachePolicyToken::Slru => "slru",
                };
                writeln!(f, "policy = {token}")?;
            }
            if let Some(r) = self.cache.refit {
                let token = match r {
                    CacheRefitToken::Incremental => "incremental",
                    CacheRefitToken::Rebuild => "rebuild",
                };
                writeln!(f, "refit = {token}")?;
            }
        }
        if self.latency != LatencySpec::default() {
            writeln!(f, "\n[latency]")?;
            if let Some(r) = self.latency.requests {
                writeln!(f, "requests = {r}")?;
            }
            if let Some(t) = self.latency.tolerance {
                writeln!(f, "tolerance = {t}")?;
            }
        }
        Ok(())
    }
}

fn bad(e: &Entry, message: &str) -> SpecError {
    SpecError::BadValue { line: e.line, key: e.key.clone(), message: message.to_string() }
}

fn unknown(e: &Entry) -> SpecError {
    SpecError::UnknownKey { line: e.line, section: e.section.clone(), key: e.key.clone() }
}

fn num<T: std::str::FromStr>(e: &Entry) -> Result<T, SpecError> {
    e.value.parse().map_err(|_| bad(e, "not a valid number for this key"))
}

fn list(e: &Entry) -> Result<Vec<usize>, SpecError> {
    let values: Result<Vec<usize>, _> =
        e.value.split(',').map(|v| v.trim().parse::<usize>()).collect();
    let values = values.map_err(|_| bad(e, "expected a comma-separated list of integers"))?;
    if values.is_empty() {
        return Err(bad(e, "list must be non-empty"));
    }
    Ok(values)
}

fn join(values: &[usize]) -> String {
    values.iter().map(usize::to_string).collect::<Vec<_>>().join(",")
}

/// Spec token for a dataset.
pub fn dataset_token(ds: PaperDataset) -> &'static str {
    match ds {
        PaperDataset::GasRate => "gas_rate",
        PaperDataset::Electricity => "electricity",
        PaperDataset::Weather => "weather",
    }
}

fn parse_dataset(e: &Entry) -> Result<PaperDataset, SpecError> {
    match e.value.as_str() {
        "gas_rate" => Ok(PaperDataset::GasRate),
        "electricity" => Ok(PaperDataset::Electricity),
        "weather" => Ok(PaperDataset::Weather),
        _ => Err(bad(e, "expected gas_rate / electricity / weather")),
    }
}

/// Spec token for a multiplexing strategy.
pub fn mux_token(mux: MuxMethod) -> &'static str {
    match mux {
        MuxMethod::DigitInterleave => "di",
        MuxMethod::ValueInterleave => "vi",
        MuxMethod::ValueConcat => "vc",
    }
}

fn parse_mux(e: &Entry) -> Result<MuxMethod, SpecError> {
    match e.value.as_str() {
        "di" => Ok(MuxMethod::DigitInterleave),
        "vi" => Ok(MuxMethod::ValueInterleave),
        "vc" => Ok(MuxMethod::ValueConcat),
        _ => Err(bad(e, "expected di / vi / vc")),
    }
}

/// Spec token for a backend preset.
pub fn preset_token(p: ModelPreset) -> &'static str {
    match p {
        ModelPreset::Large => "large",
        ModelPreset::Small => "small",
        ModelPreset::Suffix => "suffix",
        ModelPreset::Ensemble => "ensemble",
        ModelPreset::Ppm => "ppm",
    }
}

fn parse_preset(e: &Entry) -> Result<ModelPreset, SpecError> {
    match e.value.as_str() {
        "large" => Ok(ModelPreset::Large),
        "small" => Ok(ModelPreset::Small),
        "suffix" => Ok(ModelPreset::Suffix),
        "ensemble" => Ok(ModelPreset::Ensemble),
        "ppm" => Ok(ModelPreset::Ppm),
        _ => Err(bad(e, "expected large / small / suffix / ensemble / ppm")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_parses_with_kind_defaults() {
        let spec = ScenarioSpec::parse("scenario = serve_chaos\n").unwrap();
        assert_eq!(spec.kind, ScenarioKind::ServeChaos);
        assert_eq!(spec.name, "serve_chaos");
        assert_eq!(spec, ScenarioSpec::new(ScenarioKind::ServeChaos));
    }

    #[test]
    fn full_spec_round_trips_through_display() {
        let text = "scenario = serve_chaos\nname = chaos_smoke\ndataset = gas_rate\nmux = vi\n\
                    preset = large\nsamples = 3\ndigits = 3\nseed = 9000\ntemperature = 0.7\n\
                    faults = rate=0.3,seed=77,latency=8,quota=2500\n\n[robust]\nretries = 2\n\
                    deadline_tokens = 240\nbackoff_base = 2\n\n[serve]\nworkers = 8\n\
                    queue_cap = 6\nsubmit_cap = 8\nbreaker = on\nwaves = 3\nper_wave = 8\n";
        let spec = ScenarioSpec::parse(text).unwrap();
        assert_eq!(spec.faults.unwrap().quota_tokens, Some(2500));
        assert_eq!(spec.serve.workers, Some(8));
        assert_eq!(ScenarioSpec::parse(&spec.to_string()).unwrap(), spec);
    }

    #[test]
    fn unknown_keys_and_sections_are_rejected() {
        let err = ScenarioSpec::parse("scenario = backtest\nbogus = 1\n").unwrap_err();
        assert!(matches!(err, SpecError::UnknownKey { line: 2, .. }), "{err}");
        let err = ScenarioSpec::parse("scenario = backtest\n[nope]\nx = 1\n").unwrap_err();
        assert!(matches!(err, SpecError::UnknownSection { .. }), "{err}");
        let err = ScenarioSpec::parse("scenario = backtest\n[serve]\nretries = 1\n").unwrap_err();
        assert!(
            matches!(&err, SpecError::UnknownKey { section: Some(s), .. } if s == "serve"),
            "{err}"
        );
    }

    #[test]
    fn missing_or_unknown_scenario_is_typed() {
        assert!(matches!(
            ScenarioSpec::parse("samples = 5\n").unwrap_err(),
            SpecError::MissingKey { .. }
        ));
        assert!(matches!(
            ScenarioSpec::parse("scenario = table0\n").unwrap_err(),
            SpecError::UnknownScenario { .. }
        ));
        assert!(matches!(
            ScenarioSpec::parse("scenario = warp_drive\n").unwrap_err(),
            SpecError::UnknownScenario { line: 1, .. }
        ));
    }

    #[test]
    fn bad_values_are_typed() {
        let err = ScenarioSpec::parse("scenario = backtest\nsamples = many\n").unwrap_err();
        assert!(matches!(err, SpecError::BadValue { line: 2, .. }), "{err}");
        assert!(ScenarioSpec::parse("scenario = backtest\ndataset = mars\n").is_err());
        assert!(ScenarioSpec::parse("scenario = backtest\nfaults = rate=2.0\n").is_err());
        assert!(ScenarioSpec::parse("scenario = backtest\nsweep = \n").is_err());
        assert!(ScenarioSpec::parse("scenario = serve_chaos\n[serve]\nbreaker = maybe\n").is_err());
    }

    #[test]
    fn cache_section_round_trips_through_display() {
        let text = "scenario = cache_reuse\nseed = 4100\n\n[serve]\nworkers = 8\nwaves = 3\n\
                    per_wave = 8\n\n[cache]\ncapacity = 16\nshards = 2\npolicy = slru\n\
                    refit = incremental\n";
        let spec = ScenarioSpec::parse(text).unwrap();
        assert_eq!(spec.kind, ScenarioKind::CacheReuse);
        assert_eq!(spec.cache.capacity, Some(16));
        assert_eq!(spec.cache.shards, Some(2));
        assert_eq!(spec.cache.policy, Some(CachePolicyToken::Slru));
        assert_eq!(spec.cache.refit, Some(CacheRefitToken::Incremental));
        assert_eq!(ScenarioSpec::parse(&spec.to_string()).unwrap(), spec);
    }

    #[test]
    fn cache_section_rejects_bad_values() {
        assert!(ScenarioSpec::parse("scenario = cache_reuse\n[cache]\npolicy = fifo\n").is_err());
        assert!(ScenarioSpec::parse("scenario = cache_reuse\n[cache]\nrefit = magic\n").is_err());
        let err = ScenarioSpec::parse("scenario = cache_reuse\n[cache]\nbogus = 1\n").unwrap_err();
        assert!(
            matches!(&err, SpecError::UnknownKey { section: Some(s), .. } if s == "cache"),
            "{err}"
        );
    }

    #[test]
    fn latency_section_round_trips_through_display() {
        let text = "scenario = latency_audit\nseed = 1000\n\n[latency]\nrequests = 6\n\
                    tolerance = 0.02\n";
        let spec = ScenarioSpec::parse(text).unwrap();
        assert_eq!(spec.kind, ScenarioKind::LatencyAudit);
        assert_eq!(spec.latency.requests, Some(6));
        assert_eq!(spec.latency.tolerance, Some(0.02));
        assert_eq!(ScenarioSpec::parse(&spec.to_string()).unwrap(), spec);
    }

    #[test]
    fn latency_section_rejects_bad_values() {
        assert!(
            ScenarioSpec::parse("scenario = latency_audit\n[latency]\ntolerance = -1\n").is_err()
        );
        assert!(
            ScenarioSpec::parse("scenario = latency_audit\n[latency]\ntolerance = inf\n").is_err()
        );
        let err =
            ScenarioSpec::parse("scenario = latency_audit\n[latency]\nbogus = 1\n").unwrap_err();
        assert!(
            matches!(&err, SpecError::UnknownKey { section: Some(s), .. } if s == "latency"),
            "{err}"
        );
    }

    #[test]
    fn every_kind_token_round_trips() {
        for kind in ScenarioKind::ALL {
            assert_eq!(ScenarioKind::parse(&kind.token()), Some(kind));
        }
        assert_eq!(ScenarioKind::parse("table10"), None);
        assert_eq!(ScenarioKind::parse(""), None);
    }
}
