//! # mc-spec — the declarative scenario engine
//!
//! Every evaluation in the reproduction — the paper's Tables I–IX and
//! Figures 2–8, plus the prompt-reuse, concurrent-serving, chaos and
//! fault-injection studies — is described by a [`ScenarioSpec`]: a plain
//! text document (TOML-like, parsed without dependencies) naming the
//! dataset, multiplexing strategy, codec, backend preset, robustness
//! policy, [`FaultProfile`](multicast_core::robust::FaultProfile) and
//! serve shape of one experiment. The layering is a builder/runner/
//! bencher split:
//!
//! - [`spec`] / [`grammar`] — the declarative surface: parse, validate
//!   (unknown keys and duplicate fields are typed errors), `Display`
//!   round-trips;
//! - [`builder`] — lowers a spec onto the existing engine/serve seams:
//!   [`ForecastConfig`](multicast_core::ForecastConfig), serve requests,
//!   [`ServeConfig`](multicast_core::serve::ServeConfig), fault sources;
//! - [`runner`] — executes a single spec or a grid of them
//!   deterministically, writing the same `results/*.md` artifacts the
//!   former hand-rolled bench bins produced;
//! - [`bencher`] — folds a run into a canonical, schedule-independent
//!   `BENCH_<scenario>.json` (accuracy metrics, token costs, defect /
//!   shed / breaker counters, p50/p99 logical-clock latencies) that the
//!   `cargo xtask bench-gate` regression gate reads.
//!
//! The experiment payloads themselves (method roster, table and figure
//! recipes, markdown reporting, SVG plotting) live in [`roster`],
//! [`tables`], [`figs`], [`report`] and [`plot`]; the bench bins under
//! `crates/bench/src/bin/` are thin wrappers that construct or load a
//! spec and delegate to the runner ([`cli`] holds their shared argument
//! parsing). The `no-adhoc-bench` invariant lint keeps it that way: only
//! the runner may touch `ForecastEngine`/`serve_all` in bench-land.

pub mod bencher;
pub mod builder;
pub mod cli;
pub mod figs;
pub mod grammar;
pub mod json;
pub mod plot;
pub mod report;
pub mod roster;
pub mod runner;
pub mod scenarios;
pub mod spec;
pub mod tables;
pub mod timing;

pub use bencher::BenchReport;
pub use builder::Lowered;
pub use runner::{RunError, RunOptions, RunSummary, Runner};
pub use spec::{ScenarioKind, ScenarioSpec, SpecError};

/// Holdout fraction used across all experiments (the final 15 % of each
/// series is forecast, mirroring the paper's tail-forecast setup).
pub const TEST_FRACTION: f64 = 0.15;

/// Root directory for generated artifacts (created on demand).
pub const RESULTS_DIR: &str = "results";
