//! Figure reproductions (paper Figures 2–8): forecast-vs-actual
//! trajectory SVGs written under `results/`.
//!
//! Every figure shows the tail of the observed series plus one or more
//! forecasts over the held-out horizon, matching the paper's layouts:
//!
//! - **Fig. 2** — Large vs Small backend on Gas Rate dim 1 (the paper's
//!   LLaMA2 vs Phi-2 comparison);
//! - **Fig. 3** — MultiCast (DI) vs ARIMA, Gas Rate dim 1;
//! - **Fig. 4** — MultiCast (VC) vs LSTM, Electricity HUFL;
//! - **Fig. 5** — MultiCast (VI) vs ARIMA, Weather Tlog;
//! - **Fig. 6** — SAX segment lengths 3/6/9, Gas Rate CO2;
//! - **Fig. 7** — SAX alphabet sizes 5/10/20, Gas Rate CO2;
//! - **Fig. 8** — digital-alphabet SAX forecast, Gas Rate CO2.

use std::path::{Path, PathBuf};

use mc_baselines::{ArimaForecaster, LstmConfig, LstmForecaster};
use mc_datasets::PaperDataset;
use mc_lm::presets::ModelPreset;
use mc_sax::alphabet::{SaxAlphabet, SaxAlphabetKind};
use mc_sax::encoder::SaxConfig;
use mc_tslib::error::Result;
use mc_tslib::forecast::{MultivariateForecaster, PerDimension};
use mc_tslib::series::MultivariateSeries;
use mc_tslib::split::holdout_split;
use multicast_core::{
    ForecastConfig, MultiCastForecaster, MuxMethod, SaxForecastConfig, SaxMultiCastForecaster,
};

use crate::plot::LinePlot;
use crate::TEST_FRACTION;

/// How many trailing history points each figure shows before the horizon.
const HISTORY_SHOWN: usize = 60;

fn config(samples: usize) -> ForecastConfig {
    ForecastConfig { samples, ..ForecastConfig::default() }
}

/// Renders one figure: the actual tail (history + test) and each
/// forecaster's prediction for the test window, on dimension `dim`.
fn render(
    title: &str,
    series: &MultivariateSeries,
    dim: usize,
    forecasters: Vec<(String, Box<dyn MultivariateForecaster>)>,
    path: &Path,
) -> Result<PathBuf> {
    let (train, test) = holdout_split(series, TEST_FRACTION)?;
    let shown_start = train.len().saturating_sub(HISTORY_SHOWN);
    let mut actual = train.column(dim)?[shown_start..].to_vec();
    actual.extend_from_slice(test.column(dim)?);
    let mut plot = LinePlot::new(title.to_string());
    plot.add_indexed("actual", shown_start, &actual, false);
    for (label, mut f) in forecasters {
        let fc = f.forecast(&train, test.len())?;
        plot.add_indexed(label, train.len(), fc.column(dim)?, true);
    }
    plot.save(path).map_err(mc_tslib::TsError::from)?;
    Ok(path.to_path_buf())
}

/// Generates every figure; returns the written paths.
pub fn all_figures(results_dir: impl AsRef<Path>, samples: usize) -> Result<Vec<PathBuf>> {
    let dir = results_dir.as_ref();
    let mut written = Vec::new();
    written.extend(fig2(dir, samples)?);
    written.push(fig3(dir, samples)?);
    written.push(fig4(dir, samples)?);
    written.push(fig5(dir, samples)?);
    written.push(fig6(dir, samples)?);
    written.push(fig7(dir, samples)?);
    written.push(fig8(dir, samples)?);
    Ok(written)
}

/// Figure 2 — backend comparison on Gas Rate dim 1 (two panels).
pub fn fig2(dir: &Path, samples: usize) -> Result<Vec<PathBuf>> {
    let series = PaperDataset::GasRate.load();
    let mut out = Vec::new();
    for (panel, preset) in [("a", ModelPreset::Large), ("b", ModelPreset::Small)] {
        let cfg = ForecastConfig { preset, ..config(samples) };
        let f = MultiCastForecaster::new(MuxMethod::ValueInterleave, cfg);
        out.push(render(
            &format!("Fig. 2{panel} — MultiCast VI, {} (GasRate dim)", preset.display_name()),
            &series,
            0,
            vec![(preset.display_name().to_string(), Box::new(f))],
            &dir.join(format!("fig2{panel}_backend.svg")),
        )?);
    }
    Ok(out)
}

/// Figure 3 — MultiCast (DI) vs ARIMA on Gas Rate dim 1.
pub fn fig3(dir: &Path, samples: usize) -> Result<PathBuf> {
    let series = PaperDataset::GasRate.load();
    render(
        "Fig. 3 — MultiCast (DI) vs ARIMA (GasRate dim)",
        &series,
        0,
        vec![
            (
                "MultiCast (DI)".into(),
                Box::new(MultiCastForecaster::new(MuxMethod::DigitInterleave, config(samples))),
            ),
            ("ARIMA".into(), Box::new(PerDimension(ArimaForecaster::default()))),
        ],
        &dir.join("fig3_di_vs_arima.svg"),
    )
}

/// Figure 4 — MultiCast (VC) vs LSTM on Electricity HUFL.
pub fn fig4(dir: &Path, samples: usize) -> Result<PathBuf> {
    let series = PaperDataset::Electricity.load();
    render(
        "Fig. 4 — MultiCast (VC) vs LSTM (HUFL dim)",
        &series,
        0,
        vec![
            (
                "MultiCast (VC)".into(),
                Box::new(MultiCastForecaster::new(MuxMethod::ValueConcat, config(samples))),
            ),
            ("LSTM".into(), Box::new(LstmForecaster::new(LstmConfig::default()))),
        ],
        &dir.join("fig4_vc_vs_lstm.svg"),
    )
}

/// Figure 5 — MultiCast (VI) vs ARIMA on Weather Tlog.
pub fn fig5(dir: &Path, samples: usize) -> Result<PathBuf> {
    let series = PaperDataset::Weather.load();
    render(
        "Fig. 5 — MultiCast (VI) vs ARIMA (Tlog dim)",
        &series,
        0,
        vec![
            (
                "MultiCast (VI)".into(),
                Box::new(MultiCastForecaster::new(MuxMethod::ValueInterleave, config(samples))),
            ),
            ("ARIMA".into(), Box::new(PerDimension(ArimaForecaster::default()))),
        ],
        &dir.join("fig5_vi_vs_arima.svg"),
    )
}

fn sax_forecaster(
    kind: SaxAlphabetKind,
    segment_len: usize,
    size: usize,
    samples: usize,
) -> SaxMultiCastForecaster {
    SaxMultiCastForecaster::new(SaxForecastConfig {
        sax: SaxConfig {
            segment_len,
            alphabet: SaxAlphabet::new(kind, size).expect("valid alphabet"),
        },
        base: config(samples),
    })
}

/// Figure 6 — SAX segment lengths 3/6/9 on Gas Rate CO2.
pub fn fig6(dir: &Path, samples: usize) -> Result<PathBuf> {
    let series = PaperDataset::GasRate.load();
    let forecasters: Vec<(String, Box<dyn MultivariateForecaster>)> = [3usize, 6, 9]
        .iter()
        .map(|&seg| {
            (
                format!("SAX seg={seg}"),
                Box::new(sax_forecaster(SaxAlphabetKind::Alphabetic, seg, 5, samples))
                    as Box<dyn MultivariateForecaster>,
            )
        })
        .collect();
    render(
        "Fig. 6 — Forecasting for various SAX segments (CO2%)",
        &series,
        1,
        forecasters,
        &dir.join("fig6_sax_segments.svg"),
    )
}

/// Figure 7 — SAX alphabet sizes 5/10/20 on Gas Rate CO2.
pub fn fig7(dir: &Path, samples: usize) -> Result<PathBuf> {
    let series = PaperDataset::GasRate.load();
    let forecasters: Vec<(String, Box<dyn MultivariateForecaster>)> = [5usize, 10, 20]
        .iter()
        .map(|&size| {
            (
                format!("SAX a={size}"),
                Box::new(sax_forecaster(SaxAlphabetKind::Alphabetic, 6, size, samples))
                    as Box<dyn MultivariateForecaster>,
            )
        })
        .collect();
    render(
        "Fig. 7 — Forecasting for different SAX alphabet sizes (CO2%)",
        &series,
        1,
        forecasters,
        &dir.join("fig7_sax_alphabets.svg"),
    )
}

/// Figure 8 — digital-alphabet SAX forecast on Gas Rate CO2.
pub fn fig8(dir: &Path, samples: usize) -> Result<PathBuf> {
    let series = PaperDataset::GasRate.load();
    render(
        "Fig. 8 — Forecasting using digits instead of letters as symbols (CO2%)",
        &series,
        1,
        vec![(
            "SAX digital (a=5, seg=6)".into(),
            Box::new(sax_forecaster(SaxAlphabetKind::Digital, 6, 5, samples)),
        )],
        &dir.join("fig8_sax_digital.svg"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_renders_svg() {
        let dir = std::env::temp_dir().join("mc_bench_figs_test");
        let path = fig3(&dir, 1).unwrap();
        let svg = std::fs::read_to_string(&path).unwrap();
        assert!(svg.contains("MultiCast (DI)"));
        assert!(svg.contains("ARIMA"));
        assert!(svg.contains("actual"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fig8_uses_digital_alphabet() {
        let dir = std::env::temp_dir().join("mc_bench_figs_test8");
        let path = fig8(&dir, 1).unwrap();
        let svg = std::fs::read_to_string(&path).unwrap();
        assert!(svg.contains("digital"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
