//! Lowering: from a declarative [`ScenarioSpec`] to the concrete
//! configuration the engine and serve seams consume.
//!
//! [`Lowered`] is the full resolved shape of one scenario —
//! [`ForecastConfig`], serve scheduler knobs, fault profile, load
//! geometry and sweep axes — after applying three layers in order:
//! kind-specific defaults (pinned to what the pre-refactor bench bins
//! hard-coded; the golden-spec tests assert this), then the spec's
//! explicit overrides, then the `--fast` shrink for CI smoke runs.
//! Lowering is pure: no engine is constructed and nothing runs here.

use multicast_core::robust::FaultProfile;
use multicast_core::{BreakerPolicy, ForecastConfig, MuxMethod, ServeConfig};

use mc_datasets::PaperDataset;
use mc_lm::cache::{CacheConfig, CachePolicy, RefitMode};

use crate::spec::{CachePolicyToken, CacheRefitToken, CacheSpec, ScenarioKind, ScenarioSpec};

/// A spec lowered onto the concrete configuration types.
#[derive(Debug, Clone, PartialEq)]
pub struct Lowered {
    /// Scenario name (the `BENCH_<name>.json` stem).
    pub name: String,
    /// What to run.
    pub kind: ScenarioKind,
    /// Primary dataset (grid scenarios such as `backtest` iterate all
    /// datasets regardless; this is the one single-dataset studies use).
    pub dataset: PaperDataset,
    /// Multiplexing strategy for single-mux studies.
    pub mux: MuxMethod,
    /// Fully resolved pipeline configuration (samples, digits, seed,
    /// sampler, robustness policy).
    pub config: ForecastConfig,
    /// Serve scheduler shape (serve scenarios only; defaults elsewhere).
    pub serve: ServeConfig,
    /// Fault source, when the scenario injects chaos.
    pub faults: Option<FaultProfile>,
    /// Flush waves in generated serve load.
    pub waves: usize,
    /// Requests per wave in generated serve load.
    pub per_wave: usize,
    /// Per-request deadline in generated tokens (serve chaos).
    pub deadline_tokens: Option<u64>,
    /// Primary sweep axis (kind-specific; see [`ScenarioSpec::sweep`]).
    pub sweep: Vec<usize>,
    /// Secondary sweep axis.
    pub samples_sweep: Vec<usize>,
    /// Audited requests in the latency-audit reference wave.
    pub audit_requests: usize,
    /// Tolerance on the blame-partition invariant
    /// (`|Σ blame − end-to-end| / end-to-end`).
    pub blame_tolerance: f64,
}

impl Lowered {
    /// Lowers `spec`, applying kind defaults, spec overrides, then the
    /// `fast` shrink (which only affects knobs the spec left unset).
    pub fn lower(spec: &ScenarioSpec, fast: bool) -> Lowered {
        let kind = spec.kind;
        let samples = spec.samples.unwrap_or(default_samples(kind, fast));
        // The fault-injection study needs at least 3 samples for the
        // retry/quorum machinery to be observable (the old bin's
        // `samples.max(3)`).
        let samples = if kind == ScenarioKind::FaultInjection { samples.max(3) } else { samples };
        let mut config = ForecastConfig {
            samples,
            seed: spec.seed.unwrap_or(default_seed(kind)),
            ..ForecastConfig::default()
        };
        if let Some(d) = spec.digits {
            config.digits = d;
        }
        if let Some(p) = spec.preset {
            config.preset = p;
        }
        if let Some(t) = spec.temperature {
            config.sampler.temperature = t;
        }
        config.robust.deadline_tokens = spec.robust.deadline_tokens.or(default_deadline(kind));
        if let Some(r) = spec.robust.retries {
            config.robust.max_retries = r;
        }
        if let Some(m) = spec.robust.min_valid {
            config.robust.min_valid_samples = m;
        }
        config.robust.backoff_base = spec.robust.backoff_base.unwrap_or(default_backoff(kind));

        let queue_cap = spec.serve.queue_cap.or(default_queue_cap(kind, fast));
        let faults = spec.faults.or_else(|| default_faults(kind));
        let serve = ServeConfig {
            workers: spec.serve.workers.unwrap_or(default_workers(kind)),
            queue_cap,
            submit_cap: spec.serve.submit_cap.or(queue_cap.map(|c| c + 2)),
            quota_tokens: faults.and_then(|f| f.quota_tokens),
            breaker: match spec.serve.breaker {
                Some(true) | None => default_breaker(kind),
                Some(false) => None,
            },
            cache: lower_cache(&spec.cache, kind),
        };
        let (waves, per_wave) = default_load(kind, fast);
        Lowered {
            name: spec.name.clone(),
            kind,
            dataset: spec.dataset.unwrap_or(PaperDataset::GasRate),
            mux: spec.mux.unwrap_or(MuxMethod::ValueInterleave),
            config,
            serve,
            faults,
            waves: spec.serve.waves.unwrap_or(waves),
            per_wave: spec.serve.per_wave.unwrap_or(per_wave),
            deadline_tokens: config.robust.deadline_tokens,
            sweep: spec.sweep.clone().unwrap_or_else(|| default_sweep(kind, fast)),
            samples_sweep: spec
                .samples_sweep
                .clone()
                .unwrap_or_else(|| default_samples_sweep(kind)),
            audit_requests: spec.latency.requests.unwrap_or(default_audit_requests(kind, fast)),
            blame_tolerance: spec.latency.tolerance.unwrap_or(0.01),
        }
    }
}

/// Resolves the `[cache]` section onto `mc-lm`'s [`CacheConfig`]. The
/// cache engages for `cache_reuse` scenarios by default, and for any
/// scenario whose spec sets a `[cache]` key; everything else serves
/// cold (`None`), matching the pre-cache bins.
fn lower_cache(spec: &CacheSpec, kind: ScenarioKind) -> Option<CacheConfig> {
    if kind != ScenarioKind::CacheReuse && *spec == CacheSpec::default() {
        return None;
    }
    let base = CacheConfig::default();
    Some(CacheConfig {
        capacity: spec.capacity.unwrap_or(base.capacity),
        shards: spec.shards.unwrap_or(base.shards),
        policy: match spec.policy {
            Some(CachePolicyToken::Lru) => CachePolicy::Lru,
            Some(CachePolicyToken::Slru) => CachePolicy::Slru,
            None => base.policy,
        },
        refit: match spec.refit {
            Some(CacheRefitToken::Incremental) => RefitMode::Incremental,
            Some(CacheRefitToken::Rebuild) => RefitMode::Rebuild,
            None => base.refit,
        },
    })
}

fn default_samples(kind: ScenarioKind, fast: bool) -> usize {
    match kind {
        // The chaos drill always runs lean: 3 samples per request.
        ScenarioKind::ServeChaos => 3,
        // Telemetry's representative batch uses the paper default width,
        // and the latency audit pins it so the gated percentiles are
        // scale-independent of `--fast`.
        ScenarioKind::Telemetry | ScenarioKind::LatencyAudit => 5,
        _ => {
            if fast {
                1
            } else {
                5
            }
        }
    }
}

fn default_seed(kind: ScenarioKind) -> u64 {
    match kind {
        // Chaos requests seed from 9000 + request index.
        ScenarioKind::ServeChaos => 9000,
        // Serving studies seed requests from 1000 + request index.
        ScenarioKind::ConcurrentServing
        | ScenarioKind::Telemetry
        | ScenarioKind::CacheReuse
        | ScenarioKind::LatencyAudit => 1000,
        _ => ForecastConfig::default().seed,
    }
}

fn default_deadline(kind: ScenarioKind) -> Option<u64> {
    match kind {
        ScenarioKind::ServeChaos => Some(240),
        _ => None,
    }
}

fn default_backoff(kind: ScenarioKind) -> u32 {
    match kind {
        // The audit keeps chaos backoff so Retry/Backoff spans appear in
        // the blame table.
        ScenarioKind::ServeChaos | ScenarioKind::LatencyAudit => 2,
        _ => 0,
    }
}

fn default_workers(kind: ScenarioKind) -> usize {
    match kind {
        ScenarioKind::ServeChaos
        | ScenarioKind::ConcurrentServing
        | ScenarioKind::Telemetry
        | ScenarioKind::CacheReuse
        | ScenarioKind::LatencyAudit => 8,
        _ => ServeConfig::default().workers,
    }
}

fn default_queue_cap(kind: ScenarioKind, fast: bool) -> Option<usize> {
    match kind {
        ScenarioKind::ServeChaos => Some(if fast { 3 } else { 6 }),
        _ => None,
    }
}

fn default_breaker(kind: ScenarioKind) -> Option<BreakerPolicy> {
    match kind {
        ScenarioKind::ServeChaos => Some(BreakerPolicy::default()),
        _ => None,
    }
}

fn default_faults(kind: ScenarioKind) -> Option<FaultProfile> {
    match kind {
        // `rate=0.3,seed=77,latency=8,quota=2500` in the chaos grammar.
        ScenarioKind::ServeChaos => Some(FaultProfile {
            rate: 0.3,
            seed: 77,
            panic_sample: None,
            latency_tokens: 8,
            quota_tokens: Some(2500),
        }),
        ScenarioKind::FaultInjection => {
            Some(FaultProfile { seed: 0xFA017, panic_sample: Some(0), ..Default::default() })
        }
        // A gentler profile than the chaos drill: enough retries and
        // latency faults to populate every blame stage, no quota so the
        // audited wave is never starved mid-flight.
        ScenarioKind::LatencyAudit => Some(FaultProfile {
            rate: 0.25,
            seed: 77,
            panic_sample: None,
            latency_tokens: 4,
            quota_tokens: None,
        }),
        _ => None,
    }
}

fn default_load(kind: ScenarioKind, fast: bool) -> (usize, usize) {
    match kind {
        ScenarioKind::ServeChaos => {
            if fast {
                (2, 5)
            } else {
                (3, 8)
            }
        }
        // Telemetry serves one 8-request batch.
        ScenarioKind::Telemetry => (1, 8),
        // The cache study needs ≥ 2 waves (so the second is warm) at
        // R ≥ 8 per wave — the acceptance geometry of the bench gate.
        ScenarioKind::CacheReuse => {
            if fast {
                (2, 8)
            } else {
                (3, 8)
            }
        }
        _ => (1, 1),
    }
}

fn default_sweep(kind: ScenarioKind, fast: bool) -> Vec<usize> {
    match kind {
        // Table VII / prompt-reuse sweep sampling widths.
        ScenarioKind::Table(7) | ScenarioKind::PromptReuse => {
            if fast {
                vec![1, 2]
            } else {
                vec![5, 10, 20]
            }
        }
        // Table VIII sweeps SAX segment lengths.
        ScenarioKind::Table(8) => vec![3, 6, 9],
        // Table IX sweeps SAX alphabet sizes.
        ScenarioKind::Table(9) => vec![5, 10, 20],
        // Concurrent serving sweeps request counts R.
        ScenarioKind::ConcurrentServing => vec![1, 2, 4, 8],
        _ => Vec::new(),
    }
}

fn default_audit_requests(kind: ScenarioKind, fast: bool) -> usize {
    match kind {
        ScenarioKind::LatencyAudit if fast => 5,
        _ => 8,
    }
}

fn default_samples_sweep(kind: ScenarioKind) -> Vec<usize> {
    match kind {
        // Concurrent serving crosses R with sampling widths S.
        ScenarioKind::ConcurrentServing => vec![5, 10],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_chaos_defaults_match_the_old_bin() {
        let l = Lowered::lower(&ScenarioSpec::new(ScenarioKind::ServeChaos), false);
        assert_eq!(l.config.samples, 3);
        assert_eq!(l.config.seed, 9000);
        assert_eq!(l.config.robust.deadline_tokens, Some(240));
        assert_eq!(l.config.robust.backoff_base, 2);
        assert_eq!(l.serve.workers, 8);
        assert_eq!(l.serve.queue_cap, Some(6));
        assert_eq!(l.serve.submit_cap, Some(8));
        assert_eq!(l.serve.quota_tokens, Some(2500));
        assert!(l.serve.breaker.is_some());
        assert_eq!((l.waves, l.per_wave), (3, 8));
        let f = l.faults.unwrap();
        assert_eq!((f.rate, f.seed, f.latency_tokens), (0.3, 77, 8));
    }

    #[test]
    fn fast_shrinks_only_unset_knobs() {
        let mut spec = ScenarioSpec::new(ScenarioKind::ServeChaos);
        let fast = Lowered::lower(&spec, true);
        assert_eq!(fast.serve.queue_cap, Some(3));
        assert_eq!((fast.waves, fast.per_wave), (2, 5));
        spec.serve.queue_cap = Some(9);
        spec.serve.waves = Some(4);
        let pinned = Lowered::lower(&spec, true);
        assert_eq!(pinned.serve.queue_cap, Some(9));
        assert_eq!(pinned.serve.submit_cap, Some(11));
        assert_eq!(pinned.waves, 4);
    }

    #[test]
    fn cache_reuse_defaults_enable_the_cache_at_gate_geometry() {
        let l = Lowered::lower(&ScenarioSpec::new(ScenarioKind::CacheReuse), false);
        assert_eq!(l.serve.workers, 8);
        assert_eq!(l.config.seed, 1000);
        assert_eq!(l.serve.cache, Some(CacheConfig::default()));
        assert_eq!((l.waves, l.per_wave), (3, 8));
        // Fast keeps the gate geometry: ≥ 2 waves of ≥ 8 requests.
        let fast = Lowered::lower(&ScenarioSpec::new(ScenarioKind::CacheReuse), true);
        assert_eq!((fast.waves, fast.per_wave), (2, 8));
        // Other kinds stay cold unless the spec asks for a cache.
        assert_eq!(
            Lowered::lower(&ScenarioSpec::new(ScenarioKind::Telemetry), false).serve.cache,
            None
        );
        let mut spec = ScenarioSpec::new(ScenarioKind::Telemetry);
        spec.cache.capacity = Some(4);
        let warmed = Lowered::lower(&spec, false);
        assert_eq!(warmed.serve.cache.unwrap().capacity, 4);
    }

    #[test]
    fn fault_injection_keeps_the_three_sample_floor() {
        let spec = ScenarioSpec::new(ScenarioKind::FaultInjection);
        assert_eq!(Lowered::lower(&spec, false).config.samples, 5);
        assert_eq!(Lowered::lower(&spec, true).config.samples, 3);
        let f = Lowered::lower(&spec, false).faults.unwrap();
        assert_eq!(f.seed, 0xFA017);
        assert_eq!(f.panic_sample, Some(0));
    }

    #[test]
    fn latency_audit_defaults_pin_the_gated_geometry() {
        let l = Lowered::lower(&ScenarioSpec::new(ScenarioKind::LatencyAudit), false);
        assert_eq!(l.config.samples, 5);
        assert_eq!(l.config.seed, 1000);
        assert_eq!(l.config.robust.backoff_base, 2);
        assert_eq!(l.serve.workers, 8);
        assert_eq!(l.serve.quota_tokens, None);
        assert_eq!(l.audit_requests, 8);
        assert_eq!(l.blame_tolerance, 0.01);
        let f = l.faults.unwrap();
        assert_eq!((f.rate, f.seed, f.latency_tokens), (0.25, 77, 4));
        assert_eq!(f.quota_tokens, None);
        // Fast shrinks the wave but samples stay pinned so the span
        // tree per request keeps its full shape.
        let fast = Lowered::lower(&ScenarioSpec::new(ScenarioKind::LatencyAudit), true);
        assert_eq!(fast.config.samples, 5);
        assert_eq!(fast.audit_requests, 5);
        // Spec overrides beat the audit defaults.
        let mut spec = ScenarioSpec::new(ScenarioKind::LatencyAudit);
        spec.latency.requests = Some(3);
        spec.latency.tolerance = Some(0.05);
        let pinned = Lowered::lower(&spec, true);
        assert_eq!(pinned.audit_requests, 3);
        assert_eq!(pinned.blame_tolerance, 0.05);
    }

    #[test]
    fn spec_overrides_beat_kind_defaults() {
        let mut spec = ScenarioSpec::new(ScenarioKind::Backtest);
        spec.samples = Some(7);
        spec.seed = Some(42);
        spec.temperature = Some(1.5);
        spec.robust.retries = Some(0);
        let l = Lowered::lower(&spec, true);
        assert_eq!(l.config.samples, 7);
        assert_eq!(l.config.seed, 42);
        assert_eq!(l.config.sampler.temperature, 1.5);
        assert_eq!(l.config.robust.max_retries, 0);
    }
}
