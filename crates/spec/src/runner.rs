//! Scenario execution: the one place bench code is allowed to touch the
//! `ForecastEngine` / serve-scheduler seams.
//!
//! [`Runner`] takes a parsed [`ScenarioSpec`], lowers it
//! ([`Lowered::lower`]) and dispatches on [`ScenarioKind`]. Scenarios
//! that only drive forecaster traits live in [`scenarios`](crate::scenarios);
//! the ones that exercise the engine split or the serve scheduler
//! (prompt reuse, concurrent serving, telemetry, serve chaos, cache
//! reuse) are implemented here, because the `no-adhoc-bench` lint forbids every
//! other bench module — and every bench *bin* — from naming those seams
//! directly (see `mc-lint.allow`).
//!
//! Execution is deterministic where the artifact is: markdown tables and
//! `BENCH_*.json` files carry only schedule-independent numbers; notes
//! (and the wall-clock studies' timing columns) are the only place
//! physical time appears.

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use mc_datasets::generators::sinusoids;
use mc_datasets::PaperDataset;
use mc_lm::cache::CacheStats;
use mc_obs::{
    blame, build_trees, chrome_trace, critical_path, pair_spans, NoopRecorder, Observer, Recorder,
    SpanKind, SpanNode, SpanTree,
};
use mc_tslib::error::TsError;
use mc_tslib::forecast::MultivariateForecaster;
use mc_tslib::series::MultivariateSeries;
use mc_tslib::split::holdout_split;
use multicast_core::codec::{Codec, DigitCodec};
use multicast_core::engine::PreparedBackend;
use multicast_core::pipeline::run_continuation;
use multicast_core::robust::DefectClass;
use multicast_core::serve::{
    serve_all, serve_all_observed, ForecastRequest, ServeHandle, ServeOutcome,
};
use multicast_core::{ForecastConfig, ForecastEngine, MultiCastForecaster, Priority, ServeConfig};

use crate::bencher::BenchReport;
use crate::builder::Lowered;
use crate::report::Table;
use crate::spec::{ScenarioKind, ScenarioSpec, SpecError};
use crate::timing::{format_seconds, timed};
use crate::{figs, scenarios, tables, TEST_FRACTION};

/// How a scenario run failed.
#[derive(Debug)]
pub enum RunError {
    /// A pipeline/forecast error bubbled up.
    Ts(TsError),
    /// Writing an artifact failed.
    Io(io::Error),
    /// The spec itself was invalid for this runner.
    Spec(SpecError),
    /// Encoding/decoding text through a tokenizer failed.
    Token(mc_lm::tokenizer::TokenizeError),
    /// An asserted invariant (zero stalls, trace determinism, exact
    /// accounting, bit-identical serve results) did not hold.
    Invariant(String),
}

impl RunError {
    /// A violated-invariant error.
    pub fn invariant(message: impl Into<String>) -> Self {
        RunError::Invariant(message.into())
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Ts(e) => write!(f, "{e}"),
            RunError::Io(e) => write!(f, "io: {e}"),
            RunError::Spec(e) => write!(f, "spec: {e}"),
            RunError::Token(e) => write!(f, "tokenize: {e}"),
            RunError::Invariant(m) => write!(f, "invariant violated: {m}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<TsError> for RunError {
    fn from(e: TsError) -> Self {
        RunError::Ts(e)
    }
}

impl From<io::Error> for RunError {
    fn from(e: io::Error) -> Self {
        RunError::Io(e)
    }
}

impl From<SpecError> for RunError {
    fn from(e: SpecError) -> Self {
        RunError::Spec(e)
    }
}

impl From<mc_lm::tokenizer::TokenizeError> for RunError {
    fn from(e: mc_lm::tokenizer::TokenizeError) -> Self {
        RunError::Token(e)
    }
}

/// Knobs a bin passes alongside the spec (the spec says *what*, options
/// say *where/how verbosely*).
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// CI smoke shrink (the old bins' `--fast`); only affects knobs the
    /// spec left unset.
    pub fast: bool,
    /// Where markdown/SVG artifacts land.
    pub results_dir: PathBuf,
    /// When set, scenarios with a [`BenchReport`] also write
    /// `BENCH_<name>.json` here.
    pub bench_dir: Option<PathBuf>,
    /// Figures scenario: render only this figure (`fig2`..`fig8`).
    pub figure: Option<String>,
    /// Telemetry scenario: export the canonical JSONL trace here.
    pub trace_path: Option<PathBuf>,
    /// Latency-audit scenario: export the Chrome trace-event JSON
    /// (Perfetto-loadable) here.
    pub spans_path: Option<PathBuf>,
    /// Fold sample reports / observer metrics into a printed snapshot
    /// (returned via [`RunSummary::notes`]).
    pub print_metrics: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            fast: false,
            results_dir: PathBuf::from(crate::RESULTS_DIR),
            bench_dir: None,
            figure: None,
            trace_path: None,
            spans_path: None,
            print_metrics: false,
        }
    }
}

/// What a scenario run produced.
#[derive(Debug)]
pub struct RunSummary {
    /// Scenario name.
    pub name: String,
    /// Files written (markdown, SVG, BENCH json).
    pub artifacts: Vec<PathBuf>,
    /// The machine-readable result set, when the scenario emits one.
    pub bench: Option<BenchReport>,
    /// Human-facing lines for the driving bin to print (the library
    /// never prints).
    pub notes: Vec<String>,
}

impl RunSummary {
    /// Assembles a summary, writing `BENCH_<name>.json` when the run
    /// options ask for it.
    pub(crate) fn of(
        l: &Lowered,
        mut artifacts: Vec<PathBuf>,
        bench: Option<BenchReport>,
        opts: &RunOptions,
    ) -> Result<RunSummary, RunError> {
        if let (Some(dir), Some(report)) = (&opts.bench_dir, &bench) {
            artifacts.push(report.write(dir)?);
        }
        Ok(RunSummary { name: l.name.clone(), artifacts, bench, notes: Vec::new() })
    }
}

/// Executes scenarios.
#[derive(Debug, Default)]
pub struct Runner {
    opts: RunOptions,
}

impl Runner {
    /// A runner with the given options.
    pub fn new(opts: RunOptions) -> Self {
        Self { opts }
    }

    /// The options this runner was built with.
    pub fn options(&self) -> &RunOptions {
        &self.opts
    }

    /// Runs one scenario.
    ///
    /// # Errors
    /// On pipeline errors, artifact I/O failures, or violated invariants.
    pub fn run(&self, spec: &ScenarioSpec) -> Result<RunSummary, RunError> {
        let l = Lowered::lower(spec, self.opts.fast);
        match l.kind {
            ScenarioKind::Table(_) => self.tables(&l),
            ScenarioKind::Figures => self.figures(&l),
            ScenarioKind::Backtest => scenarios::backtest_study(&l, &self.opts),
            ScenarioKind::FaultInjection => scenarios::fault_injection(&l, &self.opts),
            ScenarioKind::Ablation => scenarios::ablation(&l, &self.opts),
            ScenarioKind::Tokenization => scenarios::tokenization(&l, &self.opts),
            ScenarioKind::TasksEval => scenarios::tasks_eval(&l, &self.opts),
            ScenarioKind::PromptReuse => self.prompt_reuse(&l),
            ScenarioKind::ConcurrentServing => self.concurrent_serving(&l),
            ScenarioKind::Telemetry => self.telemetry(&l),
            ScenarioKind::ServeChaos => self.serve_chaos(&l),
            ScenarioKind::CacheReuse => self.cache_reuse(&l),
            ScenarioKind::LatencyAudit => self.latency_audit(&l),
        }
    }

    /// Runs a default-spec scenario of the given kind.
    ///
    /// # Errors
    /// As [`Runner::run`].
    pub fn run_kind(&self, kind: ScenarioKind) -> Result<RunSummary, RunError> {
        self.run(&ScenarioSpec::new(kind))
    }

    /// Runs a grid of scenarios in order, stopping at the first failure.
    ///
    /// # Errors
    /// As [`Runner::run`].
    pub fn run_grid(&self, specs: &[ScenarioSpec]) -> Result<Vec<RunSummary>, RunError> {
        specs.iter().map(|s| self.run(s)).collect()
    }

    /// Paper tables I–IX. Table I also renders Table II (dataset
    /// inventory and parameters travel together, as in the old bin).
    fn tables(&self, l: &Lowered) -> Result<RunSummary, RunError> {
        let dir = &self.opts.results_dir;
        let samples = l.config.samples;
        let mut artifacts = Vec::new();
        match l.kind {
            ScenarioKind::Table(1) => {
                artifacts.push(tables::table1_datasets().emit(dir, "table1.md")?);
                artifacts.push(tables::table2_parameters().emit(dir, "table2.md")?);
            }
            ScenarioKind::Table(2) => {
                artifacts.push(tables::table2_parameters().emit(dir, "table2.md")?);
            }
            ScenarioKind::Table(3) => {
                artifacts.push(tables::table3_model_comparison(samples)?.emit(dir, "table3.md")?);
            }
            ScenarioKind::Table(4) => {
                artifacts.push(tables::table4_gas_rate(samples)?.emit(dir, "table4.md")?);
            }
            ScenarioKind::Table(5) => {
                artifacts.push(tables::table5_electricity(samples)?.emit(dir, "table5.md")?);
            }
            ScenarioKind::Table(6) => {
                artifacts.push(tables::table6_weather(samples)?.emit(dir, "table6.md")?);
            }
            ScenarioKind::Table(7) => {
                artifacts.push(tables::table7_samples_sweep(&l.sweep)?.emit(dir, "table7.md")?);
            }
            ScenarioKind::Table(8) => {
                artifacts
                    .push(tables::table8_segment_sweep(&l.sweep, samples)?.emit(dir, "table8.md")?);
            }
            ScenarioKind::Table(9) => {
                artifacts.push(
                    tables::table9_alphabet_sweep(&l.sweep, samples)?.emit(dir, "table9.md")?,
                );
            }
            other => return Err(RunError::invariant(format!("not a table scenario: {other:?}"))),
        }
        RunSummary::of(l, artifacts, None, &self.opts)
    }

    /// Figures 2–8 (all, or the one named in [`RunOptions::figure`]).
    fn figures(&self, l: &Lowered) -> Result<RunSummary, RunError> {
        let dir = &self.opts.results_dir;
        let samples = l.config.samples;
        let artifacts = match self.opts.figure.as_deref() {
            None | Some("all") => figs::all_figures(dir, samples)?,
            Some("fig2") => figs::fig2(dir, samples)?,
            Some("fig3") => vec![figs::fig3(dir, samples)?],
            Some("fig4") => vec![figs::fig4(dir, samples)?],
            Some("fig5") => vec![figs::fig5(dir, samples)?],
            Some("fig6") => vec![figs::fig6(dir, samples)?],
            Some("fig7") => vec![figs::fig7(dir, samples)?],
            Some("fig8") => vec![figs::fig8(dir, samples)?],
            Some(other) => {
                return Err(RunError::invariant(format!(
                    "unknown figure `{other}` (expected fig2..fig8 or all)"
                )))
            }
        };
        let mut summary = RunSummary::of(l, artifacts, None, &self.opts)?;
        summary.notes =
            summary.artifacts.iter().map(|p| format!("wrote {}", p.display())).collect();
        Ok(summary)
    }

    /// Fit-once vs refit-per-sample (`results/prompt_reuse.md`): what the
    /// `FrozenLm` split buys, at the paper's sampling widths.
    fn prompt_reuse(&self, l: &Lowered) -> Result<RunSummary, RunError> {
        let series = l.dataset.load();
        let (train, test) = holdout_split(&series, TEST_FRACTION)?;
        let horizon = test.len();
        let config = ForecastConfig::default();
        let codec = DigitCodec::from_config(l.mux, &config);
        let fitted = codec.fit(&train)?;
        let cont = ForecastEngine::new(config).continuation_spec(fitted.as_ref(), horizon);

        let mut table = Table::new(
            "Prompt reuse on Gas Rate (VI): refit per sample vs fit-once + forked sessions",
            &["S", "refit per sample", "fit-once", "speedup"],
        );
        for &samples in &l.sweep {
            let (refit_ok, refit) = timed(|| -> Result<(), TsError> {
                for i in 0..samples {
                    run_continuation(&cont, config.sampler_for(i))?;
                }
                Ok(())
            });
            refit_ok?;
            let (reuse_ok, reuse) = timed(|| -> Result<(), TsError> {
                let backend = PreparedBackend::fit(&cont)?;
                let sampler = backend.sampler(cont.separators, cont.max_tokens);
                for i in 0..samples {
                    sampler.draw(config.sampler_for(i))?;
                }
                Ok(())
            });
            reuse_ok?;
            table.row(vec![
                samples.to_string(),
                format_seconds(refit),
                format_seconds(reuse),
                format!("{:.2}x", refit / reuse),
            ]);
        }
        let path = table.emit(&self.opts.results_dir, "prompt_reuse.md")?;
        RunSummary::of(l, vec![path], None, &self.opts)
    }

    /// Sequential refit vs shared-frozen concurrent serving
    /// (`results/concurrent_serving.md`), with a bit-identical check
    /// between both paths at every (dataset, R, S) point.
    fn concurrent_serving(&self, l: &Lowered) -> Result<RunSummary, RunError> {
        let workers = l.serve.workers;
        let mut table = Table::new(
            format!(
                "Concurrent serving (VI): R sequential refits vs one shared frozen context \
                 + {workers} workers"
            ),
            &["dataset", "R", "S", "sequential refit", "shared serve", "speedup"],
        );
        for dataset in PaperDataset::ALL {
            let series = dataset.load();
            let (train, test) = holdout_split(&series, TEST_FRACTION)?;
            let horizon = test.len();
            for &requests in &l.sweep {
                for &samples in &l.samples_sweep {
                    let configs: Vec<ForecastConfig> = (0..requests)
                        .map(|r| ForecastConfig {
                            samples,
                            seed: l.config.seed + r as u64,
                            ..ForecastConfig::default()
                        })
                        .collect();

                    let (sequential, seq_time) = best_of(|| {
                        timed(|| -> Result<Vec<_>, TsError> {
                            configs
                                .iter()
                                .map(|cfg| {
                                    MultiCastForecaster::new(l.mux, *cfg).forecast(&train, horizon)
                                })
                                .collect()
                        })
                    });
                    let sequential = sequential?;

                    let batch: Vec<ForecastRequest> = configs
                        .iter()
                        .map(|cfg| ForecastRequest::digit(train.clone(), horizon, l.mux, *cfg))
                        .collect();
                    let (run, serve_time) = best_of(|| {
                        timed(|| serve_all(&batch, &ServeConfig::with_workers(workers)))
                    });

                    // The scheduler must not change the numbers, only the
                    // clock.
                    if run.contexts.len() != 1 {
                        return Err(RunError::invariant("one history, one frozen context"));
                    }
                    for (solo, outcome) in sequential.iter().zip(&run.outcomes) {
                        let served = outcome
                            .forecast
                            .as_ref()
                            .map_err(|e| RunError::invariant(format!("served forecast: {e}")))?;
                        for d in 0..solo.dims() {
                            let (a, b) = (solo.column(d)?, served.column(d)?);
                            if !a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()) {
                                return Err(RunError::invariant(format!(
                                    "{dataset}: served forecast diverged from sequential"
                                )));
                            }
                        }
                    }

                    table.row(vec![
                        dataset.to_string(),
                        requests.to_string(),
                        samples.to_string(),
                        format_seconds(seq_time),
                        format_seconds(serve_time),
                        format!("{:.2}x", seq_time / serve_time),
                    ]);
                }
            }
        }
        let path = table.emit(&self.opts.results_dir, "concurrent_serving.md")?;
        RunSummary::of(l, vec![path], None, &self.opts)
    }

    /// The telemetry study (`results/serving_telemetry.md`): recorder-seam
    /// overhead plus the traced run feeding the canonical JSONL export.
    fn telemetry(&self, l: &Lowered) -> Result<RunSummary, RunError> {
        use std::fmt::Write as _;
        let workers = l.serve.workers;
        let series = l.dataset.load();
        let (train, test) = holdout_split(&series, TEST_FRACTION)?;
        let horizon = test.len();
        let batch: Vec<ForecastRequest> = (0..l.per_wave)
            .map(|r| {
                let config = ForecastConfig {
                    samples: l.config.samples,
                    seed: l.config.seed + r as u64,
                    ..ForecastConfig::default()
                };
                ForecastRequest::digit(train.clone(), horizon, l.mux, config)
            })
            .collect();
        let serve_config = ServeConfig::with_workers(workers);
        let mut notes = Vec::new();

        // Overhead of the recorder seam itself: bare serve_all vs the same
        // batch through a disabled recorder (one virtual call per probe).
        // One untimed pass first so dataset/codec warm-up is not charged
        // to whichever variant happens to run first.
        serve_all(&batch, &serve_config);
        let (_, bare) = best_of(|| timed(|| serve_all(&batch, &serve_config)));
        let noop: Arc<dyn Recorder> = Arc::new(NoopRecorder);
        let (_, disabled) =
            best_of(|| timed(|| serve_all_observed(&batch, &serve_config, noop.clone())));

        // The recording run: logical clock, canonical export.
        let obs = Arc::new(Observer::logical());
        let (run, traced) = timed(|| serve_all_observed(&batch, &serve_config, obs.clone()));
        for outcome in &run.outcomes {
            if outcome.forecast.is_err() {
                return Err(RunError::invariant("telemetry batch request failed"));
            }
        }
        let jsonl = obs.to_jsonl();
        if let Some(path) = &self.opts.trace_path {
            std::fs::write(path, &jsonl)?;
            notes.push(format!("wrote {} ({} events)", path.display(), jsonl.lines().count()));
        }
        let snapshot = obs.metrics().snapshot();
        if self.opts.print_metrics {
            notes.push(snapshot.to_markdown());
        }

        let mut md = String::new();
        md.push_str("# Serving telemetry\n\n");
        let _ = writeln!(
            md,
            "One shared-context batch on Gas Rate: {} requests x {} samples, {workers} workers.\n",
            l.per_wave, l.config.samples
        );
        md.push_str("| serve path | wall clock |\n|---|---:|\n");
        let _ = writeln!(md, "| `serve_all` (no recorder seam) | {} |", format_seconds(bare));
        let _ = writeln!(
            md,
            "| `serve_all_observed` + `NoopRecorder` | {} |",
            format_seconds(disabled)
        );
        let _ = writeln!(
            md,
            "| `serve_all_observed` + `Observer` (logical clock) | {} |",
            format_seconds(traced)
        );
        let _ = writeln!(
            md,
            "\nNo-op overhead: {:+.1} % (best-of-3; the disabled recorder adds one \
             virtual call per probe and must stay in the noise). Canonical trace: \
             {} JSONL events, byte-identical across worker counts and submission \
             orders (`tests/serving.rs`).\n",
            (disabled / bare - 1.0) * 100.0,
            jsonl.lines().count()
        );
        md.push_str("## Metrics snapshot (recorded run)\n\n");
        md.push_str(&snapshot.to_markdown());

        // Span-tree view from a single-worker reference run of the same
        // batch: one worker's schedule is total, so the tree shape and
        // its logical ticks are deterministic and the committed doc is
        // reproducible.
        let ref_obs = Arc::new(Observer::logical());
        serve_all_observed(&batch, &ServeConfig::with_workers(1), ref_obs.clone());
        let paired = pair_spans(&ref_obs.spans())
            .map_err(|e| RunError::invariant(format!("telemetry span pairing: {e}")))?;
        let trees = build_trees(&paired);
        let first = trees
            .iter()
            .find(|t| t.root.span.kind == SpanKind::Request)
            .ok_or_else(|| RunError::invariant("telemetry batch emits a request span"))?;
        md.push_str("\n## Span tree (request 0, single-worker reference)\n\n");
        md.push_str(
            "Causal spans reconstructed from the same batch on one worker \
             (`pair_spans` + `build_trees`); durations are logical ticks.\n\n",
        );
        render_span_tree(&first.root, 0, &mut md);
        let blamed = blame(first);
        let parts: Vec<String> =
            blamed.iter().map(|(name, ticks)| format!("`{name}` {ticks}")).collect();
        let _ = writeln!(
            md,
            "\nStage blame (ticks, partitions the root exactly): {}. See \
             `results/latency_audit.md` for the gated percentile study.",
            parts.join(", ")
        );
        std::fs::create_dir_all(&self.opts.results_dir)?;
        let out = self.opts.results_dir.join("serving_telemetry.md");
        std::fs::write(&out, md)?;
        notes.push(format!("wrote {}", out.display()));

        let mut summary = RunSummary::of(l, vec![out], None, &self.opts)?;
        summary.notes = notes;
        Ok(summary)
    }

    /// The chaos drill (`results/serve_chaos.md`): a saturating,
    /// fault-injected load through every overload knob, with zero-stall
    /// and trace-determinism invariants checked rather than reported.
    fn serve_chaos(&self, l: &Lowered) -> Result<RunSummary, RunError> {
        let profile =
            l.faults.ok_or_else(|| RunError::invariant("serve_chaos lowers a fault profile"))?;
        let deadline = l
            .deadline_tokens
            .ok_or_else(|| RunError::invariant("serve_chaos lowers a deadline"))?;
        let queue_cap = l
            .serve
            .queue_cap
            .ok_or_else(|| RunError::invariant("serve_chaos lowers a queue cap"))?;
        let workers = l.serve.workers;
        let waves = l.waves;
        let config = l.serve;

        let load = chaos_load(l, profile);
        let submitted: usize = load.iter().map(Vec::len).sum();

        let obs = Arc::new(Observer::logical());
        let mut handle = ServeHandle::with_recorder(config, obs.clone());
        let mut ids = Vec::with_capacity(submitted);
        for wave in &load {
            for request in wave {
                ids.push(handle.submit(request.clone()));
            }
            handle.flush();
        }

        // Zero worker stalls: every id resolves to a typed outcome. A lost
        // settlement would have hung flush() before we ever got here; an
        // unknown id would return a typed error and fail this loop.
        let outcomes = ids
            .iter()
            .map(|&id| handle.collect(id))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| RunError::invariant(format!("every submitted id collects: {e}")))?;
        if outcomes.len() != submitted {
            return Err(RunError::invariant("zero worker stalls: all ids resolved"));
        }

        let mut shed = 0usize;
        let mut queue_full = 0usize;
        let mut quota = 0usize;
        let mut breaker = 0usize;
        let mut completed = 0usize;
        let mut fallbacks = 0usize;
        let mut expiries = 0usize;
        let mut prompt_tokens = 0u64;
        let mut generated_tokens = 0u64;
        let mut spends: Vec<u64> = Vec::new();
        for outcome in &outcomes {
            match &outcome.forecast {
                Ok(_) => {
                    completed += 1;
                    prompt_tokens += outcome.cost.prompt_tokens;
                    generated_tokens += outcome.cost.generated_tokens;
                    spends.push(outcome.cost.generated_tokens);
                    if let Some(report) = &outcome.report {
                        if report.degraded() {
                            fallbacks += 1;
                        }
                        expiries += report.defect_count(DefectClass::DeadlineExpired);
                    }
                }
                Err(TsError::Overloaded { kind, .. }) => match *kind {
                    "shed" => shed += 1,
                    "queue-full" => queue_full += 1,
                    "quota" => quota += 1,
                    "breaker-open" => breaker += 1,
                    other => {
                        return Err(RunError::invariant(format!(
                            "unexpected overload kind `{other}`"
                        )))
                    }
                },
                Err(e) => {
                    return Err(RunError::invariant(format!(
                        "chaos run must degrade, not error: {e}"
                    )))
                }
            }
        }
        spends.sort_unstable();

        // Scheduling independence under chaos: one admitted wave, canonical
        // event and span traces byte-identical across worker counts.
        let reference_wave = &load[0];
        let observe_at = |w: usize| {
            let obs = Arc::new(Observer::logical());
            let cfg = ServeConfig { workers: w, ..config };
            serve_all_observed(reference_wave, &cfg, obs.clone());
            obs
        };
        let reference_obs = observe_at(1);
        let reference = reference_obs.to_jsonl();
        let reference_spans = reference_obs.spans_to_jsonl();
        for w in [2usize, workers.max(2)] {
            let other = observe_at(w);
            if other.to_jsonl() != reference {
                return Err(RunError::invariant(format!(
                    "{w} workers changed the canonical chaos trace"
                )));
            }
            if other.spans_to_jsonl() != reference_spans {
                return Err(RunError::invariant(format!(
                    "{w} workers changed the canonical span trace"
                )));
            }
        }

        // Queue-wait attribution from the single-worker reference run: the
        // uncovered root segments of each admitted request's span tree are
        // exactly the time it spent queued or scheduled (see
        // [`mc_obs::blame`]). One worker's schedule is total, so these
        // ticks are deterministic and independent of the configured
        // worker count.
        let paired = pair_spans(&reference_obs.spans())
            .map_err(|e| RunError::invariant(format!("chaos span pairing: {e}")))?;
        let mut queue_waits: Vec<u64> = build_trees(&paired)
            .iter()
            .filter(|t| t.root.span.kind == SpanKind::Request)
            .map(|t| blame(t).iter().filter(|&&(n, _)| n == "queue_wait").map(|&(_, d)| d).sum())
            .collect();
        queue_waits.sort_unstable();

        let mut t = Table::new(
            format!(
                "Serve chaos — {submitted} requests ({waves} flushes), faults `{profile}`, \
                 queue cap {queue_cap}, deadline {deadline} tokens, {workers} workers"
            ),
            &["outcome", "count", "rate"],
        );
        t.row(vec!["completed".into(), completed.to_string(), pct(completed, submitted)]);
        t.row(vec!["  of which fallback".into(), fallbacks.to_string(), pct(fallbacks, submitted)]);
        t.row(vec!["shed (admission)".into(), shed.to_string(), pct(shed, submitted)]);
        t.row(vec![
            "queue-full (submit)".into(),
            queue_full.to_string(),
            pct(queue_full, submitted),
        ]);
        t.row(vec!["quota-rejected".into(), quota.to_string(), pct(quota, submitted)]);
        t.row(vec!["breaker-rejected".into(), breaker.to_string(), pct(breaker, submitted)]);
        t.row(vec!["deadline expiries (samples)".into(), expiries.to_string(), "-".into()]);
        t.row(vec![
            "p50 spend (generated tokens)".into(),
            percentile(&spends, 0.50).to_string(),
            "-".into(),
        ]);
        t.row(vec![
            "p99 spend (generated tokens)".into(),
            percentile(&spends, 0.99).to_string(),
            "-".into(),
        ]);
        t.row(vec![
            "p50 queue wait (ticks, 1-worker reference)".into(),
            percentile(&queue_waits, 0.50).to_string(),
            "gated".into(),
        ]);
        t.row(vec![
            "p99 queue wait (ticks, 1-worker reference)".into(),
            percentile(&queue_waits, 0.99).to_string(),
            "gated".into(),
        ]);
        t.row(vec!["worker stalls".into(), "0".into(), "asserted".into()]);
        t.row(vec![
            "trace determinism (1/2/N workers)".into(),
            format!("{} events", reference.lines().count()),
            "byte-identical".into(),
        ]);
        let path = t.emit(&self.opts.results_dir, "serve_chaos.md")?;

        if completed + shed + queue_full + quota + breaker != submitted {
            return Err(RunError::invariant("every request accounted for exactly once"));
        }

        let trace_events = obs.to_jsonl().lines().count();
        let mut bench = BenchReport::new(l.kind, &l.name);
        bench
            .push("submitted", submitted as f64)
            .push("completed", completed as f64)
            .push("fallbacks", fallbacks as f64)
            .push("shed", shed as f64)
            .push("queue_full", queue_full as f64)
            .push("quota_rejected", quota as f64)
            .push("breaker_rejected", breaker as f64)
            .push("deadline_expiries", expiries as f64)
            .push("p50_spend_tokens", percentile(&spends, 0.50) as f64)
            .push("p99_spend_tokens", percentile(&spends, 0.99) as f64)
            .push("p50_queue_wait_ticks", percentile(&queue_waits, 0.50) as f64)
            .push("p99_queue_wait_ticks", percentile(&queue_waits, 0.99) as f64)
            .push("prompt_tokens", prompt_tokens as f64)
            .push("generated_tokens", generated_tokens as f64)
            .push("trace_events", trace_events as f64)
            .push(
                "throughput_tokens_per_event",
                generated_tokens as f64 / (trace_events.max(1)) as f64,
            );
        RunSummary::of(l, vec![path], Some(bench), &self.opts)
    }

    /// The cache-reuse study (`results/cache_reuse.md`): the same
    /// `waves x per_wave` load over one shared history served warm (one
    /// `ServeHandle`, cross-batch cache on) and cold (cache off), with
    /// warm-vs-cold bit-identity, canonical-trace determinism across
    /// worker counts, and an exact hit/miss ledger asserted rather than
    /// reported. An incremental-refit probe on a grown synthetic history
    /// closes the loop: the refit context must forecast bit-identically
    /// to a cold fit of the grown history.
    fn cache_reuse(&self, l: &Lowered) -> Result<RunSummary, RunError> {
        let workers = l.serve.workers;
        let (waves, per_wave) = (l.waves, l.per_wave);
        let submitted = waves * per_wave;
        if l.serve.cache.is_none() {
            return Err(RunError::invariant("cache_reuse lowers a cache config"));
        }

        let series = l.dataset.load();
        let (train, test) = holdout_split(&series, TEST_FRACTION)?;
        let horizon = test.len().min(8);
        let load: Vec<Vec<ForecastRequest>> = (0..waves)
            .map(|w| {
                (0..per_wave)
                    .map(|i| {
                        let n = w * per_wave + i;
                        let mut config = l.config;
                        config.seed = l.config.seed + n as u64;
                        ForecastRequest::digit(train.clone(), horizon, l.mux, config)
                    })
                    .collect()
            })
            .collect();

        struct Pass {
            outcomes: Vec<ServeOutcome>,
            trace: String,
            stats: Option<CacheStats>,
            seconds: f64,
        }

        // One pass of the full load through a single handle: warm keeps
        // the lowered cache, cold serves the identical load with the
        // cache off. Flush boundaries and workers match, so canonical
        // traces must agree byte-for-byte (cache events are
        // scheduler-scoped, and a warm hit re-uses the cold context
        // fingerprint).
        let run = |warm: bool, w: usize| -> Result<Pass, RunError> {
            let obs = Arc::new(Observer::logical());
            let config =
                ServeConfig { workers: w, cache: l.serve.cache.filter(|_| warm), ..l.serve };
            let mut handle = ServeHandle::with_recorder(config, obs.clone());
            let (ids, seconds) = timed(|| {
                let mut ids = Vec::with_capacity(submitted);
                for wave in &load {
                    for request in wave {
                        ids.push(handle.submit(request.clone()));
                    }
                    handle.flush();
                }
                ids
            });
            let outcomes =
                ids.iter().map(|&id| handle.collect(id)).collect::<Result<Vec<_>, _>>().map_err(
                    |e| RunError::invariant(format!("every submitted id collects: {e}")),
                )?;
            Ok(Pass { outcomes, trace: obs.to_jsonl(), stats: handle.cache_stats(), seconds })
        };

        let mut cold = run(false, workers)?;
        let mut warm = run(true, workers)?;
        // Best-of-3 wall clock, as everywhere else; the fast smoke run
        // keeps one timing sample.
        if !self.opts.fast {
            for _ in 0..2 {
                cold.seconds = cold.seconds.min(run(false, workers)?.seconds);
                warm.seconds = warm.seconds.min(run(true, workers)?.seconds);
            }
        }

        if cold.stats.is_some() {
            return Err(RunError::invariant("cold run must not build a cache"));
        }
        if warm.trace != cold.trace {
            return Err(RunError::invariant("warm canonical trace diverged from cold"));
        }
        for w in [1usize, 2] {
            if w != workers && run(true, w)?.trace != warm.trace {
                return Err(RunError::invariant(format!(
                    "{w} workers changed the warm canonical trace"
                )));
            }
        }

        let mut spends: Vec<u64> = Vec::new();
        let mut prompt_tokens = 0u64;
        let mut generated_tokens = 0u64;
        for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
            let a = c
                .forecast
                .as_ref()
                .map_err(|e| RunError::invariant(format!("cold forecast: {e}")))?;
            let b = w
                .forecast
                .as_ref()
                .map_err(|e| RunError::invariant(format!("warm forecast: {e}")))?;
            if c.cost != w.cost {
                return Err(RunError::invariant("warm cost accounting diverged from cold"));
            }
            for d in 0..a.dims() {
                let (x, y) = (a.column(d)?, b.column(d)?);
                if !x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits()) {
                    return Err(RunError::invariant("warm forecast diverged from cold"));
                }
            }
            prompt_tokens += w.cost.prompt_tokens;
            generated_tokens += w.cost.generated_tokens;
            spends.push(w.cost.generated_tokens);
        }
        spends.sort_unstable();

        // Exact ledger: one shared history means one lookup per wave —
        // the first misses and fits, every later wave hits. Nothing may
        // have been evicted (the load uses a single context).
        let stats = warm.stats.expect("warm run exposes cache stats");
        if (stats.hits, stats.misses, stats.insertions, stats.evictions)
            != ((waves - 1) as u64, 1, 1, 0)
        {
            return Err(RunError::invariant(format!("unexpected cache ledger: {stats:?}")));
        }

        // Incremental-refit probe. The sinusoid extension keeps each
        // column's min/max (hence the digit scaling) stable, so the
        // longer prompt strictly extends the shorter one and the cache
        // refits the resident context in place instead of refitting
        // from scratch.
        let probe = |n: usize| -> Result<ForecastRequest, RunError> {
            let a = sinusoids(n, &[(1.0, 12.0, 0.0)]);
            let b: Vec<f64> = a.iter().map(|&v| 4.0 + 0.5 * v).collect();
            let grown = MultivariateSeries::from_columns(vec!["a".into(), "b".into()], vec![a, b])?;
            let config = ForecastConfig {
                samples: l.config.samples,
                seed: l.config.seed,
                ..ForecastConfig::default()
            };
            Ok(ForecastRequest::digit(grown, 6, l.mux, config))
        };
        let mut handle = ServeHandle::with_recorder(l.serve, Arc::new(Observer::logical()));
        let short = handle.submit(probe(48)?);
        handle.flush();
        let grown = handle.submit(probe(52)?);
        handle.flush();
        let refit_stats = handle.cache_stats().expect("probe handle exposes cache stats");
        if (refit_stats.refits, refit_stats.insertions) != (1, 1) {
            return Err(RunError::invariant(format!(
                "probe expected one incremental refit: {refit_stats:?}"
            )));
        }
        handle
            .collect(short)
            .map_err(|e| RunError::invariant(format!("probe short request: {e}")))?;
        let warm_grown = handle
            .collect(grown)
            .map_err(|e| RunError::invariant(format!("probe grown request: {e}")))?;
        let cold_grown = serve_all(&[probe(52)?], &ServeConfig { cache: None, ..l.serve });
        let a = warm_grown
            .forecast
            .map_err(|e| RunError::invariant(format!("probe refit forecast: {e}")))?;
        let b = cold_grown.outcomes[0]
            .forecast
            .as_ref()
            .map_err(|e| RunError::invariant(format!("probe cold forecast: {e}")))?;
        for d in 0..a.dims() {
            let (x, y) = (a.column(d)?, b.column(d)?);
            if !x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits()) {
                return Err(RunError::invariant(
                    "incremental refit diverged from a cold fit of the grown history",
                ));
            }
        }

        // Fit-normalized throughput: requests served per context fit.
        // Cold fits once per wave; warm fits once for the whole run.
        let warm_fits = (stats.misses + stats.refits).max(1);
        let warm_rpf = submitted as f64 / warm_fits as f64;
        let cold_rpf = per_wave as f64;

        let mut t = Table::new(
            format!(
                "Cache reuse — {waves} x {per_wave} requests over one shared context, \
                 {workers} workers"
            ),
            &["measure", "value", "check"],
        );
        t.row(vec![
            "submitted / completed".into(),
            format!("{submitted} / {submitted}"),
            "-".into(),
        ]);
        t.row(vec![
            "cache hits / misses / evictions".into(),
            format!("{} / {} / {}", stats.hits, stats.misses, stats.evictions),
            "exact ledger asserted".into(),
        ]);
        t.row(vec!["hit rate".into(), format!("{:.3}", stats.hit_rate()), "gated".into()]);
        t.row(vec!["requests per context fit (cold)".into(), format!("{cold_rpf:.0}"), "-".into()]);
        t.row(vec!["requests per context fit (warm)".into(), format!("{warm_rpf:.0}"), "-".into()]);
        t.row(vec![
            "warm / cold fit throughput".into(),
            format!("{:.2}x", warm_rpf / cold_rpf),
            "gated".into(),
        ]);
        t.row(vec![
            "p99 spend (generated tokens)".into(),
            percentile(&spends, 0.99).to_string(),
            "gated".into(),
        ]);
        t.row(vec![
            "incremental refits (grown-history probe)".into(),
            refit_stats.refits.to_string(),
            "bit-identical to cold fit".into(),
        ]);
        t.row(vec![
            "warm vs cold forecasts & costs".into(),
            "byte-identical".into(),
            "asserted".into(),
        ]);
        t.row(vec![
            "trace determinism (1/2/N workers, warm vs cold)".into(),
            format!("{} events", warm.trace.lines().count()),
            "byte-identical".into(),
        ]);
        t.row(vec![
            "wall clock cold -> warm".into(),
            format!("{} -> {}", format_seconds(cold.seconds), format_seconds(warm.seconds)),
            format!("{:.2}x", cold.seconds / warm.seconds),
        ]);
        let path = t.emit(&self.opts.results_dir, "cache_reuse.md")?;

        let mut bench = BenchReport::new(l.kind, &l.name);
        bench
            .push("submitted", submitted as f64)
            .push("completed", submitted as f64)
            .push("cache_hits", stats.hits as f64)
            .push("cache_misses", stats.misses as f64)
            .push("cache_insertions", stats.insertions as f64)
            .push("cache_evictions", stats.evictions as f64)
            .push("probe_refits", refit_stats.refits as f64)
            .push("hit_rate", stats.hit_rate())
            .push("throughput_requests_per_fit_cold", cold_rpf)
            .push("throughput_requests_per_fit_warm", warm_rpf)
            .push("throughput_warm_over_cold", warm_rpf / cold_rpf)
            .push("p99_spend_tokens", percentile(&spends, 0.99) as f64)
            .push("prompt_tokens", prompt_tokens as f64)
            .push("generated_tokens", generated_tokens as f64)
            .push("trace_events", warm.trace.lines().count() as f64);
        RunSummary::of(l, vec![path], Some(bench), &self.opts)
    }

    /// The latency audit (`results/latency_audit.md`): causal span trees
    /// from a pinned single-worker reference run of one fault-injected
    /// wave, per-stage blame percentiles gated in
    /// `BENCH_latency_audit.json`, the critical path and span tree of
    /// the slowest request, and an optional Perfetto trace export
    /// (`--spans`). The blame partition is exact by construction
    /// ([`mc_obs::blame`]); the lowered tolerance guards the
    /// aggregation arithmetic.
    fn latency_audit(&self, l: &Lowered) -> Result<RunSummary, RunError> {
        use std::fmt::Write as _;
        let profile =
            l.faults.ok_or_else(|| RunError::invariant("latency_audit lowers a fault profile"))?;
        let requests = l.audit_requests;
        if requests == 0 {
            return Err(RunError::invariant("latency_audit needs at least one request"));
        }
        // The audited load is one chaos wave: same shared history, same
        // priority/client cycling, same decorrelated fault seeds.
        let mut shaped = l.clone();
        shaped.waves = 1;
        shaped.per_wave = requests;
        let load = chaos_load(&shaped, profile).into_iter().next().unwrap_or_default();
        if load.len() != requests {
            return Err(RunError::invariant("audit load construction failed"));
        }

        // Every gated number comes from a pinned single-worker run: on
        // one worker the schedule is total, so logical ticks are
        // deterministic and independent of the configured worker count.
        let observe_at = |w: usize| {
            let obs = Arc::new(Observer::logical());
            let cfg = ServeConfig { workers: w, ..l.serve };
            let run = serve_all_observed(&load, &cfg, obs.clone());
            (run, obs)
        };
        let (run, obs) = observe_at(1);
        for outcome in &run.outcomes {
            if let Err(e) = &outcome.forecast {
                return Err(RunError::invariant(format!("audited request failed: {e}")));
            }
        }

        // The canonical span export must be byte-identical at any worker
        // count (the span-layer analogue of the chaos drill's event
        // trace determinism).
        let reference = obs.spans_to_jsonl();
        for w in [2usize, l.serve.workers.max(2)] {
            let (_, other) = observe_at(w);
            if other.spans_to_jsonl() != reference {
                return Err(RunError::invariant(format!(
                    "{w} workers changed the canonical span trace"
                )));
            }
        }

        let paired = pair_spans(&obs.spans())
            .map_err(|e| RunError::invariant(format!("audit span pairing: {e}")))?;
        let trees = build_trees(&paired);
        let audited: Vec<&SpanTree> =
            trees.iter().filter(|t| t.root.span.kind == SpanKind::Request).collect();
        if audited.len() != requests {
            return Err(RunError::invariant(format!(
                "expected {requests} request trees, found {}",
                audited.len()
            )));
        }

        // Per-request blame. Every request contributes to every stage
        // (absent stages as 0) so each percentile is over `requests`
        // values.
        let totals: Vec<u64> = audited.iter().map(|t| t.root.span.ticks()).collect();
        let per_request: Vec<Vec<(&'static str, u64)>> = audited.iter().map(|t| blame(t)).collect();
        let mut stage_names: Vec<&'static str> =
            per_request.iter().flatten().map(|&(n, _)| n).collect();
        stage_names.sort_unstable();
        stage_names.dedup();
        let stages: Vec<(&'static str, Vec<u64>)> = stage_names
            .iter()
            .map(|&name| {
                let mut vals: Vec<u64> = per_request
                    .iter()
                    .map(|parts| parts.iter().find(|&&(n, _)| n == name).map_or(0, |&(_, d)| d))
                    .collect();
                vals.sort_unstable();
                (name, vals)
            })
            .collect();
        let grand_total: u64 = totals.iter().sum();
        let stage_sum: u64 = stages.iter().flat_map(|(_, v)| v.iter()).sum();
        let fraction_sum = stage_sum as f64 / grand_total.max(1) as f64;
        if (fraction_sum - 1.0).abs() > l.blame_tolerance {
            return Err(RunError::invariant(format!(
                "blame fractions sum to {fraction_sum:.4} (tolerance {})",
                l.blame_tolerance
            )));
        }
        let mut sorted_totals = totals.clone();
        sorted_totals.sort_unstable();
        let slowest = audited
            .iter()
            .enumerate()
            .max_by_key(|&(i, t)| (t.root.span.ticks(), std::cmp::Reverse(i)))
            .map(|(i, t)| (i, *t))
            .expect("at least one audited request");

        let mut notes = Vec::new();
        if let Some(path) = &self.opts.spans_path {
            let trace = chrome_trace(&paired);
            std::fs::write(path, &trace)?;
            notes.push(format!("wrote {} ({} spans)", path.display(), paired.len()));
        }

        let workers = l.serve.workers;
        let mut md = String::new();
        md.push_str("# Latency audit\n\n");
        let _ = writeln!(
            md,
            "One fault-injected wave on Gas Rate: {requests} requests x {} samples, faults \
             `{profile}`, served on a pinned single worker so every tick below is \
             deterministic. The canonical span export is asserted byte-identical at 1, 2 \
             and {workers} workers before anything is measured.\n",
            l.config.samples
        );
        md.push_str("## Stage blame\n\n");
        md.push_str(
            "Each request's end-to-end interval is partitioned at every span boundary and \
             each segment is blamed on the deepest covering span; uncovered segments are \
             queue/scheduler time (`queue_wait`). The partition is exact, so the blame \
             column sums to 100 %.\n\n",
        );
        md.push_str("| stage | total ticks | blame | p50 ticks | p99 ticks |\n");
        md.push_str("|---|---:|---:|---:|---:|\n");
        for (name, vals) in &stages {
            let sum: u64 = vals.iter().sum();
            let _ = writeln!(
                md,
                "| `{name}` | {sum} | {:.1}% | {} | {} |",
                100.0 * sum as f64 / grand_total.max(1) as f64,
                percentile(vals, 0.50),
                percentile(vals, 0.99),
            );
        }
        let _ = writeln!(
            md,
            "| **end-to-end** | {grand_total} | 100.0% | {} | {} |",
            percentile(&sorted_totals, 0.50),
            percentile(&sorted_totals, 0.99),
        );
        let _ = writeln!(
            md,
            "\n## Critical path (slowest request, #{})\n\nThe chain of spans that bounded \
             completion — from the root, repeatedly the latest-closing child:\n",
            slowest.0
        );
        for span in critical_path(slowest.1) {
            let _ = writeln!(md, "- `{}` — {} ticks", span.kind.name(), span.ticks());
        }
        md.push_str("\n## Span tree (slowest request)\n\n");
        render_span_tree(&slowest.1.root, 0, &mut md);
        let _ = writeln!(
            md,
            "\n{} paired spans over the wave; blame partition drift {:.4} (tolerance {}). \
             Run `mc-scenario specs/latency_audit.spec --spans trace.json` for a \
             Perfetto-loadable view of the same wave.",
            paired.len(),
            (fraction_sum - 1.0).abs(),
            l.blame_tolerance
        );
        std::fs::create_dir_all(&self.opts.results_dir)?;
        let out = self.opts.results_dir.join("latency_audit.md");
        std::fs::write(&out, md)?;
        notes.push(format!("wrote {}", out.display()));

        let mut bench = BenchReport::new(l.kind, &l.name);
        bench
            .push("submitted", requests as f64)
            .push("completed", requests as f64)
            .push("paired_spans", paired.len() as f64)
            .push("p50_total_ticks", percentile(&sorted_totals, 0.50) as f64)
            .push("p99_total_ticks", percentile(&sorted_totals, 0.99) as f64);
        for (name, vals) in &stages {
            let sum: u64 = vals.iter().sum();
            bench
                .push(format!("p50_stage_{name}_ticks"), percentile(vals, 0.50) as f64)
                .push(format!("p99_stage_{name}_ticks"), percentile(vals, 0.99) as f64)
                .push(format!("blame_fraction_{name}"), sum as f64 / grand_total.max(1) as f64);
        }
        let mut summary = RunSummary::of(l, vec![out], Some(bench), &self.opts)?;
        summary.notes = notes;
        Ok(summary)
    }
}

/// Renders one span tree as an indented markdown list (durations on the
/// observer clock).
fn render_span_tree(node: &SpanNode, depth: usize, out: &mut String) {
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "{}- `{}` — {} ticks",
        "  ".repeat(depth),
        node.span.kind.name(),
        node.span.ticks()
    );
    for child in &node.children {
        render_span_tree(child, depth + 1, out);
    }
}

/// The chaos load: `waves x per_wave` requests over one shared history,
/// cycling priorities and two clients, every draw filtered through the
/// fault profile. Deterministic by construction — seeds derive from the
/// request index alone.
fn chaos_load(
    l: &Lowered,
    profile: multicast_core::robust::FaultProfile,
) -> Vec<Vec<ForecastRequest>> {
    let series = l.dataset.load();
    let Ok((train, test)) = holdout_split(&series, TEST_FRACTION) else {
        return Vec::new();
    };
    let horizon = test.len().min(8);
    (0..l.waves)
        .map(|w| {
            (0..l.per_wave)
                .map(|i| {
                    let n = w * l.per_wave + i;
                    let mut config = l.config;
                    config.seed = l.config.seed + n as u64;
                    let mut request = ForecastRequest::digit(train.clone(), horizon, l.mux, config);
                    // Decorrelate corruption decisions across requests:
                    // FaultSpec hashes (seed, sample, attempt), so a shared
                    // seed would corrupt every request identically.
                    request.source = multicast_core::robust::FaultProfile {
                        seed: profile.seed.wrapping_add(n as u64),
                        ..profile
                    }
                    .source();
                    request.priority = match n % 3 {
                        0 => Priority::Batch,
                        1 => Priority::Normal,
                        _ => Priority::Interactive,
                    };
                    request.client = (n % 2) as u32;
                    request
                })
                .collect()
        })
        .collect()
}

/// Best-of-3 wall clock: one-shot timings of millisecond-scale runs are
/// dominated by scheduler noise; the minimum is the stable estimate.
fn best_of<T>(mut f: impl FnMut() -> (T, f64)) -> (T, f64) {
    let mut best = f();
    for _ in 0..2 {
        let next = f();
        if next.1 < best.1 {
            best = next;
        }
    }
    best
}

/// Value at quantile `q` of an ascending-sorted slice (nearest-rank).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn pct(part: usize, total: usize) -> String {
    if total == 0 {
        return "0%".into();
    }
    format!("{:.1}%", 100.0 * part as f64 / total as f64)
}
