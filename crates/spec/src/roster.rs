//! Shared experiment machinery: the method roster, evaluation protocol and
//! result records.
//!
//! Protocol (identical for every table): split the dataset, hand the train
//! segment to each forecaster, forecast exactly the test horizon, score
//! per-dimension RMSE, and record wall-clock seconds plus (for LLM-based
//! methods) token counts.

use mc_baselines::{ArimaForecaster, LstmConfig, LstmForecaster};
use mc_lm::cost::InferenceCost;
use mc_tslib::error::Result;
use mc_tslib::forecast::{MultivariateForecaster, PerDimension};
use mc_tslib::metrics::rmse;
use mc_tslib::series::MultivariateSeries;
use mc_tslib::split::holdout_split;
use multicast_core::{ForecastConfig, LlmTimeForecaster, MultiCastForecaster, MuxMethod};

use crate::timing::timed;

/// Outcome of evaluating one method on one dataset.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method display name (paper style).
    pub method: String,
    /// RMSE per dimension, in dataset order.
    pub per_dim_rmse: Vec<f64>,
    /// Wall-clock seconds of the forecast call (training included for
    /// the LSTM, order search included for ARIMA).
    pub seconds: f64,
    /// LLM token counters, when the method has them.
    pub cost: Option<InferenceCost>,
    /// The forecast itself (kept for figure rendering).
    pub forecast: MultivariateSeries,
}

/// A boxed method under its paper display name.
///
/// Token-cost reporting (Tables VII–IX) bypasses this wrapper and reads
/// `last_cost` on the concrete forecaster types directly; the roster path
/// only needs names, forecasts and timings.
pub struct Method {
    /// Display name.
    pub name: String,
    forecaster: Box<dyn MultivariateForecaster>,
}

impl Method {
    /// Wraps a forecaster under a display name.
    pub fn plain(name: impl Into<String>, forecaster: Box<dyn MultivariateForecaster>) -> Self {
        Self { name: name.into(), forecaster }
    }

    /// Evaluates this method on a pre-split dataset.
    pub fn evaluate(
        &mut self,
        train: &MultivariateSeries,
        test: &MultivariateSeries,
    ) -> Result<MethodResult> {
        let horizon = test.len();
        let (forecast, seconds) = timed(|| self.forecaster.forecast(train, horizon));
        let forecast = forecast?;
        let mut per_dim_rmse = Vec::with_capacity(test.dims());
        for d in 0..test.dims() {
            per_dim_rmse.push(rmse(test.column(d)?, forecast.column(d)?)?);
        }
        Ok(MethodResult { method: self.name.clone(), per_dim_rmse, seconds, cost: None, forecast })
    }
}

/// Builds the paper's six-method roster (§IV-A3) with the given LLM
/// pipeline configuration: MultiCast (DI/VI/VC), LLMTIME, ARIMA, LSTM.
pub fn standard_roster(config: ForecastConfig) -> Vec<Method> {
    let mut methods = Vec::new();
    for mux in MuxMethod::ALL {
        methods.push(Method::plain(
            mux.display_name(),
            Box::new(MultiCastForecaster::new(mux, config)),
        ));
    }
    methods.push(Method::plain("LLMTIME", Box::new(LlmTimeForecaster::new(config))));
    methods.push(Method::plain("ARIMA", Box::new(PerDimension(ArimaForecaster::default()))));
    methods.push(Method::plain(
        "LSTM",
        Box::new(LstmForecaster::new(LstmConfig { seed: config.seed, ..LstmConfig::default() })),
    ));
    methods
}

/// Evaluates the whole roster on a dataset; returns one result per method.
pub fn evaluate_roster(
    methods: &mut [Method],
    series: &MultivariateSeries,
    test_fraction: f64,
) -> Result<Vec<MethodResult>> {
    let (train, test) = holdout_split(series, test_fraction)?;
    methods.iter_mut().map(|m| m.evaluate(&train, &test)).collect()
}

/// Marks the best (bold) and second-best (italic) value per column, the
/// way the paper's tables annotate winners. Returns formatted strings.
pub fn mark_winners(values: &[f64], formatted: &[String]) -> Vec<String> {
    assert_eq!(values.len(), formatted.len());
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap_or(std::cmp::Ordering::Equal));
    formatted
        .iter()
        .enumerate()
        .map(|(i, s)| {
            if Some(&i) == idx.first() {
                format!("**{s}**")
            } else if Some(&i) == idx.get(1) {
                format!("*{s}*")
            } else {
                s.clone()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_datasets::generators::sinusoids;

    fn small_series() -> MultivariateSeries {
        let a = sinusoids(80, &[(1.0, 10.0, 0.0)]);
        let b = sinusoids(80, &[(2.0, 10.0, 0.7)]);
        MultivariateSeries::from_columns(vec!["a".into(), "b".into()], vec![a, b]).unwrap()
    }

    fn fast_config() -> ForecastConfig {
        ForecastConfig { samples: 1, ..Default::default() }
    }

    #[test]
    fn roster_has_papers_six_methods() {
        let methods = standard_roster(fast_config());
        let names: Vec<&str> = methods.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            ["MultiCast (DI)", "MultiCast (VI)", "MultiCast (VC)", "LLMTIME", "ARIMA", "LSTM"]
        );
    }

    #[test]
    fn evaluate_produces_finite_rmse_for_llm_methods() {
        // Keep the test fast: only the three MultiCast variants + LLMTIME.
        let mut methods = standard_roster(fast_config());
        methods.truncate(4);
        let results = evaluate_roster(&mut methods, &small_series(), 0.1).unwrap();
        assert_eq!(results.len(), 4);
        for r in &results {
            assert_eq!(r.per_dim_rmse.len(), 2);
            assert!(r.per_dim_rmse.iter().all(|v| v.is_finite() && *v >= 0.0), "{r:?}");
            assert!(r.seconds >= 0.0);
            assert_eq!(r.forecast.len(), 8);
        }
    }

    #[test]
    fn winner_marking_matches_paper_convention() {
        let values = [2.0, 1.0, 3.0];
        let formatted: Vec<String> = values.iter().map(|v| format!("{v}")).collect();
        let marked = mark_winners(&values, &formatted);
        assert_eq!(marked, vec!["*2*".to_string(), "**1**".to_string(), "3".to_string()]);
    }
}
