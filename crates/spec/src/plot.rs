//! Dependency-free SVG line charts (and ASCII sparklines) for the figure
//! reproductions.
//!
//! Each of the paper's Figures 2–8 is a forecast-vs-actual trajectory
//! plot; [`LinePlot`] renders the same content as a standalone SVG file
//! with axes, tick labels and a legend. A terminal [`sparkline`] is
//! provided for quick looks in CI logs.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// One named series in a plot.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// X coordinates (timestamps).
    pub xs: Vec<f64>,
    /// Y values; must match `xs` in length.
    pub ys: Vec<f64>,
    /// Stroke color (any SVG color string).
    pub color: String,
    /// Dashed stroke (used for forecasts).
    pub dashed: bool,
}

/// A simple multi-series line chart.
#[derive(Debug, Clone)]
pub struct LinePlot {
    /// Chart title.
    pub title: String,
    /// Pixel width.
    pub width: u32,
    /// Pixel height.
    pub height: u32,
    series: Vec<Series>,
}

/// Default categorical palette (colorblind-safe-ish).
pub const PALETTE: [&str; 6] = ["#3B6FB6", "#D1495B", "#3C8D53", "#EDAE49", "#7768AE", "#5E6572"];

impl LinePlot {
    /// Creates an empty chart.
    pub fn new(title: impl Into<String>) -> Self {
        Self { title: title.into(), width: 860, height: 420, series: Vec::new() }
    }

    /// Adds a series with an automatic palette color.
    pub fn add(
        &mut self,
        label: impl Into<String>,
        xs: Vec<f64>,
        ys: Vec<f64>,
        dashed: bool,
    ) -> &mut Self {
        assert_eq!(xs.len(), ys.len(), "series coordinates must pair up");
        let color = PALETTE[self.series.len() % PALETTE.len()].to_string();
        self.series.push(Series { label: label.into(), xs, ys, color, dashed });
        self
    }

    /// Adds a y-series indexed 0.. with an x offset (convenience for
    /// "history then forecast" layouts).
    pub fn add_indexed(
        &mut self,
        label: impl Into<String>,
        offset: usize,
        ys: &[f64],
        dashed: bool,
    ) -> &mut Self {
        let xs: Vec<f64> = (0..ys.len()).map(|i| (offset + i) as f64).collect();
        self.add(label, xs, ys.to_vec(), dashed)
    }

    fn bounds(&self) -> (f64, f64, f64, f64) {
        let (mut found, mut x0, mut x1, mut y0, mut y1) = (false, 0.0f64, 1.0f64, 0.0f64, 1.0f64);
        for s in &self.series {
            for (&x, &y) in s.xs.iter().zip(&s.ys) {
                if !y.is_finite() || !x.is_finite() {
                    continue;
                }
                if !found {
                    (x0, x1, y0, y1) = (x, x, y, y);
                    found = true;
                } else {
                    x0 = x0.min(x);
                    x1 = x1.max(x);
                    y0 = y0.min(y);
                    y1 = y1.max(y);
                }
            }
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }
        (x0, x1, y0, y1)
    }

    /// Renders the chart to an SVG string.
    pub fn to_svg(&self) -> String {
        let (w, h) = (self.width as f64, self.height as f64);
        let (ml, mr, mt, mb) = (62.0, 18.0, 42.0, 44.0); // margins
        let (x0, x1, y0p, y1p) = self.bounds();
        // Pad the y range 5 % so lines don't hug the frame.
        let pad = (y1p - y0p) * 0.05;
        let (y0, y1) = (y0p - pad, y1p + pad);
        let sx = |x: f64| ml + (x - x0) / (x1 - x0) * (w - ml - mr);
        let sy = |y: f64| h - mb - (y - y0) / (y1 - y0) * (h - mt - mb);

        let mut svg = String::new();
        let _ = write!(
            svg,
            r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">"##
        );
        let _ = write!(svg, r##"<rect width="{w}" height="{h}" fill="white"/>"##);
        let _ = write!(
            svg,
            r##"<text x="{}" y="24" font-size="16" text-anchor="middle" fill="#222">{}</text>"##,
            w / 2.0,
            xml_escape(&self.title)
        );
        // Axes frame.
        let _ = write!(
            svg,
            r##"<rect x="{ml}" y="{mt}" width="{}" height="{}" fill="none" stroke="#999"/>"##,
            w - ml - mr,
            h - mt - mb
        );
        // Ticks: 5 on each axis.
        for i in 0..=4 {
            let fx = x0 + (x1 - x0) * i as f64 / 4.0;
            let fy = y0 + (y1 - y0) * i as f64 / 4.0;
            let _ = write!(
                svg,
                r##"<line x1="{0}" y1="{1}" x2="{0}" y2="{2}" stroke="#ddd"/>"##,
                sx(fx),
                mt,
                h - mb
            );
            let _ = write!(
                svg,
                r##"<text x="{}" y="{}" font-size="11" text-anchor="middle" fill="#555">{:.0}</text>"##,
                sx(fx),
                h - mb + 16.0,
                fx
            );
            let _ = write!(
                svg,
                r##"<line x1="{0}" y1="{1}" x2="{2}" y2="{1}" stroke="#ddd"/>"##,
                ml,
                sy(fy),
                w - mr
            );
            let _ = write!(
                svg,
                r##"<text x="{}" y="{}" font-size="11" text-anchor="end" fill="#555">{:.2}</text>"##,
                ml - 6.0,
                sy(fy) + 4.0,
                fy
            );
        }
        // Series.
        for s in &self.series {
            if s.xs.is_empty() {
                continue;
            }
            let mut d = String::new();
            for (i, (&x, &y)) in s.xs.iter().zip(&s.ys).enumerate() {
                let _ = write!(d, "{}{:.2},{:.2} ", if i == 0 { "M" } else { "L" }, sx(x), sy(y));
            }
            let dash = if s.dashed { r##" stroke-dasharray="6 3""## } else { "" };
            let _ = write!(
                svg,
                r##"<path d="{}" fill="none" stroke="{}" stroke-width="1.8"{dash}/>"##,
                d.trim_end(),
                s.color
            );
        }
        // Legend (top-left inside the frame).
        for (i, s) in self.series.iter().enumerate() {
            let ly = mt + 16.0 + 18.0 * i as f64;
            let dash = if s.dashed { r##" stroke-dasharray="6 3""## } else { "" };
            let _ = write!(
                svg,
                r##"<line x1="{}" y1="{ly}" x2="{}" y2="{ly}" stroke="{}" stroke-width="2"{dash}/>"##,
                ml + 8.0,
                ml + 34.0,
                s.color
            );
            let _ = write!(
                svg,
                r##"<text x="{}" y="{}" font-size="12" fill="#333">{}</text>"##,
                ml + 40.0,
                ly + 4.0,
                xml_escape(&s.label)
            );
        }
        svg.push_str("</svg>");
        svg
    }

    /// Writes the SVG to `path` (creating parent directories).
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_svg())
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Unicode sparkline of a series (`▁▂▃▄▅▆▇█`), for terminal output.
pub fn sparkline(ys: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if ys.is_empty() {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::MAX, f64::MIN);
    for &y in ys {
        if y.is_finite() {
            lo = lo.min(y);
            hi = hi.max(y);
        }
    }
    if !lo.is_finite() || (hi - lo).abs() < 1e-12 {
        return BARS[0].to_string().repeat(ys.len());
    }
    ys.iter()
        .map(|&y| {
            let f = ((y - lo) / (hi - lo) * 7.0).round().clamp(0.0, 7.0) as usize;
            BARS[f]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svg_contains_all_series_and_title() {
        let mut p = LinePlot::new("Test <plot>");
        p.add("actual", vec![0.0, 1.0, 2.0], vec![1.0, 3.0, 2.0], false);
        p.add_indexed("forecast", 2, &[2.0, 4.0], true);
        let svg = p.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("Test &lt;plot&gt;"));
        assert!(svg.contains("actual"));
        assert!(svg.contains("forecast"));
        assert!(svg.contains("stroke-dasharray"));
        // Two path elements, one per series.
        assert_eq!(svg.matches("<path").count(), 2);
    }

    #[test]
    fn save_creates_directories() {
        let dir = std::env::temp_dir().join("mc_bench_plot_test/nested");
        let file = dir.join("p.svg");
        let mut p = LinePlot::new("t");
        p.add("s", vec![0.0, 1.0], vec![0.0, 1.0], false);
        p.save(&file).unwrap();
        assert!(file.exists());
        std::fs::remove_dir_all(dir.parent().unwrap()).ok();
    }

    #[test]
    fn degenerate_ranges_do_not_panic() {
        let mut p = LinePlot::new("flat");
        p.add("c", vec![0.0, 1.0], vec![5.0, 5.0], false);
        let svg = p.to_svg();
        assert!(svg.contains("<path"));
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[2.0, 2.0]), "▁▁");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_series_rejected() {
        LinePlot::new("t").add("s", vec![0.0], vec![0.0, 1.0], false);
    }
}
