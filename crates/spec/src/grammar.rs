//! The low-level scenario-spec document grammar.
//!
//! A spec is plain text, one `key = value` pair per line, optionally
//! grouped under `[section]` headers — a TOML-like surface parsed with
//! no dependencies. Full-line comments start with `#`; values run to the
//! end of the line (so embedded commas — e.g. a
//! [`FaultProfile`](multicast_core::robust::FaultProfile) string — need
//! no quoting). Duplicate keys within the same section are rejected
//! here; key *meaning* (including unknown-key rejection) is the
//! [`spec`](crate::spec) layer's job.

use crate::spec::SpecError;

/// One `key = value` pair with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Enclosing `[section]`, or `None` for top-level pairs.
    pub section: Option<String>,
    pub key: String,
    pub value: String,
    /// 1-based source line, for error reporting.
    pub line: usize,
}

/// A parsed spec document: every pair, in source order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Document {
    pub entries: Vec<Entry>,
}

impl Document {
    /// The value of `key` in `section` (`None` = top level), if present.
    pub fn get(&self, section: Option<&str>, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.section.as_deref() == section && e.key == key)
    }

    /// Every entry belonging to `section`.
    pub fn section<'a>(&'a self, section: Option<&'a str>) -> impl Iterator<Item = &'a Entry> {
        self.entries.iter().filter(move |e| e.section.as_deref() == section)
    }

    /// Every distinct section name, in first-appearance order.
    pub fn section_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for e in &self.entries {
            if let Some(s) = e.section.as_deref() {
                if !names.contains(&s) {
                    names.push(s);
                }
            }
        }
        names
    }
}

/// Parses a spec document.
///
/// # Errors
/// [`SpecError::Syntax`] on a line that is neither blank, a comment, a
/// `[section]` header nor a `key = value` pair; [`SpecError::DuplicateKey`]
/// when the same key appears twice in one section.
pub fn parse(text: &str) -> Result<Document, SpecError> {
    let mut entries: Vec<Entry> = Vec::new();
    let mut section: Option<String> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.trim();
        if content.is_empty() || content.starts_with('#') {
            continue;
        }
        if let Some(header) = content.strip_prefix('[') {
            let Some(name) = header.strip_suffix(']') else {
                return Err(SpecError::Syntax { line, message: "unterminated [section]".into() });
            };
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(SpecError::Syntax {
                    line,
                    message: format!("invalid section name `{name}`"),
                });
            }
            section = Some(name.to_string());
            continue;
        }
        let Some((key, value)) = content.split_once('=') else {
            return Err(SpecError::Syntax {
                line,
                message: format!("`{content}` is not `key = value`"),
            });
        };
        let key = key.trim();
        let value = value.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(SpecError::Syntax { line, message: format!("invalid key `{key}`") });
        }
        if entries.iter().any(|e| e.section == section && e.key == key) {
            return Err(SpecError::DuplicateKey {
                line,
                section: section.clone(),
                key: key.to_string(),
            });
        }
        entries.push(Entry {
            section: section.clone(),
            key: key.to_string(),
            value: value.to_string(),
            line,
        });
    }
    Ok(Document { entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_top_level_and_sections() {
        let doc = parse("a = 1\n# comment\n[serve]\nworkers = 8\nqueue_cap = 6\n").unwrap();
        assert_eq!(doc.entries.len(), 3);
        assert_eq!(doc.get(None, "a").unwrap().value, "1");
        assert_eq!(doc.get(Some("serve"), "workers").unwrap().value, "8");
        assert_eq!(doc.section_names(), vec!["serve"]);
        assert_eq!(doc.section(Some("serve")).count(), 2);
    }

    #[test]
    fn values_keep_embedded_punctuation() {
        let doc = parse("faults = rate=0.3,seed=77,quota=2500\n").unwrap();
        assert_eq!(doc.get(None, "faults").unwrap().value, "rate=0.3,seed=77,quota=2500");
    }

    #[test]
    fn duplicate_keys_are_typed_errors() {
        let err = parse("a = 1\na = 2\n").unwrap_err();
        assert!(matches!(err, SpecError::DuplicateKey { line: 2, .. }), "{err}");
        // Same key in different sections is fine.
        assert!(parse("[x]\na = 1\n[y]\na = 2\n").is_ok());
        // ... but twice in the same section is not.
        assert!(parse("[x]\na = 1\na = 2\n").is_err());
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse("ok = 1\nnot a pair\n").unwrap_err();
        assert!(matches!(err, SpecError::Syntax { line: 2, .. }), "{err}");
        assert!(parse("[unterminated\n").is_err());
        assert!(parse("[]\n").is_err());
        assert!(parse("bad key! = 1\n").is_err());
    }
}
