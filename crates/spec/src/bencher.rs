//! Canonical `BENCH_<scenario>.json` emission and the regression gate.
//!
//! A [`BenchReport`] is the machine-readable sibling of a scenario's
//! markdown artifact: a flat, ordered list of named numbers. Every
//! number in it is **schedule-independent** — accuracy metrics, token
//! costs, defect/shed/breaker counters, and p50/p99 latencies in
//! generated tokens on the logical clock. Wall-clock never enters, so
//! the rendered file is byte-identical across worker counts and
//! repeated runs (asserted in `tests/parity.rs`).
//!
//! [`gate`] implements the `cargo xtask bench-gate` comparison: a
//! current report regresses against a committed baseline when a
//! latency/accuracy metric (key starting with `p99` or containing
//! `rmse`) rises beyond tolerance, a throughput or cache-efficiency
//! metric (key starting with `throughput` or `hit_rate`) falls beyond
//! tolerance, or a baseline metric disappears.

use std::io;
use std::path::{Path, PathBuf};

use crate::json::{self, Json};
use crate::spec::ScenarioKind;

/// Schema version stamped into every file; bump on breaking layout
/// changes so the gate can refuse to compare across schemas.
pub const BENCH_SCHEMA: u64 = 1;

/// One scenario's machine-readable result set.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Kind token (`serve_chaos`, `backtest`, ...).
    pub scenario: String,
    /// Scenario name — the `BENCH_<name>.json` stem.
    pub name: String,
    /// Named numbers, in insertion (schema) order.
    pub metrics: Vec<(String, f64)>,
}

impl BenchReport {
    /// An empty report for a scenario.
    pub fn new(kind: ScenarioKind, name: impl Into<String>) -> Self {
        Self { scenario: kind.token(), name: name.into(), metrics: Vec::new() }
    }

    /// Appends one named metric.
    pub fn push(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.metrics.push((key.into(), value));
        self
    }

    /// A metric by key, if present.
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// The file name this report renders to.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    /// The canonical JSON value.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::from(BENCH_SCHEMA)),
            ("scenario".into(), Json::from(self.scenario.as_str())),
            ("name".into(), Json::from(self.name.as_str())),
            (
                "metrics".into(),
                Json::Obj(self.metrics.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect()),
            ),
        ])
    }

    /// The canonical textual form (what [`BenchReport::write`] writes).
    pub fn to_pretty(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Parses a rendered report back.
    ///
    /// # Errors
    /// On malformed JSON, a wrong schema version, or missing fields.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let value = json::parse(text)?;
        let schema = value
            .get("schema")
            .and_then(Json::as_f64)
            .ok_or_else(|| "missing `schema`".to_string())?;
        if schema != BENCH_SCHEMA as f64 {
            return Err(format!("unsupported bench schema {schema} (expected {BENCH_SCHEMA})"));
        }
        let field = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing `{key}`"))
        };
        let metrics = match value.get("metrics") {
            Some(Json::Obj(members)) => members
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("metric `{k}` is not a number"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing `metrics` object".into()),
        };
        Ok(BenchReport { scenario: field("scenario")?, name: field("name")?, metrics })
    }

    /// Writes `BENCH_<name>.json` under `dir` (created on demand).
    ///
    /// # Errors
    /// On filesystem errors.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_pretty())?;
        Ok(path)
    }
}

/// How the gate classifies one metric key.
fn direction(key: &str) -> Option<Direction> {
    if key.starts_with("p99") || key.starts_with("p50") || key.contains("rmse") {
        Some(Direction::LowerIsBetter)
    } else if key.starts_with("throughput") || key.starts_with("hit_rate") {
        Some(Direction::HigherIsBetter)
    } else {
        None
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    LowerIsBetter,
    HigherIsBetter,
}

/// Compares `current` against `baseline` and returns one message per
/// regression (empty = gate passes). `tolerance` is fractional: `0.10`
/// allows 10 % drift. Only gated keys (see [module docs](self)) are
/// compared; everything else is informational.
pub fn gate(baseline: &BenchReport, current: &BenchReport, tolerance: f64) -> Vec<String> {
    let mut regressions = Vec::new();
    if baseline.scenario != current.scenario {
        regressions.push(format!(
            "scenario mismatch: baseline `{}` vs current `{}`",
            baseline.scenario, current.scenario
        ));
        return regressions;
    }
    for (key, base) in &baseline.metrics {
        let Some(dir) = direction(key) else { continue };
        let Some(cur) = current.metric(key) else {
            regressions.push(format!("{}: gated metric `{key}` disappeared", baseline.name));
            continue;
        };
        let bad = match dir {
            Direction::LowerIsBetter => cur > base * (1.0 + tolerance),
            Direction::HigherIsBetter => cur < base * (1.0 - tolerance),
        };
        if bad {
            let verb = match dir {
                Direction::LowerIsBetter => "rose",
                Direction::HigherIsBetter => "fell",
            };
            regressions.push(format!(
                "{}: `{key}` {verb} beyond {:.0}% tolerance: baseline {base} → current {cur}",
                baseline.name,
                tolerance * 100.0
            ));
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new(ScenarioKind::ServeChaos, "serve_chaos");
        r.push("completed", 19.0)
            .push("p99_spend_tokens", 432.0)
            .push("throughput_tokens_per_event", 12.5)
            .push("hit_rate", 0.66)
            .push("rmse_mean", 2.78);
        r
    }

    #[test]
    fn render_parse_round_trip_is_canonical() {
        let r = sample();
        let text = r.to_pretty();
        let back = BenchReport::parse(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_pretty(), text);
        assert_eq!(r.file_name(), "BENCH_serve_chaos.json");
        assert_eq!(r.metric("completed"), Some(19.0));
    }

    #[test]
    fn parse_rejects_wrong_schema_and_shapes() {
        assert!(BenchReport::parse("{}").is_err());
        let wrong = sample().to_pretty().replacen("\"schema\": 1", "\"schema\": 99", 1);
        assert!(BenchReport::parse(&wrong).unwrap_err().contains("schema"));
        assert!(BenchReport::parse("{\"schema\": 1, \"scenario\": \"x\"}").is_err());
    }

    #[test]
    fn gate_passes_identical_and_within_tolerance() {
        let base = sample();
        assert!(gate(&base, &base, 0.10).is_empty());
        let mut near = sample();
        near.metrics = vec![
            ("p99_spend_tokens".into(), 432.0 * 1.05),
            ("throughput_tokens_per_event".into(), 12.5 * 0.95),
            ("hit_rate".into(), 0.66 * 0.95),
            ("rmse_mean".into(), 2.78),
        ];
        assert!(gate(&base, &near, 0.10).is_empty());
    }

    #[test]
    fn gate_catches_each_regression_direction() {
        let base = sample();
        let mut slow = sample();
        slow.metrics = vec![
            ("p99_spend_tokens".into(), 432.0 * 1.2),
            ("throughput_tokens_per_event".into(), 12.5 * 0.8),
            ("hit_rate".into(), 0.66 * 0.8),
            ("rmse_mean".into(), 2.78 * 1.2),
        ];
        let msgs = gate(&base, &slow, 0.10);
        assert_eq!(msgs.len(), 4, "{msgs:?}");
        // Non-gated counters may drift freely.
        let mut drift = sample();
        drift.metrics[0].1 = 5.0; // completed
        assert!(gate(&base, &drift, 0.10).is_empty());
        // A vanished gated metric is a regression.
        let mut gone = sample();
        gone.metrics.retain(|(k, _)| k != "p99_spend_tokens");
        assert_eq!(gate(&base, &gone, 0.10).len(), 1);
        // Scenario mismatch refuses to compare.
        let mut other = sample();
        other.scenario = "backtest".into();
        assert_eq!(gate(&base, &other, 0.10).len(), 1);
    }
}
