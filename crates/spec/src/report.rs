//! Markdown table emission and results-directory management.
//!
//! Every experiment binary prints its table to stdout *and* writes it under
//! `results/`, so `cargo run -p mc-bench --bin repro` leaves a complete,
//! diffable record of a run.

use std::fs;
use std::path::{Path, PathBuf};

/// A simple markdown table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as markdown with aligned columns.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> =
                cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}")).collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints to stdout and writes `results/<file>`.
    pub fn emit(&self, results_dir: impl AsRef<Path>, file: &str) -> std::io::Result<PathBuf> {
        let md = self.to_markdown();
        println!("{md}");
        let dir = results_dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(file);
        fs::write(&path, &md)?;
        Ok(path)
    }
}

/// Formats an f64 the way the paper's tables do (3 decimals, trailing
/// zeros trimmed to match e.g. `2.71`).
pub fn fmt_metric(v: f64) -> String {
    let s = format!("{v:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("Demo", &["Method", "RMSE"]);
        t.row(vec!["ARIMA".into(), "2.63".into()]);
        t.row(vec!["LSTM".into(), "3.89".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("## Demo"));
        assert_eq!(md.matches('\n').count(), 6); // title, blank, header, sep, 2 rows
        assert!(md.contains("| ARIMA  | 2.63 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new("t", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn metric_formatting_matches_paper_style() {
        assert_eq!(fmt_metric(2.71), "2.71");
        assert_eq!(fmt_metric(0.703), "0.703");
        assert_eq!(fmt_metric(13.752), "13.752");
        assert_eq!(fmt_metric(3.0), "3");
        assert_eq!(fmt_metric(0.0), "0");
    }

    #[test]
    fn emit_writes_file() {
        let dir = std::env::temp_dir().join("mc_bench_report_test");
        let mut t = Table::new("T", &["x"]);
        t.row(vec!["1".into()]);
        let path = t.emit(&dir, "t.md").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("## T"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
