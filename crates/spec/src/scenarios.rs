//! Scenario implementations that drive forecasters directly (no engine
//! or serve-scheduler seams — those live in [`runner`](crate::runner),
//! the one module the `no-adhoc-bench` lint sanctions for them).
//!
//! Each function here is a faithful port of one pre-refactor bench bin,
//! taking a [`Lowered`] spec instead of hard-coded constants and
//! returning typed errors instead of `expect`-crashing. Output parity
//! with the old bins is asserted in `tests/parity.rs`.

use mc_baselines::{
    ArimaForecaster, Holt, HoltWinters, KalmanForecaster, Ses, Theta, VarForecaster,
};
use mc_datasets::PaperDataset;
use mc_lm::bpe::BpeTokenizer;
use mc_lm::generate::{generate, GenerateOptions};
use mc_lm::model::{observe_all, LanguageModel};
use mc_lm::ngram::NGramLm;
use mc_lm::sampler::{Sampler, SamplerConfig};
use mc_lm::tokenizer::{CharTokenizer, Tokenizer};
use mc_lm::vocab::Vocab;
use mc_obs::MetricsRegistry;
use mc_tasks::imputation::linear_interpolate;
use mc_tasks::{AnomalyDetector, ChangePointDetector, Imputer};
use mc_tslib::backtest::{backtest, BacktestConfig};
use mc_tslib::forecast::{MultivariateForecaster, PerDimension};
use mc_tslib::metrics::rmse;
use mc_tslib::split::holdout_split;
use multicast_core::mux::{Multiplexer, ValueInterleave};
use multicast_core::pipeline::median_aggregate;
use multicast_core::robust::DefectClass;
use multicast_core::scaling::FixedDigitScaler;
use multicast_core::{ForecastConfig, LlmTimeForecaster, MultiCastForecaster, MuxMethod};

use crate::bencher::BenchReport;
use crate::builder::Lowered;
use crate::report::{fmt_metric, Table};
use crate::runner::{RunError, RunOptions, RunSummary};
use crate::TEST_FRACTION;

/// Rolling-origin robustness study (`results/backtest.md`): every method
/// refit at 4 cut points per dataset, mean ± std RMSE reported.
pub(crate) fn backtest_study(l: &Lowered, opts: &RunOptions) -> Result<RunSummary, RunError> {
    let samples = l.config.samples;
    let mut t = Table::new(
        "Backtest — rolling-origin mean ± std RMSE (averaged over dimensions, 4 folds)",
        &["Method", "Gas Rate", "Electricity", "Weather"],
    );
    let mut bench = BenchReport::new(l.kind, &l.name);
    type Make = Box<dyn Fn() -> Box<dyn MultivariateForecaster>>;
    let entries: Vec<(&str, Make)> = vec![
        (
            "MultiCast (VI)",
            Box::new(move || {
                Box::new(MultiCastForecaster::new(
                    MuxMethod::ValueInterleave,
                    ForecastConfig { samples, ..Default::default() },
                ))
            }),
        ),
        (
            "LLMTIME",
            Box::new(move || {
                Box::new(LlmTimeForecaster::new(ForecastConfig { samples, ..Default::default() }))
            }),
        ),
        ("ARIMA", Box::new(|| Box::new(PerDimension(ArimaForecaster::default())))),
        ("VAR", Box::new(|| Box::new(VarForecaster::default()))),
        ("Theta", Box::new(|| Box::new(PerDimension(Theta)))),
        ("Kalman (LLT)", Box::new(|| Box::new(PerDimension(KalmanForecaster)))),
        ("SES", Box::new(|| Box::new(PerDimension(Ses { alpha: None })))),
    ];
    for (name, make) in &entries {
        let mut row = vec![name.to_string()];
        for ds in PaperDataset::ALL {
            let series = ds.load();
            // 4 folds: start at 60 % of the series, horizon 10 % of it.
            let initial = (series.len() as f64 * 0.6) as usize;
            let horizon = (series.len() as f64 * 0.1) as usize;
            let step = (series.len() - initial - horizon) / 3;
            let config = BacktestConfig { initial_train: initial, horizon, step };
            let mut f = make();
            let cell = match backtest(f.as_mut(), &series, config) {
                Ok(report) => {
                    let mean = report.grand_mean();
                    let spread = report.std_rmse.iter().sum::<f64>() / report.std_rmse.len() as f64;
                    bench.push(format!("rmse_mean/{name}/{ds}"), mean);
                    bench.push(format!("rmse_std/{name}/{ds}"), spread);
                    format!("{} ± {}", fmt_metric(mean), fmt_metric(spread))
                }
                Err(e) => format!("err: {e}"),
            };
            row.push(cell);
        }
        t.row(row);
    }
    let path = t.emit(&opts.results_dir, "backtest.md")?;
    RunSummary::of(l, vec![path], Some(bench), opts)
}

/// RMSE degradation vs injected-defect rate
/// (`results/fault_injection.md`): one forecaster per rate, deterministic
/// corruption plus one guaranteed panicking sample.
pub(crate) fn fault_injection(l: &Lowered, opts: &RunOptions) -> Result<RunSummary, RunError> {
    let profile =
        l.faults.ok_or_else(|| RunError::invariant("fault_injection lowers a default profile"))?;
    let series = l.dataset.load();
    let (train, test) = holdout_split(&series, TEST_FRACTION)?;
    let mut t = Table::new(
        format!(
            "Fault injection — {} on {}, deterministic corruption + 1 panicking sample",
            l.mux.display_name(),
            l.dataset
        ),
        &["Defect rate", "RMSE (dim mean)", "Valid/Req", "Retries", "Repairs", "Panics", "Outcome"],
    );
    let mut bench = BenchReport::new(l.kind, &l.name);
    let registry = MetricsRegistry::new();
    for rate_pct in [0u32, 20, 40, 60, 80, 100] {
        let rate = rate_pct as f64 / 100.0;
        let source = profile.with_rate(rate).source();
        let config = ForecastConfig { samples: l.config.samples, ..Default::default() };
        let mut f = MultiCastForecaster::new(l.mux, config).with_source(source);
        let row = match f.forecast(&train, test.len()) {
            Ok(fc) => {
                let mut acc = 0.0;
                for d in 0..train.dims() {
                    acc += rmse(test.column(d)?, fc.column(d)?)?;
                }
                let mean_rmse = acc / train.dims() as f64;
                let report = f
                    .last_report
                    .as_ref()
                    .ok_or_else(|| RunError::invariant("forecast records a report"))?;
                report.record_into(&registry);
                bench.push(format!("rmse/rate_{rate_pct}"), mean_rmse);
                bench.push(format!("valid_samples/rate_{rate_pct}"), report.valid_samples as f64);
                bench.push(format!("retries/rate_{rate_pct}"), report.retries_used as f64);
                bench.push(format!("repairs/rate_{rate_pct}"), report.repairs_applied as f64);
                bench.push(
                    format!("panics/rate_{rate_pct}"),
                    report.defect_count(DefectClass::Panicked) as f64,
                );
                bench.push(
                    format!("fallback/rate_{rate_pct}"),
                    if report.degraded() { 1.0 } else { 0.0 },
                );
                vec![
                    format!("{rate_pct}%"),
                    fmt_metric(mean_rmse),
                    format!("{}/{}", report.valid_samples, report.requested_samples),
                    report.retries_used.to_string(),
                    report.repairs_applied.to_string(),
                    report.defect_count(DefectClass::Panicked).to_string(),
                    if report.degraded() { "fallback".into() } else { "sampled".into() },
                ]
            }
            Err(e) => vec![
                format!("{rate_pct}%"),
                format!("err: {e}"),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ],
        };
        t.row(row);
    }
    let path = t.emit(&opts.results_dir, "fault_injection.md")?;
    let notes = if opts.print_metrics { vec![registry.snapshot().to_markdown()] } else { vec![] };
    RunSummary::of(l, vec![path], Some(bench), opts).map(|mut s| {
        s.notes = notes;
        s
    })
}

/// Ablations A/B/C/E (`results/ablation_*.md`): backend × mux grid,
/// temperature sweep, digit-budget sweep, extended classical grid.
pub(crate) fn ablation(l: &Lowered, opts: &RunOptions) -> Result<RunSummary, RunError> {
    use mc_lm::presets::ModelPreset;
    let samples = l.config.samples;
    let series = PaperDataset::GasRate.load();
    let (train, test) = holdout_split(&series, TEST_FRACTION)?;
    let mut artifacts = Vec::new();

    let mean_rmse_2d = |fc: &mc_tslib::MultivariateSeries| -> Result<f64, RunError> {
        let mut acc = 0.0;
        for d in 0..2 {
            acc += rmse(test.column(d)?, fc.column(d)?)?;
        }
        Ok(acc / 2.0)
    };

    // 1. Backend × mux grid.
    let mut grid = Table::new(
        "Ablation A — backend preset x multiplexing (Gas Rate, mean RMSE over dims)",
        &["Backend", "DI", "VI", "VC"],
    );
    for preset in ModelPreset::ALL {
        let mut row = vec![preset.display_name().to_string()];
        for mux in MuxMethod::ALL {
            let cfg = ForecastConfig { samples, preset, ..Default::default() };
            let mut f = MultiCastForecaster::new(mux, cfg);
            let fc = f.forecast(&train, test.len())?;
            row.push(fmt_metric(mean_rmse_2d(&fc)?));
        }
        grid.row(row);
    }
    artifacts.push(grid.emit(&opts.results_dir, "ablation_backend_mux.md")?);

    // 2. Temperature sweep (VI, Large).
    let mut temp = Table::new(
        "Ablation B — sampler temperature (Gas Rate, MultiCast VI, mean RMSE)",
        &["Temperature", "RMSE"],
    );
    for t in [0.2, 0.5, 0.7, 1.0, 1.5] {
        let cfg = ForecastConfig {
            samples,
            sampler: SamplerConfig { temperature: t, ..SamplerConfig::default() },
            ..Default::default()
        };
        let mut f = MultiCastForecaster::new(MuxMethod::ValueInterleave, cfg);
        let fc = f.forecast(&train, test.len())?;
        temp.row(vec![format!("{t}"), fmt_metric(mean_rmse_2d(&fc)?)]);
    }
    artifacts.push(temp.emit(&opts.results_dir, "ablation_temperature.md")?);

    // 3. Digit budget sweep (VI, Large).
    let mut digits = Table::new(
        "Ablation C — digits per value b (Gas Rate, MultiCast VI, mean RMSE / prompt tokens)",
        &["b", "RMSE", "Tokens"],
    );
    for b in [2u32, 3, 4] {
        let cfg = ForecastConfig { samples, digits: b, ..Default::default() };
        let mut f = MultiCastForecaster::new(MuxMethod::ValueInterleave, cfg);
        let fc = f.forecast(&train, test.len())?;
        let tokens = f.last_cost.map_or(0, |c| c.total_tokens());
        digits.row(vec![b.to_string(), fmt_metric(mean_rmse_2d(&fc)?), tokens.to_string()]);
    }
    artifacts.push(digits.emit(&opts.results_dir, "ablation_digits.md")?);

    // 4. Extended classical grid: methods beyond the paper's roster, on
    // every dataset (mean RMSE across dimensions).
    let mut grid = Table::new(
        "Ablation E — extended classical comparison (mean RMSE across dimensions)",
        &["Method", "Gas Rate", "Electricity", "Weather"],
    );
    type Entry = (&'static str, Box<dyn Fn() -> Box<dyn MultivariateForecaster>>);
    let sample_count = samples;
    let entries: Vec<Entry> = vec![
        (
            "MultiCast (VI)",
            Box::new(move || {
                Box::new(MultiCastForecaster::new(
                    MuxMethod::ValueInterleave,
                    ForecastConfig { samples: sample_count, ..Default::default() },
                ))
            }),
        ),
        ("VAR (AIC order)", Box::new(|| Box::new(VarForecaster::default()))),
        ("SES", Box::new(|| Box::new(PerDimension(Ses { alpha: None })))),
        ("Holt", Box::new(|| Box::new(PerDimension(Holt { alpha: None, beta: None })))),
        ("Holt-Winters (m=12)", Box::new(|| Box::new(PerDimension(HoltWinters::with_period(12))))),
    ];
    for (name, make) in &entries {
        let mut row = vec![name.to_string()];
        for ds in PaperDataset::ALL {
            let series = ds.load();
            let (train, test) = holdout_split(&series, TEST_FRACTION)?;
            let cell = match make().forecast(&train, test.len()) {
                Ok(fc) => {
                    let mut acc = 0.0;
                    for d in 0..series.dims() {
                        acc += rmse(test.column(d)?, fc.column(d)?)?;
                    }
                    fmt_metric(acc / series.dims() as f64)
                }
                Err(e) => format!("err: {e}"),
            };
            row.push(cell);
        }
        grid.row(row);
    }
    artifacts.push(grid.emit(&opts.results_dir, "ablation_extended.md")?);
    RunSummary::of(l, artifacts, None, opts)
}

/// Tokenization ablation (`results/ablation_tokenization.md`):
/// digit-level (char) vs subword (BPE) serialization, everything else
/// identical.
pub(crate) fn tokenization(l: &Lowered, opts: &RunOptions) -> Result<RunSummary, RunError> {
    let digits = l.config.digits;
    let samples = l.config.samples;
    let series = l.dataset.load();
    let (train, test) = holdout_split(&series, TEST_FRACTION)?;
    let horizon = test.len();
    let dims = train.dims();

    let scaler = FixedDigitScaler::fit(train.columns(), digits, 0.15)?;
    let mut codes: Vec<Vec<u64>> = Vec::with_capacity(dims);
    for d in 0..dims {
        codes.push(scaler.scale_column(d, train.column(d)?)?);
    }
    let mux = ValueInterleave;
    let prompt_text = mux.mux(&codes, digits);

    let mut t = Table::new(
        "Ablation D — digit-level vs BPE tokenization (Gas Rate, MultiCast VI)",
        &["Tokenizer", "GasRate RMSE", "CO2 RMSE", "Prompt tokens", "Chunking variance"],
    );
    let mut bench = BenchReport::new(l.kind, &l.name);

    // --- Char-level (the paper's scheme). ---
    let char_tok = CharTokenizer::numeric();
    let (char_rmse, char_tokens) = run_variant(
        &char_tok,
        Vocab::numeric().len(),
        &prompt_text,
        &scaler,
        horizon,
        dims,
        &test,
        digits,
        samples,
    )?;
    let char_var = chunking_variance(&char_tok, &codes, digits)?;
    t.row(vec![
        "char (one token per digit)".into(),
        fmt_metric(char_rmse[0]),
        fmt_metric(char_rmse[1]),
        char_tokens.to_string(),
        fmt_metric(char_var),
    ]);
    bench.push("rmse/char/dim0", char_rmse[0]);
    bench.push("rmse/char/dim1", char_rmse[1]);
    bench.push("tokens/char", char_tokens as f64);
    bench.push("chunking_variance/char", char_var);

    // --- BPE trained on the prompt itself. ---
    let bpe = BpeTokenizer::train(Vocab::numeric(), &prompt_text, 48);
    let (bpe_rmse, bpe_tokens) = run_variant(
        &bpe,
        bpe.vocab_size(),
        &prompt_text,
        &scaler,
        horizon,
        dims,
        &test,
        digits,
        samples,
    )?;
    let bpe_var = chunking_variance(&bpe, &codes, digits)?;
    t.row(vec![
        format!("BPE ({} merges)", bpe.merge_count()),
        fmt_metric(bpe_rmse[0]),
        fmt_metric(bpe_rmse[1]),
        bpe_tokens.to_string(),
        fmt_metric(bpe_var),
    ]);
    bench.push("rmse/bpe/dim0", bpe_rmse[0]);
    bench.push("rmse/bpe/dim1", bpe_rmse[1]);
    bench.push("tokens/bpe", bpe_tokens as f64);
    bench.push("chunking_variance/bpe", bpe_var);

    let path = t.emit(&opts.results_dir, "ablation_tokenization.md")?;
    RunSummary::of(l, vec![path], Some(bench), opts)
}

/// Runs the VI forecast pipeline with an arbitrary tokenizer; the decoded
/// *text* is demultiplexed, so the pipeline is tokenizer-agnostic.
#[allow(clippy::too_many_arguments)]
fn run_variant(
    tokenizer: &dyn Tokenizer,
    vocab_size: usize,
    prompt_text: &str,
    scaler: &FixedDigitScaler,
    horizon: usize,
    dims: usize,
    test: &mc_tslib::MultivariateSeries,
    digits: u32,
    samples: usize,
) -> Result<(Vec<f64>, u64), RunError> {
    let mux = ValueInterleave;
    let prompt = tokenizer.encode(prompt_text)?;
    let mut decoded_samples = Vec::with_capacity(samples);
    let mut total_tokens = 0u64;
    for s in 0..samples {
        let mut model = NGramLm::new(vocab_size, 10, 0.25, "ablation");
        observe_all(&mut model, &prompt);
        let mut sampler = Sampler::new(SamplerConfig {
            temperature: 0.7,
            top_k: None,
            top_p: Some(0.95),
            seed: s as u64,
            epsilon: 0.0,
        });
        // Token-count budget: BPE tokens spell multiple chars, so stop by
        // budget and let the lenient demux take the first `horizon` groups.
        let options = GenerateOptions {
            max_tokens: horizon * (dims * digits as usize + 1) * 2,
            stop_token: None,
            stop_count: 0,
        };
        let out = generate(&mut model, &mut sampler, |_| true, &options);
        let text = tokenizer.decode(&out)?;
        let code_cols = mux.demux(&text, dims, digits, horizon);
        let mut cols: Vec<Vec<f64>> = Vec::with_capacity(dims);
        for (d, col) in code_cols.iter().enumerate() {
            cols.push(scaler.descale_column(d, col)?);
        }
        decoded_samples.push(cols);
        total_tokens += model.cost().total_tokens();
    }
    let median = median_aggregate(&decoded_samples)?;
    let mut rmses = Vec::with_capacity(dims);
    for (d, forecast) in median.iter().enumerate().take(dims) {
        rmses.push(rmse(test.column(d)?, forecast)?);
    }
    Ok((rmses, total_tokens))
}

/// Variance of tokens-per-timestamp across the serialized history: zero
/// for the char scheme (fixed width), positive when BPE chunks values
/// inconsistently.
fn chunking_variance(
    tokenizer: &dyn Tokenizer,
    codes: &[Vec<u64>],
    digits: u32,
) -> Result<f64, RunError> {
    let mux = ValueInterleave;
    let n = codes[0].len();
    let mut lengths = Vec::with_capacity(n);
    for t in 0..n {
        let one: Vec<Vec<u64>> = codes.iter().map(|c| vec![c[t]]).collect();
        let text = mux.mux(&one, digits);
        lengths.push(tokenizer.encode(&text)?.len() as f64);
    }
    let mean = lengths.iter().sum::<f64>() / n as f64;
    Ok(lengths.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / n as f64)
}

/// Quantitative evaluation of the future-work tasks
/// (`results/tasks_eval_*.md`): anomaly detection, imputation and
/// change-point localization on seeded synthetic workloads.
pub(crate) fn tasks_eval(l: &Lowered, opts: &RunOptions) -> Result<RunSummary, RunError> {
    let artifacts = vec![anomaly_eval(opts)?, imputation_eval(opts)?, changepoint_eval(opts)?];
    RunSummary::of(l, artifacts, None, opts)
}

fn anomaly_eval(opts: &RunOptions) -> Result<std::path::PathBuf, RunError> {
    let series = PaperDataset::GasRate.load();
    let base = series.column(1)?.to_vec();
    let amplitude = {
        let (mn, mx) = base.iter().fold((f64::MAX, f64::MIN), |(a, b), &v| (a.min(v), b.max(v)));
        mx - mn
    };
    let mut t = Table::new(
        "Tasks A — zero-shot anomaly detection (Gas Rate CO2, injected spikes)",
        &["Spike size (x range)", "Injected", "Hits", "Precision", "Recall"],
    );
    let injections = [60usize, 120, 200, 260];
    for &scale in &[0.5, 0.8, 1.2] {
        let mut xs = base.clone();
        for (k, &at) in injections.iter().enumerate() {
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            xs[at] += sign * scale * amplitude;
        }
        let report = AnomalyDetector::default().detect(&xs)?;
        let hit = |at: usize| report.anomalies.iter().any(|&i| (i as i64 - at as i64).abs() <= 1);
        let hits = injections.iter().filter(|&&at| hit(at)).count();
        // A flagged index is a true positive if it is within ±1 of any
        // injection (the point after a spike is legitimately surprising).
        let tp = report
            .anomalies
            .iter()
            .filter(|&&i| injections.iter().any(|&at| (i as i64 - at as i64).abs() <= 1))
            .count();
        let precision = if report.anomalies.is_empty() {
            1.0
        } else {
            tp as f64 / report.anomalies.len() as f64
        };
        let recall = hits as f64 / injections.len() as f64;
        t.row(vec![
            format!("{scale}"),
            injections.len().to_string(),
            hits.to_string(),
            fmt_metric(precision),
            fmt_metric(recall),
        ]);
    }
    Ok(t.emit(&opts.results_dir, "tasks_eval_anomaly.md")?)
}

fn imputation_eval(opts: &RunOptions) -> Result<std::path::PathBuf, RunError> {
    let series = PaperDataset::GasRate.load();
    let truth = series.column(1)?.to_vec();
    let mut t = Table::new(
        "Tasks B — zero-shot imputation vs linear interpolation (Gas Rate CO2)",
        &["Gap length", "Zero-shot RMSE", "Linear RMSE"],
    );
    for &gap in &[4usize, 8, 16, 24] {
        let start = 180;
        let mut masked = truth.clone();
        for v in &mut masked[start..start + gap] {
            *v = f64::NAN;
        }
        let imputed = Imputer::default().impute(&masked)?;
        let linear = linear_interpolate(&masked);
        let score = |candidate: &[f64]| -> f64 {
            let acc: f64 = (start..start + gap).map(|i| (candidate[i] - truth[i]).powi(2)).sum();
            (acc / gap as f64).sqrt()
        };
        t.row(vec![gap.to_string(), fmt_metric(score(&imputed)), fmt_metric(score(&linear))]);
    }
    Ok(t.emit(&opts.results_dir, "tasks_eval_imputation.md")?)
}

fn changepoint_eval(opts: &RunOptions) -> Result<std::path::PathBuf, RunError> {
    let mut t = Table::new(
        "Tasks C — zero-shot change-point localization (synthetic regime shifts)",
        &["True change at", "Detected", "Localization error"],
    );
    for &at in &[80usize, 120, 160] {
        let n = at + 80;
        let xs: Vec<f64> = (0..n)
            .map(|i| {
                if i < at {
                    50.0 + 10.0 * (i as f64 * std::f64::consts::PI / 8.0).sin()
                } else {
                    25.0 + 4.0 * (i as f64 * std::f64::consts::PI / 3.0).sin()
                }
            })
            .collect();
        let cps = ChangePointDetector::default().detect(&xs)?;
        let (detected, err) = cps
            .iter()
            .map(|&c| (c, (c as i64 - at as i64).unsigned_abs() as usize))
            .min_by_key(|&(_, e)| e)
            .map_or_else(|| ("—".into(), "missed".into()), |(c, e)| (c.to_string(), e.to_string()));
        t.row(vec![at.to_string(), detected, err]);
    }
    Ok(t.emit(&opts.results_dir, "tasks_eval_changepoint.md")?)
}
