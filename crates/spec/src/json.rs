//! A minimal, dependency-free JSON value: canonical writer + strict
//! parser.
//!
//! `BENCH_*.json` files must be byte-identical across worker counts and
//! repeated runs, so the writer is canonical by construction: object
//! members keep insertion order (the [`bencher`](crate::bencher) inserts
//! them in schema order), arrays keep element order, floats print via
//! Rust's shortest-round-trip `Display`, and indentation is fixed
//! (2 spaces, trailing newline). The parser accepts standard JSON and is
//! used by `cargo xtask bench-gate` to read baselines back.

use std::fmt;

/// A JSON value. Objects preserve member insertion order — canonical
/// output depends on it.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Integers up to 2^53 round-trip exactly; the bench
    /// counters stay far below that.
    Num(f64),
    /// A string (the writer escapes `"` `\` and control characters).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Canonical pretty form: 2-space indent, ordered members, trailing
    /// newline. Deterministic for a given value.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| out.push_str(&"  ".repeat(d));
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.write(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in members.iter().enumerate() {
                    pad(out, depth + 1);
                    write_str(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                pad(out, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pretty())
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

/// Numbers print integers without a fractional part and everything else
/// via `Display` — Rust's shortest representation that round-trips, so
/// the output is deterministic without any formatting heuristics.
fn write_num(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if v.fract() == 0.0 && v.abs() < 9e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (standard grammar; `\uXXXX` escapes limited to
/// the BMP, which covers everything the writer emits).
///
/// # Errors
/// A message naming the byte offset of the first violation.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut s = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        s.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one whole UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                s.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_is_canonical_and_parser_inverts_it() {
        let value = Json::Obj(vec![
            ("schema".into(), Json::from(1u64)),
            ("name".into(), Json::from("serve_chaos")),
            ("nested".into(), Json::Obj(vec![("p99".into(), Json::from(432u64))])),
            ("list".into(), Json::Arr(vec![Json::from(1u64), Json::from(2.5f64)])),
            ("none".into(), Json::Null),
            ("flag".into(), Json::Bool(true)),
        ]);
        let text = value.to_pretty();
        assert_eq!(parse(&text).unwrap(), value);
        // Canonical: re-rendering the parse is byte-identical.
        assert_eq!(parse(&text).unwrap().to_pretty(), text);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn numbers_render_deterministically() {
        assert_eq!(Json::from(3.0f64).to_pretty(), "3\n");
        assert_eq!(Json::from(0.1f64).to_pretty(), "0.1\n");
        assert_eq!(Json::from(12345u64).to_pretty(), "12345\n");
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = Json::from("a\"b\\c\nd\te\u{1}");
        let text = s.to_pretty();
        assert_eq!(parse(&text).unwrap(), s);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("123 junk").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("nil").is_err());
    }

    #[test]
    fn get_and_accessors() {
        let v = parse("{\"a\": 1, \"b\": \"x\"}").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert!(v.get("c").is_none());
    }
}
