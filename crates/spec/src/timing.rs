//! Wall-clock measurement helpers.
//!
//! The paper reports execution times next to RMSE in Tables VII–IX; the
//! harness measures real elapsed time around each forecast call. Absolute
//! values are hardware-bound (see `DESIGN.md` §2) — the *ratios* are what
//! the reproduction checks.

use std::time::Instant;

/// Runs `f`, returning its result and the elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Formats seconds the way the paper prints them (`"1036 sec"` style for
/// large values, millisecond precision for sub-second values).
pub fn format_seconds(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0} sec")
    } else if s >= 1.0 {
        format!("{s:.2} sec")
    } else {
        format!("{:.1} ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_result_and_positive_duration() {
        let (v, secs) = timed(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert_eq!(v, (0..10_000u64).map(|i| i.wrapping_mul(i)).fold(0u64, u64::wrapping_add));
        assert!(secs >= 0.0);
    }

    #[test]
    fn seconds_formatting_bands() {
        assert_eq!(format_seconds(1036.4), "1036 sec");
        assert_eq!(format_seconds(52.25), "52.25 sec");
        assert_eq!(format_seconds(0.0345), "34.5 ms");
    }
}
