//! Shared argument parsing for the bench bins.
//!
//! Every bin used to hand-roll the same `position(..).map(get(i + 1))`
//! dance with ad-hoc `expect` panics; this module centralizes it behind
//! typed errors. A [`Cli`] tracks which arguments were consumed so a bin
//! can reject typos (`finish`) instead of silently ignoring them.

use std::fmt;
use std::str::FromStr;

/// How argument parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// A `--flag` that takes a value appeared last, with nothing after it.
    MissingValue {
        /// The flag.
        flag: String,
    },
    /// A value did not parse as the expected type.
    BadValue {
        /// The flag.
        flag: String,
        /// The offending value.
        value: String,
        /// Why it was rejected.
        message: String,
    },
    /// Arguments remained that no flag consumed.
    Unknown {
        /// The unrecognized arguments, in order.
        args: Vec<String>,
    },
    /// Two flags were combined in a way the bin cannot honor.
    Conflict {
        /// The first flag.
        a: String,
        /// The second flag.
        b: String,
        /// Why they clash.
        message: String,
    },
}

impl CliError {
    /// A typed two-flag conflict.
    pub fn conflict(
        a: impl Into<String>,
        b: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        CliError::Conflict { a: a.into(), b: b.into(), message: message.into() }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingValue { flag } => write!(f, "{flag} needs a value"),
            CliError::BadValue { flag, value, message } => {
                write!(f, "{flag}: bad value `{value}`: {message}")
            }
            CliError::Unknown { args } => {
                write!(f, "unknown argument(s): {}", args.join(", "))
            }
            CliError::Conflict { a, b, message } => {
                write!(f, "{a} conflicts with {b}: {message}")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// A consumed-tracking view over a bin's arguments.
#[derive(Debug, Clone)]
pub struct Cli {
    args: Vec<String>,
    used: Vec<bool>,
}

impl Cli {
    /// Wraps an explicit argument list (tests; bins use [`Cli::from_env`]).
    pub fn new(args: Vec<String>) -> Self {
        let used = vec![false; args.len()];
        Self { args, used }
    }

    /// The process arguments, program name skipped.
    pub fn from_env() -> Self {
        Self::new(std::env::args().skip(1).collect())
    }

    /// Consumes a boolean flag: `true` iff `name` is present.
    pub fn flag(&mut self, name: &str) -> bool {
        let mut found = false;
        for (i, a) in self.args.iter().enumerate() {
            if a == name {
                self.used[i] = true;
                found = true;
            }
        }
        found
    }

    /// Consumes `name <value>`, returning the raw value when present.
    ///
    /// # Errors
    /// [`CliError::MissingValue`] when `name` is the final argument.
    pub fn value(&mut self, name: &str) -> Result<Option<String>, CliError> {
        let Some(i) = self.args.iter().position(|a| a == name) else {
            return Ok(None);
        };
        self.used[i] = true;
        match self.args.get(i + 1) {
            Some(v) => {
                self.used[i + 1] = true;
                Ok(Some(v.clone()))
            }
            None => Err(CliError::MissingValue { flag: name.to_string() }),
        }
    }

    /// Consumes `name <value>` and parses it, falling back to `default`
    /// when the flag is absent.
    ///
    /// # Errors
    /// [`CliError::MissingValue`] or [`CliError::BadValue`].
    pub fn parsed_or<T>(&mut self, name: &str, default: T) -> Result<T, CliError>
    where
        T: FromStr,
        T::Err: fmt::Display,
    {
        match self.value(name)? {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|e: T::Err| CliError::BadValue {
                flag: name.to_string(),
                value: raw,
                message: e.to_string(),
            }),
        }
    }

    /// Consumes and returns the first argument not yet claimed by a flag
    /// (a positional subcommand such as `figures fig3`).
    pub fn positional(&mut self) -> Option<String> {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] {
                self.used[i] = true;
                return Some(a.clone());
            }
        }
        None
    }

    /// Rejects anything no flag consumed.
    ///
    /// # Errors
    /// [`CliError::Unknown`] listing the leftover arguments.
    pub fn finish(self) -> Result<(), CliError> {
        let leftover: Vec<String> = self
            .args
            .into_iter()
            .zip(self.used)
            .filter_map(|(a, used)| (!used).then_some(a))
            .collect();
        if leftover.is_empty() {
            Ok(())
        } else {
            Err(CliError::Unknown { args: leftover })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> Cli {
        Cli::new(args.iter().map(|s| (*s).to_string()).collect())
    }

    #[test]
    fn flags_values_and_finish() {
        let mut c = cli(&["--fast", "--queue-cap", "9", "--faults", "rate=0.5"]);
        assert!(c.flag("--fast"));
        assert!(!c.flag("--metrics"));
        assert_eq!(c.parsed_or("--queue-cap", 6usize).unwrap(), 9);
        assert_eq!(c.value("--faults").unwrap().as_deref(), Some("rate=0.5"));
        c.finish().unwrap();
    }

    #[test]
    fn defaults_apply_when_absent() {
        let mut c = cli(&[]);
        assert_eq!(c.parsed_or("--workers", 8usize).unwrap(), 8);
        c.finish().unwrap();
    }

    #[test]
    fn missing_value_is_typed() {
        let mut c = cli(&["--deadline-tokens"]);
        let err = c.value("--deadline-tokens").unwrap_err();
        assert_eq!(err, CliError::MissingValue { flag: "--deadline-tokens".into() });
        assert_eq!(err.to_string(), "--deadline-tokens needs a value");
    }

    #[test]
    fn bad_value_is_typed() {
        let mut c = cli(&["--workers", "lots"]);
        let err = c.parsed_or("--workers", 8usize).unwrap_err();
        assert!(matches!(err, CliError::BadValue { ref flag, .. } if flag == "--workers"));
    }

    #[test]
    fn unknown_arguments_are_rejected() {
        let mut c = cli(&["--fast", "--typo"]);
        assert!(c.flag("--fast"));
        let err = c.finish().unwrap_err();
        assert_eq!(err, CliError::Unknown { args: vec!["--typo".into()] });
    }

    #[test]
    fn conflict_is_typed_and_displays_both_flags() {
        let err = CliError::conflict("--trace", "--spans", "both name out.json");
        assert_eq!(
            err,
            CliError::Conflict {
                a: "--trace".into(),
                b: "--spans".into(),
                message: "both name out.json".into()
            }
        );
        assert_eq!(err.to_string(), "--trace conflicts with --spans: both name out.json");
    }

    #[test]
    fn positional_takes_first_unclaimed() {
        let mut c = cli(&["fig3", "--fast"]);
        assert!(c.flag("--fast"));
        assert_eq!(c.positional().as_deref(), Some("fig3"));
        assert_eq!(c.positional(), None);
        c.finish().unwrap();
    }
}
