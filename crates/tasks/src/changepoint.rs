//! Zero-shot change-point detection.
//!
//! A change point differs from a point anomaly: surprisal does not spike
//! once and return to baseline, it *stays* elevated while the in-context
//! model relearns the new regime. A one-sided CUSUM over the surprisal
//! stream accumulates evidence of that sustained shift; when the
//! accumulated excess crosses a threshold, the change is dated back to
//! where the accumulation started, the statistic resets, and scanning
//! continues (so multiple change points are found in one pass).

use mc_tslib::error::Result;

use crate::surprisal::{robust_stats, surprisal_profile, SurprisalConfig};

/// Change-point detection configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangePointConfig {
    /// Surprisal scorer settings.
    pub surprisal: SurprisalConfig,
    /// Allowance (drift) in robust sigmas: surprisal must exceed
    /// `median + drift * MAD` to accumulate evidence.
    pub drift: f64,
    /// Decision threshold in accumulated robust sigmas.
    pub threshold: f64,
    /// Minimum distance between reported change points.
    pub min_gap: usize,
}

impl Default for ChangePointConfig {
    fn default() -> Self {
        Self { surprisal: SurprisalConfig::default(), drift: 1.0, threshold: 12.0, min_gap: 8 }
    }
}

/// Zero-shot change-point detector.
#[derive(Debug, Clone, Default)]
pub struct ChangePointDetector {
    /// Configuration.
    pub config: ChangePointConfig,
}

impl ChangePointDetector {
    /// Creates a detector.
    pub fn new(config: ChangePointConfig) -> Self {
        Self { config }
    }

    /// Returns estimated change-point indices, ascending.
    pub fn detect(&self, values: &[f64]) -> Result<Vec<usize>> {
        let scores = surprisal_profile(values, self.config.surprisal)?;
        Ok(self.detect_from_scores(&scores))
    }

    /// CUSUM pass over precomputed surprisal scores (exposed so callers
    /// can reuse one profile for anomaly *and* change-point scanning).
    pub fn detect_from_scores(&self, scores: &[f64]) -> Vec<usize> {
        let cfg = &self.config;
        let start = cfg.surprisal.warmup.min(scores.len().saturating_sub(1));
        let body = &scores[start..];
        if body.is_empty() {
            return Vec::new();
        }
        let (median, mad) = robust_stats(body);
        // Same flooring rationale as the anomaly detector: scores are
        // range-fractions, and a learned series has near-zero MAD.
        let scale = mad.max(0.015);
        let allowance = median + cfg.drift * scale;

        let mut out: Vec<usize> = Vec::new();
        let mut cusum = 0.0;
        let mut run_start: Option<usize> = None;
        for (i, &s) in scores.iter().enumerate().skip(start) {
            // Winsorize the positive contribution: no single timestamp may
            // carry more than a quarter of the decision threshold, so a
            // change verdict always requires *sustained* surprise (>= 4
            // consecutive surprising points). A lone point anomaly
            // perturbs its own prediction plus the 2-3 predictions that
            // condition on it; four sustained points is past that shadow.
            let excess = ((s - allowance) / scale).min(cfg.threshold / 4.0);
            if excess > 0.0 {
                if run_start.is_none() {
                    run_start = Some(i);
                }
                cusum += excess;
                if cusum >= cfg.threshold {
                    let cp = run_start.expect("run started before threshold crossing");
                    if out.last().is_none_or(|&prev| cp >= prev + cfg.min_gap) {
                        out.push(cp);
                    }
                    cusum = 0.0;
                    run_start = None;
                }
            } else {
                // Evidence decays; a brief dip doesn't erase a strong run.
                cusum = (cusum + excess).max(0.0);
                if cusum == 0.0 {
                    run_start = None;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Period change at `at`: the model must relearn the new rhythm.
    fn regime_shift(n: usize, at: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                if t < at {
                    50.0 + 10.0 * (t as f64 * std::f64::consts::PI / 8.0).sin()
                } else {
                    20.0 + 4.0 * (t as f64 * std::f64::consts::PI / 3.0).sin()
                }
            })
            .collect()
    }

    #[test]
    fn finds_single_regime_shift_near_true_location() {
        let xs = regime_shift(160, 90);
        let cps = ChangePointDetector::default().detect(&xs).unwrap();
        assert!(!cps.is_empty(), "no change point found");
        let nearest = cps.iter().map(|&c| (c as i64 - 90).abs()).min().unwrap();
        assert!(nearest <= 6, "change points {cps:?} not near 90");
    }

    #[test]
    fn clean_series_has_no_change_points() {
        let xs: Vec<f64> =
            (0..160).map(|t| 50.0 + 10.0 * (t as f64 * std::f64::consts::PI / 8.0).sin()).collect();
        let cps = ChangePointDetector::default().detect(&xs).unwrap();
        assert!(cps.is_empty(), "spurious change points: {cps:?}");
    }

    #[test]
    fn point_anomaly_does_not_trigger_change_point() {
        // A single spike produces a one-sample surprisal burst — below the
        // sustained-evidence threshold.
        let mut xs: Vec<f64> =
            (0..160).map(|t| 50.0 + 10.0 * (t as f64 * std::f64::consts::PI / 8.0).sin()).collect();
        xs[80] += 35.0;
        let cps = ChangePointDetector::default().detect(&xs).unwrap();
        assert!(
            cps.iter().all(|&c| (c as i64 - 80).abs() > 4) || cps.is_empty(),
            "a lone spike must not be dated as a regime change: {cps:?}"
        );
    }

    #[test]
    fn min_gap_deduplicates() {
        // Two detectors on the same synthetic scores: tiny min_gap may
        // report clustered points, a large one must not.
        let mut scores = vec![0.1; 200];
        for s in scores[100..130].iter_mut() {
            *s = 5.0;
        }
        let tight =
            ChangePointDetector::new(ChangePointConfig { min_gap: 1, ..Default::default() })
                .detect_from_scores(&scores);
        let wide =
            ChangePointDetector::new(ChangePointConfig { min_gap: 50, ..Default::default() })
                .detect_from_scores(&scores);
        assert!(wide.len() <= tight.len());
        assert_eq!(wide.len(), 1);
        assert_eq!(wide[0], 100);
    }

    #[test]
    fn detect_from_scores_respects_warmup() {
        let mut scores = vec![0.1; 60];
        for s in scores[..8].iter_mut() {
            *s = 9.0; // warm-up turbulence
        }
        let cps = ChangePointDetector::default().detect_from_scores(&scores);
        assert!(cps.is_empty(), "warm-up must be ignored: {cps:?}");
    }
}
