//! # mc-tasks — zero-shot time-series tasks beyond forecasting
//!
//! The paper closes (§V) by naming the next targets for its zero-shot
//! LLM machinery: *"other similar time series-related tasks, such as
//! imputation, anomaly detection, and change point detection"*. This
//! crate implements all three on the same substrate the forecaster uses —
//! fixed-digit serialization, in-context backends, constrained sampling —
//! so they inherit the zero-shot property: no training, no labels, the
//! series itself is the model.
//!
//! - [`surprisal`] — the shared primitive: per-timestamp negative
//!   log-likelihood of the observed tokens under the in-context backend
//!   *before* it sees them. A timestamp the model finds surprising is a
//!   timestamp that breaks the pattern established so far.
//! - [`anomaly`] — robust thresholding (median + k·MAD) of surprisal
//!   scores into point-anomaly flags.
//! - [`changepoint`] — CUSUM over the surprisal stream: sustained (not
//!   one-off) surprisal shifts mark regime changes.
//! - [`imputation`] — gap filling: serialize the observed prefix, sample
//!   the gap with the constrained generator, keep conditioning on the
//!   observed suffix; run the same thing on the reversed series and blend
//!   the two estimates (bidirectional imputation).

pub mod anomaly;
pub mod changepoint;
pub mod imputation;
pub mod surprisal;

pub use anomaly::{AnomalyConfig, AnomalyDetector, AnomalyReport};
pub use changepoint::{ChangePointConfig, ChangePointDetector};
pub use imputation::{ImputationConfig, Imputer};
pub use surprisal::{surprisal_profile, SurprisalConfig};
