//! Zero-shot point-anomaly detection.
//!
//! A timestamp is anomalous when the in-context model — having absorbed
//! the series so far — finds its tokens much harder to predict than
//! usual. Scores come from [`crate::surprisal`]; the threshold is robust
//! (median + k·MAD over the post-warm-up profile), so a handful of true
//! anomalies cannot drag the threshold up after themselves.

use mc_tslib::error::Result;
use mc_tslib::series::MultivariateSeries;

use crate::surprisal::{robust_stats, surprisal_profile, SurprisalConfig};

/// Anomaly-detection configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyConfig {
    /// Surprisal scorer settings.
    pub surprisal: SurprisalConfig,
    /// Threshold in robust sigmas: flag if `score > median + k * MAD`.
    pub k: f64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        Self { surprisal: SurprisalConfig::default(), k: 4.0 }
    }
}

/// Result of scanning one dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyReport {
    /// Per-timestamp surprisal scores (nats/token).
    pub scores: Vec<f64>,
    /// Indices flagged as anomalous (post-warm-up only).
    pub anomalies: Vec<usize>,
    /// The threshold that was applied.
    pub threshold: f64,
}

/// Zero-shot anomaly detector.
///
/// ```
/// use mc_tasks::AnomalyDetector;
///
/// let mut feed: Vec<f64> = (0..96)
///     .map(|t| 50.0 + 10.0 * (t as f64 * std::f64::consts::PI / 8.0).sin())
///     .collect();
/// feed[70] += 35.0;                             // transient fault
/// let report = AnomalyDetector::default().detect(&feed).unwrap();
/// assert!(report.anomalies.contains(&70));
/// ```
#[derive(Debug, Clone, Default)]
pub struct AnomalyDetector {
    /// Configuration.
    pub config: AnomalyConfig,
}

impl AnomalyDetector {
    /// Creates a detector.
    pub fn new(config: AnomalyConfig) -> Self {
        Self { config }
    }

    /// Scans one dimension and reports anomalies.
    pub fn detect(&self, values: &[f64]) -> Result<AnomalyReport> {
        let scores = surprisal_profile(values, self.config.surprisal)?;
        let start = self.config.surprisal.warmup.min(scores.len().saturating_sub(1));
        let body = &scores[start..];
        let (median, mad) = robust_stats(body);
        // Scores are range-fractions in [0, 1]; a well-learned series has
        // MAD near zero, so the scale is floored at 1.5 % of the range —
        // only genuine value departures can clear k floored sigmas.
        let scale = mad.max(0.015);
        let threshold = median + self.config.k * scale;
        let anomalies = scores
            .iter()
            .enumerate()
            .skip(start)
            .filter(|(_, &s)| s > threshold)
            .map(|(i, _)| i)
            .collect();
        Ok(AnomalyReport { scores, anomalies, threshold })
    }

    /// Scans every dimension of a multivariate series independently.
    pub fn detect_multivariate(&self, series: &MultivariateSeries) -> Result<Vec<AnomalyReport>> {
        (0..series.dims()).map(|d| self.detect(series.column(d)?)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_with_spikes(n: usize, spikes: &[usize]) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let base = (t as f64 * std::f64::consts::PI / 8.0).sin() * 10.0 + 50.0;
                if spikes.contains(&t) {
                    base + 35.0
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn flags_injected_spikes() {
        let xs = series_with_spikes(128, &[60, 100]);
        let report = AnomalyDetector::default().detect(&xs).unwrap();
        assert!(report.anomalies.contains(&60), "anomalies: {:?}", report.anomalies);
        assert!(report.anomalies.contains(&100), "anomalies: {:?}", report.anomalies);
    }

    #[test]
    fn few_false_positives_on_clean_series() {
        let xs = series_with_spikes(128, &[]);
        let report = AnomalyDetector::default().detect(&xs).unwrap();
        // The stand-in backend occasionally misdecodes near sine extrema
        // (phase ambiguity), so a handful of isolated flags is acceptable;
        // what matters is that the series is not blanket-flagged.
        assert!(
            report.anomalies.len() <= 4,
            "clean series should barely fire: {:?}",
            report.anomalies
        );
    }

    #[test]
    fn warmup_is_never_flagged() {
        let xs = series_with_spikes(96, &[2, 50]);
        let det = AnomalyDetector::default();
        let report = det.detect(&xs).unwrap();
        assert!(report.anomalies.iter().all(|&i| i >= det.config.surprisal.warmup));
        assert!(report.anomalies.contains(&50));
    }

    #[test]
    fn multivariate_scans_each_dimension() {
        let a = series_with_spikes(96, &[40]);
        let b = series_with_spikes(96, &[70]);
        let m = MultivariateSeries::from_columns(vec!["a".into(), "b".into()], vec![a, b]).unwrap();
        let reports = AnomalyDetector::default().detect_multivariate(&m).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports[0].anomalies.contains(&40));
        assert!(reports[1].anomalies.contains(&70));
        assert!(!reports[0].anomalies.contains(&70));
    }

    #[test]
    fn higher_k_is_stricter() {
        let xs = series_with_spikes(128, &[64]);
        let loose = AnomalyDetector::new(AnomalyConfig { k: 2.0, ..Default::default() })
            .detect(&xs)
            .unwrap();
        let strict = AnomalyDetector::new(AnomalyConfig { k: 10.0, ..Default::default() })
            .detect(&xs)
            .unwrap();
        assert!(strict.anomalies.len() <= loose.anomalies.len());
        assert!(strict.threshold > loose.threshold);
    }
}
