//! Zero-shot gap imputation.
//!
//! Missing values are represented as `NaN`. The imputer serializes the
//! series exactly like the forecaster and streams it through the
//! in-context backend; when it reaches a gap it *generates* the missing
//! values under the digit/comma constraint (conditioning continues on the
//! generated tokens, then on the observed values after the gap). The same
//! procedure runs on the reversed series, and the two estimates are
//! blended linearly across each gap — the forward pass is most reliable
//! near the gap's left edge, the backward pass near its right edge.

use mc_lm::generate::{generate, GenerateOptions};
use mc_lm::model::LanguageModel;
use mc_lm::presets::{build_model, ModelPreset};
use mc_lm::sampler::{Sampler, SamplerConfig};
use mc_lm::tokenizer::{CharTokenizer, Tokenizer};
use mc_lm::vocab::{TokenId, Vocab};
use mc_tslib::error::{invalid_param, Result};
use mc_tslib::series::MultivariateSeries;

use multicast_core::codec::DIGIT_STREAM_CHARS;
use multicast_core::mux::{Multiplexer, ValueInterleave};
use multicast_core::scaling::{format_code, FixedDigitScaler};

/// Imputation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImputationConfig {
    /// Digits per rescaled value.
    pub digits: u32,
    /// Rescaling headroom.
    pub headroom: f64,
    /// Backend preset.
    pub preset: ModelPreset,
    /// Sampler settings (temperature low by default: imputation wants the
    /// model's best guess, not diversity).
    pub sampler: SamplerConfig,
    /// Base seed.
    pub seed: u64,
    /// Blend the forward pass with a backward pass over the reversed
    /// series (recommended; `false` gives pure forward imputation).
    pub bidirectional: bool,
}

impl Default for ImputationConfig {
    fn default() -> Self {
        Self {
            digits: 3,
            headroom: 0.15,
            preset: ModelPreset::Large,
            sampler: SamplerConfig {
                temperature: 0.25,
                top_k: None,
                top_p: Some(0.9),
                seed: 0,
                epsilon: 0.0,
            },
            seed: 0,
            bidirectional: true,
        }
    }
}

/// Zero-shot imputer.
#[derive(Debug, Clone, Default)]
pub struct Imputer {
    /// Configuration.
    pub config: ImputationConfig,
}

/// A contiguous run of missing values: `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Gap {
    start: usize,
    len: usize,
}

fn find_gaps(values: &[f64]) -> Vec<Gap> {
    let mut gaps = Vec::new();
    let mut i = 0;
    while i < values.len() {
        if values[i].is_nan() {
            let start = i;
            while i < values.len() && values[i].is_nan() {
                i += 1;
            }
            gaps.push(Gap { start, len: i - start });
        } else {
            i += 1;
        }
    }
    gaps
}

impl Imputer {
    /// Creates an imputer.
    pub fn new(config: ImputationConfig) -> Self {
        Self { config }
    }

    /// Fills every `NaN` in `values`; observed entries pass through
    /// untouched.
    ///
    /// # Errors
    /// If the series has no observed values, starts or ends with a gap
    /// while `bidirectional` is off (forward imputation needs a prefix),
    /// or contains non-finite observed values.
    pub fn impute(&self, values: &[f64]) -> Result<Vec<f64>> {
        let observed: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        if observed.len() < 4 {
            return Err(invalid_param("values", "need at least 4 observed values"));
        }
        if observed.iter().any(|v| !v.is_finite()) {
            return Err(invalid_param(
                "values",
                "observed values must be finite (only NaN marks gaps)",
            ));
        }
        let gaps = find_gaps(values);
        if gaps.is_empty() {
            return Ok(values.to_vec());
        }
        if values[0].is_nan() && !self.config.bidirectional {
            return Err(invalid_param("values", "forward-only imputation cannot start with a gap"));
        }
        let scaler = FixedDigitScaler::fit(&[observed], self.config.digits, self.config.headroom)?;

        let forward = self.impute_direction(values, &scaler, self.config.seed)?;
        if !self.config.bidirectional {
            return Ok(forward);
        }
        let reversed: Vec<f64> = values.iter().rev().copied().collect();
        let mut backward =
            self.impute_direction(&reversed, &scaler, self.config.seed.wrapping_add(0x5eed))?;
        backward.reverse();

        // Linear cross-fade across each gap.
        let mut out = values.to_vec();
        for gap in gaps {
            for i in 0..gap.len {
                let t = gap.start + i;
                let w_bwd = (i + 1) as f64 / (gap.len + 1) as f64;
                let w_fwd = 1.0 - w_bwd;
                out[t] = w_fwd * forward[t] + w_bwd * backward[t];
            }
        }
        Ok(out)
    }

    /// Imputes every dimension of a multivariate series independently.
    pub fn impute_multivariate(&self, series: &MultivariateSeries) -> Result<MultivariateSeries> {
        let mut columns = Vec::with_capacity(series.dims());
        for d in 0..series.dims() {
            columns.push(self.impute(series.column(d)?)?);
        }
        MultivariateSeries::from_columns(series.names().to_vec(), columns)
    }

    /// One directional pass: stream observed values, generate gaps.
    fn impute_direction(
        &self,
        values: &[f64],
        scaler: &FixedDigitScaler,
        seed: u64,
    ) -> Result<Vec<f64>> {
        let cfg = &self.config;
        let vocab = Vocab::numeric();
        let tokenizer = CharTokenizer::new(vocab.clone());
        let sep = vocab.id(',').expect("comma in vocabulary");
        let allowed_ids: Vec<bool> = {
            let mut mask = vec![false; vocab.len()];
            for id in vocab.ids_of(DIGIT_STREAM_CHARS) {
                mask[id as usize] = true;
            }
            mask
        };
        let mut model = build_model(cfg.preset, vocab.len());
        let mut sampler = Sampler::new(SamplerConfig { seed, ..cfg.sampler });
        let mux = ValueInterleave;

        let mut out = values.to_vec();
        // Leading gap (possible in the reversed pass): fill with the first
        // observed value — the backward blend weight there is ~1 anyway.
        let first_obs = values.iter().position(|v| !v.is_nan()).expect("observed exists");
        out[..first_obs].fill(values[first_obs]);

        let feed_value = |model: &mut dyn LanguageModel, code: u64| {
            let mut text = format_code(code, cfg.digits);
            text.push(',');
            for &t in &tokenizer.encode(&text).expect("numeric text encodes") {
                model.observe(t, false);
            }
        };

        // Feed the prefix.
        for &v in &out[..first_obs] {
            feed_value(model.as_mut(), scaler.scale_value(0, v)?);
        }
        let mut t = first_obs;
        while t < values.len() {
            if !values[t].is_nan() {
                feed_value(model.as_mut(), scaler.scale_value(0, values[t])?);
                t += 1;
                continue;
            }
            // Gap: generate until its length in separators.
            let gap_len = values[t..].iter().take_while(|v| v.is_nan()).count();
            let options = GenerateOptions::until_separators(
                sep,
                gap_len,
                (gap_len * (cfg.digits as usize + 1)).saturating_mul(3).max(16),
            );
            let generated = generate(
                model.as_mut(),
                &mut sampler,
                |id: TokenId| allowed_ids[id as usize],
                &options,
            );
            let text = tokenizer.decode(&generated).expect("in-vocabulary");
            let codes = mux.demux(&text, 1, cfg.digits, gap_len);
            for (i, &code) in codes[0].iter().enumerate() {
                out[t + i] = scaler.descale_value(0, code)?;
            }
            t += gap_len;
        }
        Ok(out)
    }
}

/// Linear interpolation across gaps — the classical reference the tests
/// compare against (endpoints held flat).
pub fn linear_interpolate(values: &[f64]) -> Vec<f64> {
    let mut out = values.to_vec();
    for gap in find_gaps(values) {
        let left = gap.start.checked_sub(1).map(|i| values[i]);
        let right = values.get(gap.start + gap.len).copied().filter(|v| !v.is_nan());
        for i in 0..gap.len {
            out[gap.start + i] = match (left, right) {
                (Some(l), Some(r)) => {
                    let w = (i + 1) as f64 / (gap.len + 1) as f64;
                    l + (r - l) * w
                }
                (Some(l), None) => l,
                (None, Some(r)) => r,
                (None, None) => f64::NAN,
            };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize) -> Vec<f64> {
        (0..n).map(|t| 50.0 + 10.0 * (t as f64 * std::f64::consts::PI / 8.0).sin()).collect()
    }

    fn mask(values: &[f64], range: std::ops::Range<usize>) -> Vec<f64> {
        let mut out = values.to_vec();
        for v in &mut out[range] {
            *v = f64::NAN;
        }
        out
    }

    fn gap_rmse(truth: &[f64], imputed: &[f64], range: std::ops::Range<usize>) -> f64 {
        let mut acc = 0.0;
        for t in range.clone() {
            acc += (truth[t] - imputed[t]).powi(2);
        }
        (acc / range.len() as f64).sqrt()
    }

    #[test]
    fn observed_values_pass_through_unchanged() {
        let truth = sine(96);
        let masked = mask(&truth, 40..52);
        let imputed = Imputer::default().impute(&masked).unwrap();
        for t in (0..40).chain(52..96) {
            assert_eq!(imputed[t], truth[t], "t={t}");
        }
        assert!(imputed.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn no_gaps_is_identity() {
        let truth = sine(40);
        assert_eq!(Imputer::default().impute(&truth).unwrap(), truth);
    }

    #[test]
    fn beats_linear_interpolation_on_periodic_gap() {
        // A 12-point gap spans ¾ of the period: a straight line is badly
        // wrong, the pattern-replaying backend is not.
        let truth = sine(128);
        let masked = mask(&truth, 64..76);
        let imputed = Imputer::default().impute(&masked).unwrap();
        let linear = linear_interpolate(&masked);
        let e_llm = gap_rmse(&truth, &imputed, 64..76);
        let e_lin = gap_rmse(&truth, &linear, 64..76);
        assert!(
            e_llm < e_lin,
            "zero-shot {e_llm:.3} should beat linear {e_lin:.3} on a periodic gap"
        );
    }

    #[test]
    fn multiple_gaps_filled() {
        let truth = sine(128);
        let mut masked = mask(&truth, 30..36);
        masked = mask(&masked, 90..98);
        let imputed = Imputer::default().impute(&masked).unwrap();
        assert!(imputed.iter().all(|v| v.is_finite()));
        assert!(gap_rmse(&truth, &imputed, 30..36) < 12.0);
        assert!(gap_rmse(&truth, &imputed, 90..98) < 12.0);
    }

    #[test]
    fn leading_gap_needs_bidirectional() {
        let truth = sine(64);
        let masked = mask(&truth, 0..4);
        let forward_only =
            Imputer::new(ImputationConfig { bidirectional: false, ..Default::default() });
        assert!(forward_only.impute(&masked).is_err());
        let imputed = Imputer::default().impute(&masked).unwrap();
        assert!(imputed.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_per_seed() {
        let masked = mask(&sine(96), 50..60);
        let a = Imputer::default().impute(&masked).unwrap();
        let b = Imputer::default().impute(&masked).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn multivariate_imputes_each_dimension() {
        let a = mask(&sine(80), 30..38);
        let b = mask(&sine(80), 60..66);
        let m = MultivariateSeries::from_columns(vec!["a".into(), "b".into()], vec![a, b]).unwrap();
        let imputed = Imputer::default().impute_multivariate(&m).unwrap();
        assert!(imputed.columns().iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn rejects_pathological_input() {
        assert!(Imputer::default().impute(&[f64::NAN, 1.0, f64::NAN]).is_err());
        assert!(Imputer::default().impute(&[1.0, f64::INFINITY, 2.0, 3.0, 4.0]).is_err());
    }

    #[test]
    fn linear_interpolate_reference() {
        let xs = [0.0, f64::NAN, f64::NAN, 3.0];
        let out = linear_interpolate(&xs);
        assert_eq!(out, vec![0.0, 1.0, 2.0, 3.0]);
        // Trailing gap holds the last value.
        let ys = [1.0, 2.0, f64::NAN];
        assert_eq!(linear_interpolate(&ys), vec![1.0, 2.0, 2.0]);
    }
}
