//! Per-timestamp zero-shot surprise scores.
//!
//! The primitive behind anomaly and change-point detection. For every
//! timestamp the in-context backend — conditioned on everything before it
//! — produces its best guess of the next value (greedy constrained
//! decoding on a *cloned* model, so the hypothetical tokens never pollute
//! the real context); the score is the absolute difference between the
//! guess and the actual value, as a fraction of the rescaled range.
//!
//! Why value-space residuals instead of raw token NLL: a digit-level
//! model is pathologically confident once it locks onto a pattern, so a
//! harmless quantization flip (`499` one period, `500` the next) explodes
//! the token likelihood while the *value* error is 0.1 %. Conversely, a
//! genuine anomaly moves the value itself. Scoring in value space keeps
//! exactly the signal the tasks need.

use mc_lm::concrete::ConcreteLm;
use mc_lm::model::LanguageModel;
use mc_lm::presets::ModelPreset;
use mc_lm::tokenizer::{CharTokenizer, Tokenizer};
use mc_lm::vocab::{TokenId, Vocab};
use mc_tslib::error::{invalid_param, Result};

use multicast_core::scaling::{format_code, FixedDigitScaler};

/// Configuration of the surprise scorer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurprisalConfig {
    /// Digits per rescaled value.
    pub digits: u32,
    /// Rescaling headroom (matches the forecaster's scaler).
    pub headroom: f64,
    /// Backend preset.
    pub preset: ModelPreset,
    /// Timestamps excluded from downstream statistics while the model
    /// warms up (scores are still computed and reported for them).
    pub warmup: usize,
}

impl Default for SurprisalConfig {
    fn default() -> Self {
        Self { digits: 3, headroom: 0.15, preset: ModelPreset::Large, warmup: 16 }
    }
}

/// Greedy constrained decode of one `digits`-wide value on a clone of the
/// current model state; the caller's model is untouched.
fn greedy_next_code(backend: &ConcreteLm, digit_ids: &[TokenId], digits: u32) -> u64 {
    let mut lookahead = backend.clone();
    let mut dist = vec![0.0; lookahead.vocab_size()];
    let mut code = 0u64;
    for _ in 0..digits {
        lookahead.next_distribution(&mut dist);
        let (best_digit, _) = digit_ids
            .iter()
            .enumerate()
            .map(|(d, &id)| (d, dist[id as usize]))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("ten digit tokens");
        code = code * 10 + best_digit as u64;
        lookahead.observe(digit_ids[best_digit], true);
    }
    code
}

/// Per-timestamp surprise: `|actual - predicted| / (10^digits - 1)`,
/// i.e. the one-step-ahead zero-shot prediction error as a fraction of
/// the rescaled range, in `[0, 1]`.
///
/// Deterministic: greedy decoding, no sampling.
pub fn surprisal_profile(values: &[f64], config: SurprisalConfig) -> Result<Vec<f64>> {
    if values.len() < 2 {
        return Err(invalid_param("values", "need at least 2 observations"));
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(invalid_param("values", "values must be finite"));
    }
    let scaler = FixedDigitScaler::fit(&[values.to_vec()], config.digits, config.headroom)?;
    let codes = scaler.scale_column(0, values)?;
    let vocab = Vocab::numeric();
    let tokenizer = CharTokenizer::new(vocab.clone());
    let digit_ids: Vec<TokenId> =
        ('0'..='9').map(|c| vocab.id(c).expect("digit in vocabulary")).collect();
    let max_int = (10u64.pow(config.digits) - 1) as f64;

    let mut backend = ConcreteLm::build(config.preset, vocab.len());
    let mut out = Vec::with_capacity(values.len());
    for &code in &codes {
        let predicted = greedy_next_code(&backend, &digit_ids, config.digits);
        out.push((code as f64 - predicted as f64).abs() / max_int);
        // Feed the actual tokens (value + separator) into the real model.
        let mut text = format_code(code, config.digits);
        text.push(',');
        for &t in &tokenizer.encode(&text).expect("numeric text encodes") {
            backend.observe(t, false);
        }
    }
    Ok(out)
}

/// Robust location/scale of a score slice: `(median, MAD)`.
/// MAD is scaled by 1.4826 so it estimates sigma under normality.
pub fn robust_stats(scores: &[f64]) -> (f64, f64) {
    assert!(!scores.is_empty(), "robust stats of an empty slice");
    let median = {
        let mut v = scores.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        v[v.len() / 2]
    };
    let mut deviations: Vec<f64> = scores.iter().map(|s| (s - median).abs()).collect();
    deviations.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mad = deviations[deviations.len() / 2] * 1.4826;
    (median, mad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic_with_spike(n: usize, spike_at: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let base = (t as f64 * std::f64::consts::PI / 8.0).sin() * 10.0 + 50.0;
                if t == spike_at {
                    base + 40.0
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn profile_has_one_score_per_timestamp_in_unit_range() {
        let xs: Vec<f64> = (0..50).map(|t| (t as f64 * 0.4).sin()).collect();
        let p = surprisal_profile(&xs, SurprisalConfig::default()).unwrap();
        assert_eq!(p.len(), 50);
        assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn surprisal_decays_as_pattern_is_learned() {
        let xs: Vec<f64> =
            (0..96).map(|t| (t as f64 * std::f64::consts::PI / 8.0).sin() * 10.0 + 50.0).collect();
        let p = surprisal_profile(&xs, SurprisalConfig::default()).unwrap();
        let early: f64 = p[2..10].iter().sum::<f64>() / 8.0;
        let late: f64 = p[64..96].iter().sum::<f64>() / 32.0;
        assert!(late < early * 0.2, "late {late:.4} vs early {early:.4}");
        // Once learned, residuals are essentially quantization-level.
        assert!(late < 0.02, "late surprise should be tiny, got {late:.4}");
    }

    #[test]
    fn spike_is_most_surprising_late_timestamp() {
        let xs = periodic_with_spike(96, 70);
        let p = surprisal_profile(&xs, SurprisalConfig::default()).unwrap();
        let (argmax, peak) =
            p.iter()
                .enumerate()
                .skip(20)
                .fold((0, f64::MIN), |acc, (i, &v)| if v > acc.1 { (i, v) } else { acc });
        assert_eq!(argmax, 70, "profile: {:?}", &p[60..80]);
        assert!(peak > 0.2, "spike residual should be large: {peak}");
    }

    #[test]
    fn boundary_quantization_flips_are_not_surprising() {
        // The motivating case: a clean sine whose zero crossings land on
        // the 499/500 code boundary. Value-space residuals stay tiny at
        // every post-learning timestamp.
        let xs: Vec<f64> =
            (0..128).map(|t| (t as f64 * std::f64::consts::PI / 8.0).sin() * 10.0 + 50.0).collect();
        let p = surprisal_profile(&xs, SurprisalConfig::default()).unwrap();
        // Typical residual is quantization-level; a couple of isolated
        // phase-ambiguity misdecodes are tolerated (the sine passes the
        // same value band twice per period, so a short context cannot
        // always tell the rising branch from the falling one).
        let late = &p[40..];
        let big = late.iter().filter(|&&v| v > 0.05).count();
        assert!(big <= 2, "at most 2 isolated misdecodes, got {big}");
        let (median, _) = robust_stats(late);
        assert!(median < 0.01, "typical residual must be tiny: {median}");
    }

    #[test]
    fn deterministic() {
        let xs = periodic_with_spike(60, 30);
        let a = surprisal_profile(&xs, SurprisalConfig::default()).unwrap();
        let b = surprisal_profile(&xs, SurprisalConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn suffix_backend_also_works() {
        let xs = periodic_with_spike(80, 50);
        let cfg = SurprisalConfig { preset: ModelPreset::Suffix, ..Default::default() };
        let p = surprisal_profile(&xs, cfg).unwrap();
        let (argmax, _) =
            p.iter()
                .enumerate()
                .skip(20)
                .fold((0, f64::MIN), |acc, (i, &v)| if v > acc.1 { (i, v) } else { acc });
        assert_eq!(argmax, 50);
    }

    #[test]
    fn robust_stats_ignore_outliers() {
        let scores = [1.0, 1.1, 0.9, 1.0, 100.0];
        let (median, mad) = robust_stats(&scores);
        assert!((median - 1.0).abs() < 0.11);
        assert!(mad < 1.0, "MAD must not be inflated by the outlier: {mad}");
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(surprisal_profile(&[1.0], SurprisalConfig::default()).is_err());
        assert!(surprisal_profile(&[1.0, f64::NAN, 2.0], SurprisalConfig::default()).is_err());
    }
}
