//! # multicast-suite — umbrella crate for the MultiCast reproduction
//!
//! Re-exports the complete public API of the workspace so applications can
//! depend on one crate:
//!
//! - [`tslib`] — series types, metrics, transforms, splits, CSV I/O;
//! - [`datasets`] — the paper's three datasets (seeded synthetic replicas)
//!   and generic process generators;
//! - [`lm`] — the LLM substrate (tokenizer, in-context backends, sampler);
//! - [`obs`] — structured tracing + metrics for the serve path;
//! - [`sax`] — PAA/SAX quantization;
//! - [`baselines`] — ARIMA, LSTM and naive comparators;
//! - [`core`] — the MultiCast forecasters themselves;
//! - [`tasks`] — the paper's future-work tasks, zero-shot: imputation,
//!   anomaly detection, change-point detection.
//!
//! See `examples/` for runnable walkthroughs and `tests/` for the
//! cross-crate integration suite.

pub mod cli;

pub use mc_baselines as baselines;
pub use mc_datasets as datasets;
pub use mc_lm as lm;
pub use mc_obs as obs;
pub use mc_sax as sax;
pub use mc_tasks as tasks;
pub use mc_tslib as tslib;
pub use multicast_core as core;

/// Convenience prelude with the symbols almost every program needs.
pub mod prelude {
    pub use mc_baselines::{ArimaForecaster, LstmConfig, LstmForecaster};
    pub use mc_datasets::{electricity, gas_rate, weather, PaperDataset};
    pub use mc_lm::presets::ModelPreset;
    pub use mc_tasks::{AnomalyDetector, ChangePointDetector, Imputer};
    pub use mc_tslib::forecast::{MultivariateForecaster, PerDimension, UnivariateForecaster};
    pub use mc_tslib::metrics::{mae, rmse, smape};
    pub use mc_tslib::split::holdout_split;
    pub use mc_tslib::{MultivariateSeries, UnivariateSeries};
    pub use multicast_core::{
        ForecastConfig, LlmTimeForecaster, MultiCastForecaster, MuxMethod, SaxForecastConfig,
        SaxMultiCastForecaster,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_exposes_core_types() {
        use crate::prelude::*;
        let cfg = ForecastConfig::default();
        assert_eq!(cfg.samples, 5);
        let _ = MuxMethod::ALL;
        let _ = PaperDataset::ALL;
    }
}
