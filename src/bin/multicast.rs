//! `multicast` — the command-line face of the reproduction.
//!
//! ```sh
//! multicast forecast data.csv --horizon 12 --method vi --out forecast.csv
//! multicast detect   data.csv --column temperature
//! multicast impute   gappy.csv --out filled.csv
//! multicast datasets --dir results/datasets
//! ```
//!
//! All logic lives in [`multicast_suite::cli`]; this binary only parses
//! `argv`, runs the command and sets the exit code.

use multicast_suite::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::parse(&args).and_then(cli::run) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cli::USAGE);
            std::process::exit(2);
        }
    }
}
