//! Command-line interface logic (driven by `src/bin/multicast.rs`).
//!
//! Subcommands:
//!
//! - `forecast <csv> --horizon N [--method vi] [--samples 5] [--out fc.csv]`
//!   — zero-shot forecast of a CSV series (or a classical baseline);
//! - `detect <csv> [--column NAME]` — zero-shot anomaly + change-point scan;
//! - `impute <csv> [--out filled.csv]` — fill `NaN` cells zero-shot;
//! - `datasets [--dir DIR]` — export the three paper replica datasets.
//!
//! Argument parsing is hand-rolled (the surface is tiny and the workspace
//! stays dependency-light); every command is a pure function from parsed
//! arguments to output, so the whole surface is unit-testable.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use mc_baselines::{ArimaForecaster, KalmanForecaster, LstmConfig, LstmForecaster, VarForecaster};
use mc_datasets::PaperDataset;
use mc_tasks::{AnomalyDetector, ChangePointDetector, Imputer};
use mc_tslib::error::{invalid_param, Result, TsError};
use mc_tslib::forecast::{MultivariateForecaster, PerDimension};
use mc_tslib::io;
use mc_tslib::series::MultivariateSeries;
use multicast_core::{ForecastConfig, LlmTimeForecaster, MultiCastForecaster, MuxMethod};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Forecast a CSV file.
    Forecast {
        /// Input CSV path.
        input: PathBuf,
        /// Steps to forecast.
        horizon: usize,
        /// Method name (`di`/`vi`/`vc`/`llmtime`/`arima`/`lstm`/`var`).
        method: String,
        /// Samples for LLM methods.
        samples: usize,
        /// Optional output CSV for the forecast.
        out: Option<PathBuf>,
    },
    /// Anomaly + change-point scan.
    Detect {
        /// Input CSV path.
        input: PathBuf,
        /// Restrict to one named column (all columns otherwise).
        column: Option<String>,
    },
    /// Fill NaN gaps.
    Impute {
        /// Input CSV path (NaN cells mark gaps).
        input: PathBuf,
        /// Optional output CSV.
        out: Option<PathBuf>,
    },
    /// Export the paper's replica datasets as CSV files.
    Datasets {
        /// Target directory.
        dir: PathBuf,
    },
    /// Print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
multicast — zero-shot multivariate time-series toolkit

USAGE:
  multicast forecast <csv> --horizon N [--method vi] [--samples 5] [--out fc.csv]
  multicast detect   <csv> [--column NAME]
  multicast impute   <csv> [--out filled.csv]
  multicast datasets [--dir results/datasets]
  multicast help

METHODS:
  di | vi | vc      MultiCast with the chosen multiplexing scheme
  llmtime           per-dimension zero-shot baseline
  arima | lstm | var | kalman   classical comparators
";

fn parse_flags(args: &[String]) -> Result<(Vec<String>, HashMap<String, String>)> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| invalid_param("flags", format!("--{name} needs a value")))?;
            flags.insert(name.to_string(), value.clone());
            i += 2;
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    Ok((positional, flags))
}

/// Parses the raw argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Command> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let (positional, flags) = parse_flags(&args[1..])?;
    let input = |idx: usize| -> Result<PathBuf> {
        positional
            .get(idx)
            .map(PathBuf::from)
            .ok_or_else(|| invalid_param("input", "missing CSV path"))
    };
    match cmd.as_str() {
        "forecast" => Ok(Command::Forecast {
            input: input(0)?,
            horizon: flags
                .get("horizon")
                .ok_or_else(|| invalid_param("horizon", "--horizon is required"))?
                .parse()
                .map_err(|_| invalid_param("horizon", "must be a positive integer"))?,
            method: flags.get("method").cloned().unwrap_or_else(|| "vi".into()),
            samples: flags
                .get("samples")
                .map(|s| s.parse())
                .transpose()
                .map_err(|_| invalid_param("samples", "must be a positive integer"))?
                .unwrap_or(5),
            out: flags.get("out").map(PathBuf::from),
        }),
        "detect" => Ok(Command::Detect { input: input(0)?, column: flags.get("column").cloned() }),
        "impute" => {
            Ok(Command::Impute { input: input(0)?, out: flags.get("out").map(PathBuf::from) })
        }
        "datasets" => Ok(Command::Datasets {
            dir: flags.get("dir").map_or_else(|| "results/datasets".into(), PathBuf::from),
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(invalid_param("command", format!("unknown command `{other}`"))),
    }
}

/// Builds a forecaster by CLI method name.
pub fn build_method(name: &str, samples: usize) -> Result<Box<dyn MultivariateForecaster>> {
    let config = ForecastConfig { samples, ..ForecastConfig::default() };
    Ok(match name {
        "di" => Box::new(MultiCastForecaster::new(MuxMethod::DigitInterleave, config)),
        "vi" => Box::new(MultiCastForecaster::new(MuxMethod::ValueInterleave, config)),
        "vc" => Box::new(MultiCastForecaster::new(MuxMethod::ValueConcat, config)),
        "llmtime" => Box::new(LlmTimeForecaster::new(config)),
        "arima" => Box::new(PerDimension(ArimaForecaster::default())),
        "lstm" => Box::new(LstmForecaster::new(LstmConfig::default())),
        "var" => Box::new(VarForecaster::default()),
        "kalman" => Box::new(PerDimension(KalmanForecaster)),
        other => return Err(invalid_param("method", format!("unknown method `{other}`"))),
    })
}

/// Executes a parsed command; returns the text to print.
pub fn run(command: Command) -> Result<String> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Forecast { input, horizon, method, samples, out } => {
            let series = io::read_csv(&input)?;
            let mut forecaster = build_method(&method, samples)?;
            let fc = forecaster.forecast(&series, horizon)?;
            let mut report = format!(
                "forecast of {} x {} series `{}` with {} for {horizon} steps\n",
                series.len(),
                series.dims(),
                input.display(),
                forecaster.name(),
            );
            report.push_str(&io::write_csv_str(&fc));
            if let Some(out) = out {
                io::write_csv(&fc, &out)?;
                report.push_str(&format!("written to {}\n", out.display()));
            }
            Ok(report)
        }
        Command::Detect { input, column } => {
            let series = io::read_csv(&input)?;
            let mut report = String::new();
            for d in 0..series.dims() {
                let name = &series.names()[d];
                if let Some(ref only) = column {
                    if name != only {
                        continue;
                    }
                }
                let values = series.column(d)?;
                let anomalies = AnomalyDetector::default().detect(values)?;
                let change_points = ChangePointDetector::default().detect(values)?;
                report.push_str(&format!(
                    "{name}: anomalies {:?} (threshold {:.4}), change points {:?}\n",
                    anomalies.anomalies, anomalies.threshold, change_points
                ));
            }
            if report.is_empty() {
                return Err(invalid_param("column", "no matching column"));
            }
            Ok(report)
        }
        Command::Impute { input, out } => {
            let series = read_csv_with_nans(&input)?;
            let filled = Imputer::default().impute_multivariate(&series)?;
            let mut report = io::write_csv_str(&filled);
            if let Some(out) = out {
                io::write_csv(&filled, &out)?;
                report.push_str(&format!("written to {}\n", out.display()));
            }
            Ok(report)
        }
        Command::Datasets { dir } => {
            std::fs::create_dir_all(&dir).map_err(TsError::from)?;
            let mut report = String::new();
            for ds in PaperDataset::ALL {
                let path =
                    dir.join(format!("{}.csv", ds.info().name.to_lowercase().replace(' ', "_")));
                io::write_csv(&ds.load(), &path)?;
                report.push_str(&format!("wrote {}\n", path.display()));
            }
            Ok(report)
        }
    }
}

/// CSV reader that accepts `NaN` cells (the imputation input format).
/// `mc_tslib::io` already parses `NaN` via Rust's float parser; this alias
/// exists to document the contract at the call site.
fn read_csv_with_nans(path: &Path) -> Result<MultivariateSeries> {
    io::read_csv(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parse_forecast_with_flags() {
        let cmd = parse(&strings(&[
            "forecast",
            "data.csv",
            "--horizon",
            "12",
            "--method",
            "vc",
            "--samples",
            "7",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Forecast {
                input: "data.csv".into(),
                horizon: 12,
                method: "vc".into(),
                samples: 7,
                out: None,
            }
        );
    }

    #[test]
    fn parse_defaults_and_errors() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert!(parse(&strings(&["forecast", "x.csv"])).is_err()); // missing horizon
        assert!(parse(&strings(&["forecast", "--horizon", "3"])).is_err()); // missing path
        assert!(parse(&strings(&["explode"])).is_err());
        assert!(parse(&strings(&["forecast", "x.csv", "--horizon"])).is_err()); // dangling flag
    }

    #[test]
    fn build_method_covers_all_names() {
        for m in ["di", "vi", "vc", "llmtime", "arima", "lstm", "var", "kalman"] {
            assert!(build_method(m, 2).is_ok(), "{m}");
        }
        assert!(build_method("nope", 2).is_err());
    }

    #[test]
    fn end_to_end_forecast_and_detect() {
        // Round-trip a synthetic CSV through the CLI functions.
        let dir = std::env::temp_dir().join("mc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("series.csv");
        let xs: Vec<f64> =
            (0..80).map(|t| 10.0 + (t as f64 * std::f64::consts::PI / 8.0).sin() * 3.0).collect();
        let series = MultivariateSeries::from_columns(vec!["x".into()], vec![xs]).unwrap();
        io::write_csv(&series, &csv).unwrap();

        let out = dir.join("fc.csv");
        let report = run(Command::Forecast {
            input: csv.clone(),
            horizon: 6,
            method: "vi".into(),
            samples: 2,
            out: Some(out.clone()),
        })
        .unwrap();
        assert!(report.contains("MultiCast (VI)"));
        let fc = io::read_csv(&out).unwrap();
        assert_eq!(fc.len(), 6);

        let detect = run(Command::Detect { input: csv.clone(), column: None }).unwrap();
        assert!(detect.contains("x: anomalies"));
        assert!(run(Command::Detect { input: csv.clone(), column: Some("nope".into()) }).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_impute_with_nan_cells() {
        let dir = std::env::temp_dir().join("mc_cli_impute_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("gappy.csv");
        let mut text = String::from("v\n");
        for t in 0..60 {
            if (25..30).contains(&t) {
                text.push_str("NaN\n");
            } else {
                text.push_str(&format!("{}\n", 5.0 + (t as f64 * 0.4).sin()));
            }
        }
        std::fs::write(&csv, text).unwrap();
        let report = run(Command::Impute { input: csv, out: None }).unwrap();
        assert!(!report.contains("NaN"), "all gaps must be filled:\n{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn datasets_export() {
        let dir = std::env::temp_dir().join("mc_cli_datasets_test");
        let report = run(Command::Datasets { dir: dir.clone() }).unwrap();
        assert_eq!(report.lines().count(), 3);
        assert!(dir.join("gas_rate.csv").exists());
        assert!(dir.join("electricity.csv").exists());
        assert!(dir.join("weather.csv").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
