//! Minimal offline stand-in for the `rand` crate (API subset used by the
//! MultiCast workspace): StdRng + SeedableRng + Rng::{gen, gen_range} +
//! seq::SliceRandom::shuffle. SplitMix64-based, deterministic.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub trait Rng: RngCore {
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    fn gen_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

pub trait FromRng {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for u64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub trait RangeSample: Sized {
    fn sample_range<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

impl RangeSample for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        let u = f64::from_rng(rng);
        range.start + u * (range.end - range.start)
    }
}

impl RangeSample for usize {
    fn sample_range<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        let span = range.end - range.start;
        range.start + (rng.next_u64() % span as u64) as usize
    }
}

pub mod rngs {
    /// SplitMix64 stand-in for rand's StdRng.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state: state.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(1) }
        }
    }
}

pub mod seq {
    use super::RngCore;

    pub trait SliceRandom {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}
