//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset `mc-bench`'s benches use — `Criterion`,
//! `bench_function` / `bench_with_input`, `benchmark_group` (with
//! `sample_size` and `finish`), `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — as a plain wall-clock
//! runner. Numbers are indicative only; the point is that `cargo bench`
//! compiles and runs without the registry.

use std::fmt::Display;
use std::time::Instant;

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Identifies one parameterized benchmark case.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { name: format!("{}/{}", name.into(), parameter) }
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    samples: usize,
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f` over a few samples; each sample runs the closure long
    /// enough to exceed the clock's resolution.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        self.per_iter_ns.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            let mut iters = 0u64;
            while start.elapsed().as_micros() < 500 {
                black_box(f());
                iters += 1;
            }
            self.per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters.max(1) as f64);
        }
        self.per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    }
}

fn run_one(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { samples, per_iter_ns: Vec::new() };
    f(&mut b);
    let median = b.per_iter_ns.get(b.per_iter_ns.len() / 2).copied().unwrap_or(0.0);
    println!("bench {name:<48} {median:>12.0} ns/iter");
}

/// Top-level benchmark driver (stand-in for criterion's `Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as the benchmark `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, 5, |b| f(b));
        self
    }

    /// Runs `f` with `input` as the benchmark `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.name, 5, |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, prefix: name.into(), samples: 5 }
    }
}

/// A named group sharing sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, 20);
        self
    }

    /// Runs `f` as `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, mut f: F) {
        run_one(&format!("{}/{}", self.prefix, name), self.samples, |b| f(b));
    }

    /// Runs `f` with `input` as `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&format!("{}/{}", self.prefix, id.name), self.samples, |b| f(b, input));
    }

    /// Ends the group (no-op; parity with criterion).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
