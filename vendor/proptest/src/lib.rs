//! Offline stand-in for the `proptest` crate.
//!
//! Covers the API subset the MultiCast workspace uses: the `proptest!`
//! macro (with `#![proptest_config(..)]`), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, numeric-range strategies,
//! `any::<T>()`, tuple strategies, `prop::collection::vec`, and
//! character-class regex string strategies like `"[0-9,]{0,120}"`.
//!
//! Inputs are drawn from a deterministic SplitMix64 stream seeded from the
//! test's module path, so failures reproduce run-to-run. There is no
//! shrinking: a failing case reports the values via the assertion message.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic input stream (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An rng seeded from the fully qualified test name, so every test
    /// gets a distinct but reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h | 1 }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message describes the violation.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
}

/// Generates values of `Self::Value` from the deterministic stream.
pub trait Strategy {
    /// The type of generated inputs.
    type Value;
    /// Draws one input.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Marker returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Strategy for "any value of `T`" (full value range; strings mix ASCII
/// with non-ASCII codepoints).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_uint!(u8, u16, u32, u64, usize);

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_int!(i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        // Bias toward ASCII but include arbitrary scalar values.
        if rng.below(4) < 3 {
            (0x20 + rng.below(0x5f)) as u8 as char
        } else {
            loop {
                if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                    return c;
                }
            }
        }
    }
}

impl Strategy for Any<String> {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(48) as usize;
        let chars = Any::<char>(PhantomData);
        (0..len).map(|_| chars.generate(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Inclusive-exclusive element-count bounds.
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { min: r.start, max: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    /// Strategy for vectors of `elem` values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A vector strategy with element counts drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

mod regex_gen;

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

/// Per-test configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases to execute per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut executed = 0u32;
                let mut attempts = 0u32;
                let max_attempts = config.cases.saturating_mul(16).max(256);
                while executed < config.cases {
                    assert!(
                        attempts < max_attempts,
                        "proptest: too many rejected cases in {}",
                        stringify!($name)
                    );
                    attempts += 1;
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => executed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed in {}: {}", stringify!($name), msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case (with an optional formatted message) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "{} == {} failed: {:?} vs {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, "{:?} vs {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Rejects the current inputs (drawing a fresh case) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The glob-importable surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Module alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}
