//! Generator for the character-class regex subset used as string
//! strategies (e.g. `"[0-9,]{0,120}"`).
//!
//! Supported syntax: literal characters, escapes (`\d`, `\w`, `\s`,
//! `\\`-escaped metacharacters), `.`, character classes with ranges
//! (`[a-z0-9,]`), and the quantifiers `{m}`, `{m,n}`, `*`, `+`, `?`.
//! Groups and alternation are not supported and panic with a clear
//! message — extend this module if a test needs them.

use crate::TestRng;

enum Atom {
    /// Choose uniformly from this set of characters.
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for p in &pieces {
        let span = (p.max - p.min + 1) as u64;
        let n = p.min + rng.below(span) as usize;
        let Atom::Class(chars) = &p.atom;
        for _ in 0..n {
            out.push(chars[rng.below(chars.len() as u64) as usize]);
        }
    }
    out
}

fn printable_ascii() -> Vec<char> {
    (0x20u8..0x7f).map(char::from).collect()
}

fn escape_class(c: char) -> Vec<char> {
    match c {
        'd' => ('0'..='9').collect(),
        'w' => ('a'..='z').chain('A'..='Z').chain('0'..='9').chain(['_']).collect(),
        's' => vec![' ', '\t', '\n'],
        other => vec![other],
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated class in regex {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if chars[j] == '\\' && j + 1 < close {
                        set.extend(escape_class(chars[j + 1]));
                        j += 2;
                    } else if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "inverted range in regex {pattern:?}");
                        set.extend(lo..=hi);
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in regex {pattern:?}");
                i = close + 1;
                Atom::Class(set)
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "trailing backslash in regex {pattern:?}");
                let set = escape_class(chars[i + 1]);
                i += 2;
                Atom::Class(set)
            }
            '.' => {
                i += 1;
                Atom::Class(printable_ascii())
            }
            '(' | ')' | '|' => {
                panic!("regex strategy subset does not support groups/alternation: {pattern:?}")
            }
            c => {
                i += 1;
                Atom::Class(vec![c])
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unterminated quantifier in regex {pattern:?}"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => {
                            let m = m.trim().parse().expect("quantifier min");
                            let n = n.trim().parse().expect("quantifier max");
                            (m, n)
                        }
                        None => {
                            let m: usize = body.trim().parse().expect("quantifier count");
                            (m, m)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted quantifier in regex {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}
