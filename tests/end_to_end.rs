//! Cross-crate integration tests: the full MultiCast pipeline end to end
//! on every paper dataset and every method, with fast configurations.

use multicast_suite::prelude::*;

fn fast_config(seed: u64) -> ForecastConfig {
    ForecastConfig { samples: 2, seed, ..ForecastConfig::default() }
}

#[test]
fn every_method_forecasts_every_dataset() {
    for ds in PaperDataset::ALL {
        let series = ds.load();
        let (train, test) = holdout_split(&series, 0.1).unwrap();
        let horizon = test.len();

        for mux in MuxMethod::ALL {
            let mut f = MultiCastForecaster::new(mux, fast_config(1));
            let fc = f.forecast(&train, horizon).unwrap();
            assert_eq!(fc.len(), horizon, "{ds} {mux:?}");
            assert_eq!(fc.dims(), series.dims());
            for d in 0..fc.dims() {
                assert!(
                    fc.column(d).unwrap().iter().all(|v| v.is_finite()),
                    "{ds} {mux:?} dim {d} produced non-finite values"
                );
            }
        }

        let mut llmtime = LlmTimeForecaster::new(fast_config(2));
        let fc = MultivariateForecaster::forecast(&mut llmtime, &train, horizon).unwrap();
        assert_eq!(fc.len(), horizon);

        let mut arima = PerDimension(ArimaForecaster::default());
        let fc = arima.forecast(&train, horizon).unwrap();
        assert_eq!(fc.len(), horizon);
        assert!(fc.columns().iter().flatten().all(|v| v.is_finite()));
    }
}

#[test]
fn lstm_forecasts_gas_rate_quickly() {
    // Small network: integration smoke, the full config runs in benches.
    let series = gas_rate();
    let (train, test) = holdout_split(&series, 0.1).unwrap();
    let mut lstm = LstmForecaster::new(LstmConfig {
        hidden: 24,
        epochs: 8,
        ..LstmConfig::default()
    });
    let fc = lstm.forecast(&train, test.len()).unwrap();
    assert_eq!(fc.len(), test.len());
    assert_eq!(fc.dims(), 2);
}

#[test]
fn sax_variants_forecast_gas_rate() {
    use multicast_suite::sax::alphabet::{SaxAlphabet, SaxAlphabetKind};
    use multicast_suite::sax::encoder::SaxConfig;

    let series = gas_rate();
    let (train, test) = holdout_split(&series, 0.1).unwrap();
    for kind in [SaxAlphabetKind::Alphabetic, SaxAlphabetKind::Digital] {
        for segment_len in [3usize, 6, 9] {
            let cfg = SaxForecastConfig {
                sax: SaxConfig {
                    segment_len,
                    alphabet: SaxAlphabet::new(kind, 5).unwrap(),
                },
                base: fast_config(3),
            };
            let mut f = SaxMultiCastForecaster::new(cfg);
            let fc = f.forecast(&train, test.len()).unwrap();
            assert_eq!(fc.len(), test.len(), "{kind:?} seg {segment_len}");
            assert!(f.last_cost.unwrap().generated_tokens > 0);
        }
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let series = electricity();
    let (train, test) = holdout_split(&series, 0.1).unwrap();
    let run = || {
        let mut f = MultiCastForecaster::new(MuxMethod::ValueConcat, fast_config(42));
        f.forecast(&train, test.len()).unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn forecasts_are_scored_against_reference_floor() {
    // On every dataset, at least one LLM-based method must beat the
    // "predict the global mean" floor on at least one dimension — a very
    // weak bar that catches gross decode/scale bugs.
    for ds in PaperDataset::ALL {
        let series = ds.load();
        let (train, test) = holdout_split(&series, 0.15).unwrap();
        let mut any_win = false;
        for mux in MuxMethod::ALL {
            let mut f = MultiCastForecaster::new(
                mux,
                ForecastConfig { samples: 5, ..fast_config(5) },
            );
            let fc = f.forecast(&train, test.len()).unwrap();
            for d in 0..series.dims() {
                let col = train.column(d).unwrap();
                let mean = col.iter().sum::<f64>() / col.len() as f64;
                let err = rmse(test.column(d).unwrap(), fc.column(d).unwrap()).unwrap();
                let floor = rmse(test.column(d).unwrap(), &vec![mean; test.len()]).unwrap();
                // 10 % slack: the floor only guards against gross decode or
                // scaling bugs, not forecasting skill on every dimension.
                if err < floor * 1.1 {
                    any_win = true;
                }
            }
        }
        assert!(any_win, "{ds}: no MultiCast variant came near the mean floor on any dimension");
    }
}

#[test]
fn cost_accounting_scales_with_samples() {
    let series = gas_rate();
    let (train, _) = holdout_split(&series, 0.1).unwrap();
    let tokens = |samples: usize| {
        let mut f = MultiCastForecaster::new(
            MuxMethod::ValueInterleave,
            ForecastConfig { samples, ..fast_config(7) },
        );
        f.forecast(&train, 10).unwrap();
        f.last_cost.unwrap().total_tokens()
    };
    let t1 = tokens(1);
    let t2 = tokens(2);
    let t4 = tokens(4);
    // Tokens grow roughly linearly in the number of samples (each sample
    // re-reads the prompt and generates its own continuation).
    assert!(t2 > t1 && t4 > t2, "token counts must grow: {t1} {t2} {t4}");
    let ratio = t4 as f64 / t1 as f64;
    assert!((3.0..5.0).contains(&ratio), "4 samples ≈ 4x tokens, got ratio {ratio:.2}");
}
