//! Cross-crate integration tests: the full MultiCast pipeline end to end
//! on every paper dataset and every method, with fast configurations.

use multicast_suite::prelude::*;

fn fast_config(seed: u64) -> ForecastConfig {
    ForecastConfig { samples: 2, seed, ..ForecastConfig::default() }
}

#[test]
fn every_method_forecasts_every_dataset() {
    for ds in PaperDataset::ALL {
        let series = ds.load();
        let (train, test) = holdout_split(&series, 0.1).unwrap();
        let horizon = test.len();

        for mux in MuxMethod::ALL {
            let mut f = MultiCastForecaster::new(mux, fast_config(1));
            let fc = f.forecast(&train, horizon).unwrap();
            assert_eq!(fc.len(), horizon, "{ds} {mux:?}");
            assert_eq!(fc.dims(), series.dims());
            for d in 0..fc.dims() {
                assert!(
                    fc.column(d).unwrap().iter().all(|v| v.is_finite()),
                    "{ds} {mux:?} dim {d} produced non-finite values"
                );
            }
        }

        let mut llmtime = LlmTimeForecaster::new(fast_config(2));
        let fc = MultivariateForecaster::forecast(&mut llmtime, &train, horizon).unwrap();
        assert_eq!(fc.len(), horizon);

        let mut arima = PerDimension(ArimaForecaster::default());
        let fc = arima.forecast(&train, horizon).unwrap();
        assert_eq!(fc.len(), horizon);
        assert!(fc.columns().iter().flatten().all(|v| v.is_finite()));
    }
}

#[test]
fn lstm_forecasts_gas_rate_quickly() {
    // Small network: integration smoke, the full config runs in benches.
    let series = gas_rate();
    let (train, test) = holdout_split(&series, 0.1).unwrap();
    let mut lstm =
        LstmForecaster::new(LstmConfig { hidden: 24, epochs: 8, ..LstmConfig::default() });
    let fc = lstm.forecast(&train, test.len()).unwrap();
    assert_eq!(fc.len(), test.len());
    assert_eq!(fc.dims(), 2);
}

#[test]
fn sax_variants_forecast_gas_rate() {
    use multicast_suite::sax::alphabet::{SaxAlphabet, SaxAlphabetKind};
    use multicast_suite::sax::encoder::SaxConfig;

    let series = gas_rate();
    let (train, test) = holdout_split(&series, 0.1).unwrap();
    for kind in [SaxAlphabetKind::Alphabetic, SaxAlphabetKind::Digital] {
        for segment_len in [3usize, 6, 9] {
            let cfg = SaxForecastConfig {
                sax: SaxConfig { segment_len, alphabet: SaxAlphabet::new(kind, 5).unwrap() },
                base: fast_config(3),
            };
            let mut f = SaxMultiCastForecaster::new(cfg);
            let fc = f.forecast(&train, test.len()).unwrap();
            assert_eq!(fc.len(), test.len(), "{kind:?} seg {segment_len}");
            assert!(f.last_cost.unwrap().generated_tokens > 0);
        }
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let series = electricity();
    let (train, test) = holdout_split(&series, 0.1).unwrap();
    let run = || {
        let mut f = MultiCastForecaster::new(MuxMethod::ValueConcat, fast_config(42));
        f.forecast(&train, test.len()).unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn forecasts_are_scored_against_reference_floor() {
    // On every dataset, at least one LLM-based method must beat the
    // "predict the global mean" floor on at least one dimension — a very
    // weak bar that catches gross decode/scale bugs.
    for ds in PaperDataset::ALL {
        let series = ds.load();
        let (train, test) = holdout_split(&series, 0.15).unwrap();
        let mut any_win = false;
        for mux in MuxMethod::ALL {
            let mut f =
                MultiCastForecaster::new(mux, ForecastConfig { samples: 5, ..fast_config(5) });
            let fc = f.forecast(&train, test.len()).unwrap();
            for d in 0..series.dims() {
                let col = train.column(d).unwrap();
                let mean = col.iter().sum::<f64>() / col.len() as f64;
                let err = rmse(test.column(d).unwrap(), fc.column(d).unwrap()).unwrap();
                let floor = rmse(test.column(d).unwrap(), &vec![mean; test.len()]).unwrap();
                // 10 % slack: the floor only guards against gross decode or
                // scaling bugs, not forecasting skill on every dimension.
                if err < floor * 1.1 {
                    any_win = true;
                }
            }
        }
        assert!(any_win, "{ds}: no MultiCast variant came near the mean floor on any dimension");
    }
}

#[test]
fn cost_accounting_scales_with_samples() {
    let series = gas_rate();
    let (train, _) = holdout_split(&series, 0.1).unwrap();
    let cost = |samples: usize| {
        let mut f = MultiCastForecaster::new(
            MuxMethod::ValueInterleave,
            ForecastConfig { samples, ..fast_config(7) },
        );
        f.forecast(&train, 10).unwrap();
        f.last_cost.unwrap()
    };
    let c1 = cost(1);
    let c2 = cost(2);
    let c4 = cost(4);
    // Generated tokens grow roughly linearly in the number of samples
    // (each sample produces its own continuation)...
    let (g1, g2, g4) = (c1.generated_tokens, c2.generated_tokens, c4.generated_tokens);
    assert!(g2 > g1 && g4 > g2, "generated tokens must grow: {g1} {g2} {g4}");
    let ratio = g4 as f64 / g1 as f64;
    assert!((3.0..5.0).contains(&ratio), "4 samples ≈ 4x generated tokens, got ratio {ratio:.2}");
    // ...while the prompt is conditioned once per forecast, no matter how
    // many samples are drawn from the frozen backend.
    assert_eq!(c1.prompt_tokens, c4.prompt_tokens, "prompt cost must not scale with samples");
    assert!(c1.prompt_tokens > 0);
}
