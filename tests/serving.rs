//! Determinism, stress and cost-conservation suite for the concurrent
//! serving layer (`multicast_core::serve`).
//!
//! The scheduler's contract is that concurrency is invisible to the
//! numbers: a request's forecast depends only on its own configuration and
//! seeds, never on the worker-pool width, the submission order, or what
//! other requests share its frozen context. These tests pin that down with
//! `f64::to_bits` comparisons, then stress a 32-request mixed batch (four
//! codecs, varying horizons/seeds/sample counts, one request rigged to
//! fail its quorum and one rigged to panic) and audit the per-request cost
//! attribution against the ledger metered inside the model boundary.

use std::sync::Arc;

use mc_datasets::generators::sinusoids;
use mc_obs::{Counter, Observer};
use mc_sax::alphabet::{SaxAlphabet, SaxAlphabetKind};
use mc_sax::encoder::SaxConfig;
use mc_tslib::error::TsError;
use mc_tslib::forecast::MultivariateForecaster;
use mc_tslib::series::MultivariateSeries;
use multicast_core::robust::{DefectClass, FaultSpec, RobustPolicy, SampleSource};
use multicast_core::serve::ServeHandle;
use multicast_core::{
    serve_all, serve_all_observed, CodecChoice, ForecastConfig, ForecastRequest,
    MultiCastForecaster, MuxMethod, Priority, RequestId, ServeConfig, ServeRun,
};

fn series(n: usize, phase: f64, offset: f64) -> MultivariateSeries {
    let a = sinusoids(n, &[(1.0, 12.0, phase), (0.3, 5.0, 0.4)]);
    let b: Vec<f64> = a.iter().map(|&v| offset + 2.0 * v).collect();
    MultivariateSeries::from_columns(vec!["a".into(), "b".into()], vec![a, b]).unwrap()
}

fn assert_bit_identical(x: &MultivariateSeries, y: &MultivariateSeries, tag: &str) {
    assert_eq!(x.len(), y.len(), "{tag}: horizon");
    assert_eq!(x.dims(), y.dims(), "{tag}: dims");
    for d in 0..x.dims() {
        for (t, (a, b)) in x.column(d).unwrap().iter().zip(y.column(d).unwrap()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{tag}: dim {d} step {t}: {a} vs {b}");
        }
    }
}

/// Deterministic Fisher–Yates over a SplitMix64 stream — no RNG crate
/// needed, and the permutation is stable across platforms.
fn shuffled<T: Clone>(items: &[T], mut seed: u64) -> Vec<T> {
    let mut next = move || {
        seed = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut out = items.to_vec();
    for i in (1..out.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

fn digit_request(
    train: MultivariateSeries,
    horizon: usize,
    method: MuxMethod,
    seed: u64,
    samples: usize,
) -> ForecastRequest {
    let config = ForecastConfig { samples, seed, ..ForecastConfig::default() };
    ForecastRequest::digit(train, horizon, method, config)
}

/// Satellite: a fixed-seed request is bit-identical whether run alone
/// (through the sequential engine), through `serve_all` with 1 worker, or
/// through `serve_all` with 8 workers under a shuffled submission order.
#[test]
fn fixed_seed_request_is_bit_identical_across_schedulers() {
    let train = series(72, 0.0, 10.0);
    let target = digit_request(train.clone(), 6, MuxMethod::ValueInterleave, 42, 4);

    // Reference: the sequential engine path (MultiCastForecaster).
    let mut solo = MultiCastForecaster::new(MuxMethod::ValueInterleave, target.config);
    let reference = solo.forecast(&train, 6).unwrap();
    let reference_report = solo.last_report.unwrap();

    // A batch with neighbors competing for the worker pool — some sharing
    // the target's frozen context (same train/codec), some not.
    let mut requests = vec![target.clone()];
    for (i, horizon) in [3usize, 9, 5, 7].iter().enumerate() {
        requests.push(digit_request(
            train.clone(),
            *horizon,
            MuxMethod::ValueInterleave,
            100 + i as u64,
            3,
        ));
        requests.push(digit_request(
            series(64, 0.3 * i as f64, 5.0),
            *horizon,
            MuxMethod::ValueConcat,
            200 + i as u64,
            2,
        ));
    }

    let single = serve_all(&requests, &ServeConfig::with_workers(1));
    let outcome = &single.outcomes[0];
    assert_bit_identical(&reference, outcome.forecast.as_ref().unwrap(), "1 worker");
    assert_eq!(outcome.report.as_ref().unwrap(), &reference_report, "1 worker report");

    for shuffle_seed in [1u64, 7, 31] {
        let order = shuffled(&requests, shuffle_seed);
        let position = order
            .iter()
            .position(|r| {
                r.horizon == target.horizon
                    && r.config.seed == target.config.seed
                    && r.config.samples == target.config.samples
            })
            .unwrap();
        let wide = serve_all(&order, &ServeConfig::with_workers(8));
        let outcome = &wide.outcomes[position];
        assert_eq!(outcome.id, RequestId(position));
        assert_bit_identical(
            &reference,
            outcome.forecast.as_ref().unwrap(),
            &format!("8 workers, shuffle {shuffle_seed}"),
        );
        assert_eq!(
            outcome.report.as_ref().unwrap(),
            &reference_report,
            "8 workers, shuffle {shuffle_seed}: report"
        );
    }
}

/// Every neighbor in a batch must also be scheduling-independent — not
/// just one probe request. Runs the same batch at several pool widths and
/// compares every forecast pairwise.
#[test]
fn whole_batch_is_invariant_to_worker_count() {
    let mut requests = Vec::new();
    for i in 0..6u64 {
        let method = MuxMethod::ALL[i as usize % 3];
        requests.push(digit_request(
            series(60 + 4 * i as usize, 0.1 * i as f64, 8.0),
            4 + (i as usize % 3),
            method,
            1000 + i,
            2 + (i as usize % 2),
        ));
    }
    let runs: Vec<ServeRun> =
        [1, 2, 8].iter().map(|&w| serve_all(&requests, &ServeConfig::with_workers(w))).collect();
    for run in &runs[1..] {
        for (a, b) in runs[0].outcomes.iter().zip(&run.outcomes) {
            assert_bit_identical(
                a.forecast.as_ref().unwrap(),
                b.forecast.as_ref().unwrap(),
                &format!("request {:?}", a.id),
            );
            assert_eq!(a.report, b.report, "request {:?}", a.id);
            assert_eq!(a.cost, b.cost, "request {:?}", a.id);
        }
    }
}

/// Builds the 32-request mixed stress batch: four distinct histories,
/// all three digit multiplexers plus SAX, varying horizons, seeds and
/// sample counts. Request 7 is rigged to fail its quorum (every
/// continuation corrupted, no retries left); request 19 panics on its
/// first attempt of sample 0 and recovers on retry.
fn stress_batch() -> Vec<ForecastRequest> {
    let trains: Vec<MultivariateSeries> =
        (0..4).map(|i| series(56 + 8 * i, 0.2 * i as f64, 6.0 + i as f64)).collect();
    let sax = SaxConfig {
        segment_len: 3,
        alphabet: SaxAlphabet::new(SaxAlphabetKind::Alphabetic, 5).unwrap(),
    };
    let mut requests = Vec::with_capacity(32);
    for i in 0..32usize {
        let codec = match i % 4 {
            0 => CodecChoice::Digit(MuxMethod::ValueInterleave),
            1 => CodecChoice::Digit(MuxMethod::ValueConcat),
            2 => CodecChoice::Digit(MuxMethod::DigitInterleave),
            _ => CodecChoice::Sax(sax),
        };
        let config = ForecastConfig {
            samples: 2 + i % 3,
            seed: 5000 + i as u64,
            ..ForecastConfig::default()
        };
        let mut request = ForecastRequest {
            train: trains[i / 8].clone(),
            horizon: 3 + i % 6,
            codec,
            config,
            source: SampleSource::Model,
            priority: Priority::Normal,
            client: 0,
        };
        if i == 7 {
            // Every attempt of every sample corrupted, one retry: the
            // quorum fails and the policy degrades to seasonal-naive.
            request.config.robust =
                RobustPolicy { max_retries: 1, min_valid_samples: 2, ..RobustPolicy::default() };
            request.source = SampleSource::FaultInjected(FaultSpec::with_rate(1.0, 77));
        }
        if i == 19 {
            request.source = SampleSource::FaultInjected(FaultSpec {
                rate: 0.0,
                seed: 0,
                panic_sample: Some(0),
                latency_tokens: 0,
            });
        }
        requests.push(request);
    }
    requests
}

/// Satellite: the 32-request stress batch — per-request isolation, every
/// request resolves, and exact token-cost conservation against the
/// metered ledgers.
#[test]
fn stress_batch_isolates_faults_and_conserves_cost() {
    let requests = stress_batch();
    let run = serve_all(&requests, &ServeConfig::with_workers(8));
    assert_eq!(run.outcomes.len(), 32);

    // Every request resolves to a forecast of its requested shape — the
    // degraded request through its fallback, the panicked one after retry.
    for (request, outcome) in requests.iter().zip(&run.outcomes) {
        let fc = outcome
            .forecast
            .as_ref()
            .unwrap_or_else(|e| panic!("request {:?} failed: {e}", outcome.id));
        assert_eq!(fc.len(), request.horizon, "request {:?}", outcome.id);
        assert_eq!(fc.dims(), request.train.dims(), "request {:?}", outcome.id);
        assert!(fc.columns().iter().flatten().all(|v| v.is_finite()), "request {:?}", outcome.id);
    }

    // The rigged requests fail/recover exactly as configured...
    let degraded = run.outcomes[7].report.as_ref().unwrap();
    assert!(degraded.degraded(), "request 7 must hit the quorum fallback");
    assert_eq!(degraded.valid_samples, 0);
    let panicked = run.outcomes[19].report.as_ref().unwrap();
    assert_eq!(panicked.defect_count(DefectClass::Panicked), 1, "request 19 panics once");
    assert!(!panicked.degraded(), "request 19 recovers on retry");
    assert_eq!(panicked.valid_samples, panicked.requested_samples);

    // ...and nobody else even notices: every other request is pristine.
    for (i, outcome) in run.outcomes.iter().enumerate() {
        if i == 7 || i == 19 {
            continue;
        }
        let report = outcome.report.as_ref().unwrap();
        assert!(!report.degraded(), "request {i} must not degrade");
        assert_eq!(report.total_defects(), 0, "request {i} must see no defects");
        assert_eq!(report.retries_used, 0, "request {i} must not retry");
        assert_eq!(report.valid_samples, report.requested_samples, "request {i}");
    }

    // Isolation the strong way: clean requests are bit-identical to
    // running alone, faulty neighbors or not.
    for probe in [0usize, 6, 8, 18, 20] {
        let request = &requests[probe];
        let CodecChoice::Digit(method) = request.codec else { continue };
        let mut solo = MultiCastForecaster::new(method, request.config);
        let reference = solo.forecast(&request.train, request.horizon).unwrap();
        assert_bit_identical(
            &reference,
            run.outcomes[probe].forecast.as_ref().unwrap(),
            &format!("request {probe} vs solo"),
        );
    }

    assert_cost_conserved(&run);
}

/// Exact token conservation: summed per-request attribution equals the
/// ledgers metered inside the model boundary — prompt charged exactly once
/// per context, generated tokens neither lost nor double-charged.
fn assert_cost_conserved(run: &ServeRun) {
    let attributed = run.attributed_cost();
    let metered = run.metered_cost();
    assert_eq!(attributed.prompt_tokens, metered.prompt_tokens, "prompt tokens conserved");
    assert_eq!(attributed.generated_tokens, metered.generated_tokens, "generated tokens conserved");
    assert_eq!(attributed.work_units, metered.work_units, "work units conserved");

    for (c, context) in run.contexts.iter().enumerate() {
        let members: Vec<_> = run.outcomes.iter().filter(|o| o.context == Some(c)).collect();
        assert_eq!(members.len(), context.requests, "context {c} membership");
        // Prompt charged exactly once per context, to exactly one member.
        let prompt_charges: Vec<u64> = members.iter().map(|o| o.cost.prompt_tokens).collect();
        assert_eq!(
            prompt_charges.iter().sum::<u64>(),
            context.prompt_cost.prompt_tokens,
            "context {c}: prompt amortized once"
        );
        assert_eq!(
            prompt_charges.iter().filter(|&&p| p > 0).count(),
            1,
            "context {c}: exactly one owner pays the prompt"
        );
        // Generated tokens attributed to members equal the context ledger.
        let generated: u64 = members.iter().map(|o| o.cost.generated_tokens).sum();
        assert_eq!(
            generated, context.metered.generated_tokens,
            "context {c}: generated tokens conserved"
        );
    }
}

/// The same conservation audit under heavy (non-panic) fault injection:
/// corrupted draws are still paid for, retries included, so the invariant
/// must survive the chaos drill.
#[test]
fn cost_conservation_survives_fault_injection() {
    let train = series(64, 0.0, 9.0);
    let mut requests = Vec::new();
    for i in 0..6u64 {
        let mut request = digit_request(train.clone(), 5, MuxMethod::ValueInterleave, 9000 + i, 3);
        request.source = SampleSource::FaultInjected(FaultSpec::with_rate(0.5, i));
        requests.push(request);
    }
    let run = serve_all(&requests, &ServeConfig::with_workers(4));
    for outcome in &run.outcomes {
        assert!(outcome.forecast.is_ok(), "request {:?} must resolve", outcome.id);
    }
    assert_cost_conserved(&run);
    // The drill actually exercised the retry path somewhere.
    let retries: usize =
        run.outcomes.iter().filter_map(|o| o.report.as_ref()).map(|r| r.retries_used).sum();
    assert!(retries > 0, "rate-0.5 corruption should force retries");
}

/// Tentpole acceptance: with fixed seeds and the logical clock, the
/// canonical trace export is *byte-identical* across worker counts and
/// submission orders — concurrency is invisible to the trace exactly as
/// it is to the forecasts. Runs the full 32-request stress batch, rigged
/// faults included.
#[test]
fn canonical_trace_is_byte_identical_across_schedules() {
    let requests = stress_batch();
    let serve_traced = |order: &[ForecastRequest], workers: usize| {
        let obs = Arc::new(Observer::logical());
        serve_all_observed(order, &ServeConfig::with_workers(workers), obs.clone());
        (obs.to_jsonl(), obs.metrics().get(Counter::Attempts))
    };

    let (reference, attempts) = serve_traced(&requests, 1);
    assert!(!reference.is_empty(), "the stress batch must produce a trace");
    assert!(
        reference.lines().count() > 32,
        "more trace rows than requests: attempts, joins, resolves"
    );
    for line in reference.lines() {
        assert!(line.starts_with("{\"t\":") && line.ends_with('}'), "JSONL row: {line}");
    }

    for workers in [2usize, 4, 8] {
        let (trace, n) = serve_traced(&requests, workers);
        assert_eq!(trace, reference, "{workers} workers changed the canonical trace");
        assert_eq!(n, attempts, "{workers} workers changed the attempt count");
    }
    for shuffle_seed in [3u64, 11] {
        let order = shuffled(&requests, shuffle_seed);
        let (trace, _) = serve_traced(&order, 8);
        assert_eq!(trace, reference, "shuffle {shuffle_seed} changed the canonical trace");
    }
}

/// Tentpole acceptance: the canonical *span* export — like the event
/// trace above — is byte-identical across worker counts and submission
/// orders, and every span half pairs cleanly (no orphaned opens, no
/// double closes), rigged faults and a panicking draw included.
#[test]
fn canonical_span_export_is_byte_identical_across_schedules() {
    use mc_obs::pair_spans;
    let requests = stress_batch();
    let serve_spanned = |order: &[ForecastRequest], workers: usize| {
        let obs = Arc::new(Observer::logical());
        serve_all_observed(order, &ServeConfig::with_workers(workers), obs.clone());
        (obs.spans_to_jsonl(), obs.spans())
    };

    let (reference, spans) = serve_spanned(&requests, 1);
    assert!(!reference.is_empty(), "the stress batch must produce spans");
    for line in reference.lines() {
        assert!(line.starts_with("{\"t\":") && line.ends_with('}'), "span JSONL row: {line}");
        assert!(!line.contains("\"wall\""), "canonical spans must not leak wall stamps: {line}");
    }
    // Every span half pairs: no orphaned open, no double close — even
    // with request 19's rigged panic unwinding through a draw.
    let paired = pair_spans(&spans).expect("1-worker span stream pairs cleanly");
    assert_eq!(paired.len() * 2, spans.len(), "every half belongs to exactly one pair");
    // The whole serve-path vocabulary shows up in one stress batch.
    for kind in
        ["request", "context_fit", "attempt", "draw", "retry", "quorum", "queue_wait", "session"]
    {
        assert!(
            paired.iter().any(|p| p.kind.name() == kind),
            "stress batch must emit at least one {kind} span"
        );
    }

    for workers in [2usize, 4, 8] {
        let (jsonl, spans) = serve_spanned(&requests, workers);
        assert_eq!(jsonl, reference, "{workers} workers changed the canonical span export");
        pair_spans(&spans).expect("span stream pairs at any pool width");
    }
    for shuffle_seed in [3u64, 11] {
        let order = shuffled(&requests, shuffle_seed);
        let (jsonl, spans) = serve_spanned(&order, 8);
        assert_eq!(jsonl, reference, "shuffle {shuffle_seed} changed the canonical span export");
        pair_spans(&spans).expect("span stream pairs under shuffled submission");
    }
}

/// Satellite: `collect` with an id the handle never issued is a *typed*
/// error ([`TsError::UnknownRequest`]) — and the bad probe still flushes
/// pending work first, so valid ids submitted before it are executed, not
/// stranded.
#[test]
fn collect_unknown_id_is_typed_and_still_flushes() {
    let train = series(64, 0.0, 9.0);
    let mut handle = ServeHandle::new(ServeConfig::with_workers(2));
    let id = handle.submit(digit_request(train, 4, MuxMethod::ValueInterleave, 5, 2));
    let err = handle.collect(RequestId(17)).unwrap_err();
    assert_eq!(err, TsError::UnknownRequest { id: 17 });
    assert_eq!(
        handle.outcomes().len(),
        1,
        "the unknown-id probe must flush pending work, not strand it"
    );
    // The flushed request is collectible without re-running anything.
    assert!(handle.collect(id).unwrap().forecast.is_ok());
    // A fresh handle with nothing pending: same typed error, no flush.
    let mut empty = ServeHandle::new(ServeConfig::default());
    assert_eq!(empty.collect(RequestId(0)).unwrap_err(), TsError::UnknownRequest { id: 0 });
}

/// Satellite: deterministic shedding — under a `queue_cap`, the *sets* of
/// shed and served requests are identical across worker counts and
/// submission orders (matched by content, not submission index), and the
/// canonical trace of the overloaded batch is byte-identical too.
#[test]
fn shed_and_served_sets_are_schedule_independent() {
    // 10 requests, capacity 6: priorities cycle so the cut crosses a
    // priority boundary and must fall back to fingerprint order.
    let requests: Vec<ForecastRequest> = (0..10u64)
        .map(|i| {
            let mut request = digit_request(
                series(56 + 4 * (i as usize % 3), 0.1 * i as f64, 7.0),
                4 + (i as usize % 3),
                MuxMethod::ValueInterleave,
                3000 + i,
                2,
            );
            request.priority = match i % 3 {
                0 => Priority::Batch,
                1 => Priority::Normal,
                _ => Priority::Interactive,
            };
            request
        })
        .collect();
    let config = ServeConfig { queue_cap: Some(6), ..ServeConfig::with_workers(1) };

    // A request's fate, keyed by content fingerprint so it can be compared
    // across submission orders.
    let fates = |order: &[ForecastRequest], workers: usize| {
        let cfg = ServeConfig { workers, ..config };
        let obs = Arc::new(Observer::logical());
        let run = serve_all_observed(order, &cfg, obs.clone());
        let mut fates: Vec<(u64, bool)> = order
            .iter()
            .map(multicast_core::ForecastRequest::content_fingerprint)
            .zip(run.outcomes.iter().map(|o| o.forecast.is_ok()))
            .collect();
        fates.sort_unstable();
        (fates, obs.to_jsonl())
    };

    let (reference, trace) = fates(&requests, 1);
    let shed = reference.iter().filter(|(_, served)| !served).count();
    assert_eq!(shed, 4, "10 requests, capacity 6: exactly 4 shed");
    // Interactive requests must all survive a cut this shallow.
    for (request, (_, served)) in requests.iter().zip(requests.iter().map(|r| {
        let fp = r.content_fingerprint();
        *reference.iter().find(|(f, _)| *f == fp).unwrap()
    })) {
        if request.priority == Priority::Interactive {
            assert!(served, "interactive request shed while lower classes ran");
        }
    }

    for workers in [2usize, 8] {
        let (f, t) = fates(&requests, workers);
        assert_eq!(f, reference, "{workers} workers changed who was shed");
        assert_eq!(t, trace, "{workers} workers changed the overloaded canonical trace");
    }
    for shuffle_seed in [5u64, 23] {
        let order = shuffled(&requests, shuffle_seed);
        let (f, t) = fates(&order, 8);
        assert_eq!(f, reference, "shuffle {shuffle_seed} changed who was shed");
        assert_eq!(t, trace, "shuffle {shuffle_seed} changed the overloaded canonical trace");
    }
}

/// Tentpole: the cross-batch context cache never changes the bytes. A
/// three-wave load of mixed histories — contexts shared both within and
/// across flushes — is served through one warm `ServeHandle` (cache on)
/// and cold (cache off), across worker counts and shuffled submission
/// orders. Forecasts and per-request costs must be bit-identical
/// everywhere, the canonical trace must not move, and the warm handle
/// must actually hit its cache (one miss per distinct prompt, hits for
/// every later wave).
#[test]
fn warm_cache_serving_is_bit_identical_to_cold_across_schedules() {
    use mc_lm::cache::CacheConfig;

    let train_a = series(72, 0.0, 10.0);
    let train_b = series(64, 0.5, 3.0);
    // Unique seeds key outcomes across shuffled submission orders.
    let waves: Vec<Vec<ForecastRequest>> = (0..3)
        .map(|w| {
            vec![
                digit_request(train_a.clone(), 5, MuxMethod::ValueInterleave, 10 + w, 2),
                digit_request(train_a.clone(), 7, MuxMethod::ValueInterleave, 20 + w, 3),
                digit_request(train_b.clone(), 4, MuxMethod::ValueInterleave, 30 + w, 2),
            ]
        })
        .collect();

    // Serves every wave through one handle (flush per wave) and returns
    // outcomes keyed by request seed, the canonical trace, and stats.
    let run = |cache: bool, workers: usize, shuffle: Option<u64>| {
        let obs = Arc::new(Observer::logical());
        let config = ServeConfig {
            workers,
            cache: if cache { Some(CacheConfig::default()) } else { None },
            ..ServeConfig::default()
        };
        let mut handle = ServeHandle::with_recorder(config, obs.clone());
        let mut ids = Vec::new();
        for wave in &waves {
            let order = match shuffle {
                Some(seed) => shuffled(wave, seed),
                None => wave.clone(),
            };
            for request in &order {
                ids.push((request.config.seed, handle.submit(request.clone())));
            }
            handle.flush();
        }
        let mut outcomes: Vec<(u64, MultivariateSeries, mc_lm::cost::InferenceCost)> = ids
            .into_iter()
            .map(|(seed, id)| {
                let outcome = handle.collect(id).expect("submitted id collects");
                (seed, outcome.forecast.expect("warm/cold load never errors"), outcome.cost)
            })
            .collect();
        outcomes.sort_by_key(|&(seed, ..)| seed);
        (outcomes, obs.to_jsonl(), handle.cache_stats())
    };

    let (cold, cold_trace, cold_stats) = run(false, 4, None);
    assert!(cold_stats.is_none(), "cache off means no stats");
    let (warm, warm_trace, warm_stats) = run(true, 4, None);

    // The warm handle really was warm: two distinct prompts fit once
    // each, every later wave hit, nothing was evicted.
    let stats = warm_stats.expect("cache on exposes stats");
    assert_eq!(
        (stats.misses, stats.hits, stats.insertions, stats.evictions),
        (2, 4, 2, 0),
        "2 prompts x 3 waves: one miss each, hits for the rest"
    );

    assert_eq!(warm_trace, cold_trace, "the cache leaked into the canonical trace");
    for ((sa, fa, ca), (sb, fb, cb)) in cold.iter().zip(&warm) {
        assert_eq!(sa, sb);
        assert_bit_identical(fa, fb, &format!("warm vs cold, seed {sa}"));
        assert_eq!(ca, cb, "warm cost accounting diverged from cold, seed {sa}");
    }

    // And neither worker count nor submission order moves any byte,
    // warm or cold.
    for workers in [1usize, 8] {
        for cache in [false, true] {
            let (outcomes, trace, _) = run(cache, workers, None);
            assert_eq!(trace, cold_trace, "{workers} workers, cache {cache}: trace moved");
            for ((sa, fa, ca), (sb, fb, cb)) in cold.iter().zip(&outcomes) {
                assert_eq!(sa, sb);
                assert_bit_identical(fa, fb, &format!("{workers} workers, cache {cache}"));
                assert_eq!(ca, cb, "{workers} workers, cache {cache}: cost moved, seed {sa}");
            }
        }
    }
    for shuffle_seed in [3u64, 17] {
        let (outcomes, trace, _) = run(true, 4, Some(shuffle_seed));
        assert_eq!(trace, cold_trace, "shuffle {shuffle_seed} moved the warm trace");
        for ((sa, fa, _), (sb, fb, _)) in cold.iter().zip(&outcomes) {
            assert_eq!(sa, sb);
            assert_bit_identical(fa, fb, &format!("warm shuffle {shuffle_seed}"));
        }
    }
}

/// Context sharing is what the scheduler exists for: requests with the
/// same history and codec — regardless of horizon — must share one frozen
/// context, and requests with different prompts must not.
#[test]
fn context_sharing_follows_prompts_not_horizons() {
    let train_a = series(60, 0.0, 7.0);
    let train_b = series(60, 0.5, 3.0);
    let requests = vec![
        digit_request(train_a.clone(), 4, MuxMethod::ValueInterleave, 1, 2),
        digit_request(train_a.clone(), 9, MuxMethod::ValueInterleave, 2, 2),
        digit_request(train_a.clone(), 6, MuxMethod::ValueInterleave, 3, 2),
        digit_request(train_b, 4, MuxMethod::ValueInterleave, 4, 2),
        digit_request(train_a, 4, MuxMethod::ValueConcat, 5, 2),
    ];
    let run = serve_all(&requests, &ServeConfig::with_workers(4));
    assert_eq!(run.contexts.len(), 3, "three distinct prompts");
    assert_eq!(run.outcomes[0].context, run.outcomes[1].context);
    assert_eq!(run.outcomes[0].context, run.outcomes[2].context);
    assert_ne!(run.outcomes[0].context, run.outcomes[3].context);
    assert_ne!(run.outcomes[0].context, run.outcomes[4].context);
    let shared = run.outcomes[0].context.unwrap();
    assert_eq!(run.contexts[shared].requests, 3);
    assert_cost_conserved(&run);
}
