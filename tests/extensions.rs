//! Integration tests for the beyond-the-paper extensions: prediction
//! intervals, the zero-shot task suite, the extended classical baselines
//! and the ensemble backend — all through the public API.

use multicast_suite::baselines::{Holt, HoltWinters, Ses, VarForecaster};
use multicast_suite::core::{bands_for, forecast_with_bands};
use multicast_suite::prelude::*;
use multicast_suite::tasks::imputation::linear_interpolate;

#[test]
fn prediction_bands_wrap_the_median_on_every_dataset() {
    for ds in PaperDataset::ALL {
        let series = ds.load();
        let (train, test) = holdout_split(&series, 0.1).unwrap();
        let config = ForecastConfig { samples: 7, ..ForecastConfig::default() };
        let bands =
            forecast_with_bands(MuxMethod::ValueInterleave, config, &train, test.len(), 0.8)
                .unwrap();
        assert_eq!(bands.median.len(), series.dims());
        let mut width = 0.0;
        for d in 0..series.dims() {
            for t in 0..test.len() {
                assert!(bands.lower[d][t] <= bands.median[d][t], "{ds} d{d} t{t}");
                assert!(bands.median[d][t] <= bands.upper[d][t], "{ds} d{d} t{t}");
                width += bands.upper[d][t] - bands.lower[d][t];
            }
        }
        assert!(width > 0.0, "{ds}: bands must have positive total width");
        let cov = bands.empirical_coverage(&test).unwrap();
        assert!((0.0..=1.0).contains(&cov));
    }
}

#[test]
fn bands_for_shares_forecaster_settings() {
    let series = gas_rate();
    let (train, _) = holdout_split(&series, 0.1).unwrap();
    let f = MultiCastForecaster::new(
        MuxMethod::ValueConcat,
        ForecastConfig { samples: 5, ..ForecastConfig::default() },
    );
    let bands = bands_for(&f, &train, 6, 0.5).unwrap();
    assert_eq!(bands.nominal_coverage, 0.5);
    assert_eq!(bands.names, train.names());
}

#[test]
fn var_beats_univariate_classics_on_coupled_replicas() {
    // The replica datasets are built around cross-dimensional coupling;
    // VAR exploits it and must beat per-dimension SES on at least two of
    // the three datasets (mean RMSE over dimensions).
    let mut wins = 0;
    for ds in PaperDataset::ALL {
        let series = ds.load();
        let (train, test) = holdout_split(&series, 0.15).unwrap();
        let mean_rmse = |fc: &MultivariateSeries| -> f64 {
            (0..series.dims())
                .map(|d| rmse(test.column(d).unwrap(), fc.column(d).unwrap()).unwrap())
                .sum::<f64>()
                / series.dims() as f64
        };
        let var_fc = VarForecaster::default().forecast(&train, test.len()).unwrap();
        let ses_fc = PerDimension(Ses { alpha: None }).forecast(&train, test.len()).unwrap();
        if mean_rmse(&var_fc) < mean_rmse(&ses_fc) {
            wins += 1;
        }
    }
    assert!(wins >= 2, "VAR should usually beat SES on coupled data, won {wins}/3");
}

#[test]
fn exponential_smoothing_family_runs_on_paper_data() {
    let series = electricity();
    let (train, test) = holdout_split(&series, 0.1).unwrap();
    for mut f in [
        Box::new(PerDimension(Ses { alpha: None })) as Box<dyn MultivariateForecaster>,
        Box::new(PerDimension(Holt { alpha: None, beta: None })),
        Box::new(PerDimension(HoltWinters::with_period(12))),
    ] {
        let fc = f.forecast(&train, test.len()).unwrap();
        assert_eq!(fc.len(), test.len());
        assert!(fc.columns().iter().flatten().all(|v| v.is_finite()), "{}", f.name());
    }
}

#[test]
fn ensemble_preset_forecasts_end_to_end() {
    let series = gas_rate();
    let (train, test) = holdout_split(&series, 0.1).unwrap();
    let config =
        ForecastConfig { samples: 2, preset: ModelPreset::Ensemble, ..ForecastConfig::default() };
    let mut f = MultiCastForecaster::new(MuxMethod::ValueInterleave, config);
    let fc = f.forecast(&train, test.len()).unwrap();
    assert_eq!(fc.len(), test.len());
    assert!(fc.columns().iter().flatten().all(|v| v.is_finite()));
}

#[test]
fn task_suite_round_trip_on_paper_data() {
    // Run all three zero-shot tasks against the Gas Rate CO2 dimension.
    let series = gas_rate();
    let co2 = series.column(1).unwrap().to_vec();

    // Anomaly scan of the raw dimension completes and stays bounded.
    let report = AnomalyDetector::default().detect(&co2).unwrap();
    assert_eq!(report.scores.len(), co2.len());
    assert!(report.scores.iter().all(|s| (0.0..=1.0).contains(s)));

    // Change-point scan of the raw dimension completes.
    let cps = ChangePointDetector::default().detect(&co2).unwrap();
    assert!(cps.iter().all(|&c| c < co2.len()));

    // Imputation of a masked window restores finite values everywhere and
    // keeps observations intact.
    let mut masked = co2.clone();
    for v in &mut masked[120..130] {
        *v = f64::NAN;
    }
    let imputed = Imputer::default().impute(&masked).unwrap();
    assert!(imputed.iter().all(|v| v.is_finite()));
    for (t, (&a, &b)) in co2.iter().zip(&imputed).enumerate() {
        if !(120..130).contains(&t) {
            assert_eq!(a, b, "observed value changed at {t}");
        }
    }
    // And the linear reference exists for comparison.
    let linear = linear_interpolate(&masked);
    assert!(linear.iter().all(|v| v.is_finite()));
}

#[test]
fn isax_index_on_dataset_windows() {
    use multicast_suite::sax::alphabet::{SaxAlphabet, SaxAlphabetKind};
    use multicast_suite::sax::encoder::SaxConfig;
    use multicast_suite::sax::index::ISaxIndex;
    use multicast_suite::tslib::transform::sliding_windows;

    // Index sliding windows of the CO2 dimension and query with a noisy
    // copy of one of them: the exact search must return that window.
    let series = gas_rate();
    let co2 = series.column(1).unwrap();
    let windows = sliding_windows(co2, 64, 8).unwrap();
    let config = SaxConfig {
        segment_len: 8,
        alphabet: SaxAlphabet::new(SaxAlphabetKind::Alphabetic, 8).unwrap(),
    };
    let mut index = ISaxIndex::new(config, 64, 4);
    for (i, w) in windows.iter().enumerate() {
        index.insert(i, w);
    }
    assert_eq!(index.len(), windows.len());
    let probe: Vec<f64> = windows[10].iter().map(|v| v + 0.001).collect();
    let (id, dist) = index.exact_search(&probe).unwrap();
    assert_eq!(id, 10);
    assert!(dist < 0.1, "distance {dist}");
}

#[test]
fn spectral_period_detection_on_paper_data() {
    use multicast_suite::tslib::spectral::dominant_period;
    // The electricity replica is built with a 121-sample swing plus a
    // 27-sample cycle; the dominant period should be the long one.
    let series = electricity();
    let p = dominant_period(series.column(0).unwrap(), 0.1)
        .unwrap()
        .expect("seasonal dataset has a dominant period");
    assert!(p > 50.0, "expected the long seasonal component, got {p}");
}

#[test]
fn bpe_pipeline_round_trip() {
    use multicast_suite::lm::bpe::BpeTokenizer;
    use multicast_suite::lm::tokenizer::Tokenizer;
    use multicast_suite::lm::vocab::Vocab;

    // Any serialized history must round-trip losslessly through a BPE
    // trained on it — the precondition for the tokenization ablation.
    let series = weather();
    let (train, _) = holdout_split(&series, 0.1).unwrap();
    let scaler =
        multicast_suite::core::scaling::FixedDigitScaler::fit(train.columns(), 3, 0.15).unwrap();
    let codes: Vec<Vec<u64>> = (0..train.dims())
        .map(|d| scaler.scale_column(d, train.column(d).unwrap()).unwrap())
        .collect();
    use multicast_suite::core::mux::Multiplexer;
    let prompt = multicast_suite::core::ValueInterleave.mux(&codes, 3);
    let bpe = BpeTokenizer::train(Vocab::numeric(), &prompt, 64);
    let ids = bpe.encode(&prompt).unwrap();
    assert!(ids.len() < prompt.chars().count(), "merges must compress");
    assert_eq!(bpe.decode(&ids).unwrap(), prompt);
}
