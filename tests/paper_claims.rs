//! Shape-level reproduction checks: the paper's *qualitative* claims that
//! must hold in this implementation regardless of absolute numbers.
//! Each test names the paper section it validates.

use multicast_suite::prelude::*;
use multicast_suite::sax::alphabet::{SaxAlphabet, SaxAlphabetKind};
use multicast_suite::sax::encoder::SaxConfig;

fn config(samples: usize, seed: u64) -> ForecastConfig {
    ForecastConfig { samples, seed, ..ForecastConfig::default() }
}

/// §IV-B / Table III: the larger backend outperforms the smaller one on
/// Gas Rate (the paper's LLaMA2 ≻ Phi-2 finding).
#[test]
fn larger_backend_beats_smaller_on_gas_rate() {
    let series = gas_rate();
    let (train, test) = holdout_split(&series, 0.15).unwrap();
    let score = |preset: ModelPreset| -> f64 {
        let cfg = ForecastConfig { preset, ..config(5, 11) };
        let mut f = MultiCastForecaster::new(MuxMethod::ValueInterleave, cfg);
        let fc = f.forecast(&train, test.len()).unwrap();
        (0..2).map(|d| rmse(test.column(d).unwrap(), fc.column(d).unwrap()).unwrap()).sum::<f64>()
    };
    let large = score(ModelPreset::Large);
    let small = score(ModelPreset::Small);
    assert!(
        large < small,
        "Large preset must beat Small overall: large {large:.3} vs small {small:.3}"
    );
}

/// §III-B / Table VIII: SAX quantization reduces total token usage by a
/// large factor, and longer segments reduce it further.
#[test]
fn sax_token_savings_grow_with_segment_length() {
    let series = gas_rate();
    let (train, _) = holdout_split(&series, 0.15).unwrap();
    let horizon = 12;

    let mut raw = MultiCastForecaster::new(MuxMethod::DigitInterleave, config(2, 3));
    raw.forecast(&train, horizon).unwrap();
    let raw_tokens = raw.last_cost.unwrap().total_tokens();

    let mut previous = u64::MAX;
    for segment_len in [3usize, 6, 9] {
        let cfg = SaxForecastConfig {
            sax: SaxConfig {
                segment_len,
                alphabet: SaxAlphabet::new(SaxAlphabetKind::Alphabetic, 5).unwrap(),
            },
            base: config(2, 3),
        };
        let mut f = SaxMultiCastForecaster::new(cfg);
        f.forecast(&train, horizon).unwrap();
        let tokens = f.last_cost.unwrap().total_tokens();
        assert!(tokens < raw_tokens / 4, "seg {segment_len}: {tokens} vs raw {raw_tokens}");
        assert!(tokens < previous, "longer segments must shrink tokens");
        previous = tokens;
    }
}

/// §IV-D / Table VII: generated-token counts (the paper's execution-time
/// proxy) double when the sample count doubles.
#[test]
fn generated_tokens_double_with_samples() {
    let series = gas_rate();
    let (train, _) = holdout_split(&series, 0.15).unwrap();
    let generated = |samples: usize| {
        let mut f = MultiCastForecaster::new(MuxMethod::ValueInterleave, config(samples, 5));
        f.forecast(&train, 10).unwrap();
        f.last_cost.unwrap().generated_tokens
    };
    let g5 = generated(5);
    let g10 = generated(10);
    let ratio = g10 as f64 / g5 as f64;
    assert!(
        (1.6..2.4).contains(&ratio),
        "10 samples should generate ~2x the tokens of 5: ratio {ratio:.2}"
    );
}

/// §IV-C: LLMTime and MultiCast consume comparable prompt budgets per
/// dimension, but LLMTime pays the prompt once *per dimension* while
/// MultiCast folds everything into one stream. With interleaved schemes
/// (DI/VI) the multiplexed prompt equals the summed per-dimension
/// payload, so total tokens are in the same ballpark — the paper's
/// "slightly less total time" for LLMTime comes from the multiplexing
/// overhead, reproduced here as the VC scheme's extra separators.
#[test]
fn vc_uses_more_separator_tokens_than_vi() {
    let series = gas_rate();
    let (train, _) = holdout_split(&series, 0.15).unwrap();
    let total = |mux: MuxMethod| {
        let mut f = MultiCastForecaster::new(mux, config(2, 6));
        f.forecast(&train, 10).unwrap();
        f.last_cost.unwrap().total_tokens()
    };
    let vi = total(MuxMethod::ValueInterleave);
    let vc = total(MuxMethod::ValueConcat);
    assert!(vc > vi, "VC carries one separator per (dim, t): vc {vc} vs vi {vi}");
}

/// Table IX footnote: a digital SAX alphabet cannot have 20 symbols.
#[test]
fn digital_alphabet_of_twenty_is_impossible() {
    assert!(SaxAlphabet::new(SaxAlphabetKind::Digital, 20).is_none());
    assert!(SaxAlphabet::new(SaxAlphabetKind::Alphabetic, 20).is_some());
}

/// §IV-E: with SAX, execution cost is insensitive to alphabet size (same
/// token count, slightly larger vocabulary), mirroring Table IX's flat
/// timing row.
#[test]
fn sax_tokens_insensitive_to_alphabet_size() {
    let series = gas_rate();
    let (train, _) = holdout_split(&series, 0.15).unwrap();
    let tokens = |size: usize| {
        let cfg = SaxForecastConfig {
            sax: SaxConfig {
                segment_len: 6,
                alphabet: SaxAlphabet::new(SaxAlphabetKind::Alphabetic, size).unwrap(),
            },
            base: config(2, 8),
        };
        let mut f = SaxMultiCastForecaster::new(cfg);
        f.forecast(&train, 12).unwrap();
        f.last_cost.unwrap().total_tokens()
    };
    let t5 = tokens(5);
    let t20 = tokens(20);
    assert_eq!(t5, t20, "token counts depend on segments, not alphabet size");
}

/// Figure 1's worked example, end to end through the public API.
#[test]
fn figure_one_example_reproduced_exactly() {
    let codes = vec![vec![17u64, 26], vec![23, 31]];
    assert_eq!(MuxMethod::DigitInterleave.build().mux(&codes, 2), "1273,2361,");
    assert_eq!(MuxMethod::ValueInterleave.build().mux(&codes, 2), "1723,2631,");
    assert_eq!(MuxMethod::ValueConcat.build().mux(&codes, 2), "17,23,26,31,");
}
