//! Property-based tests (proptest) for the invariants the pipeline's
//! correctness rests on. Each property is documented with the failure it
//! guards against.

use proptest::prelude::*;

use multicast_suite::core::scaling::FixedDigitScaler;
use multicast_suite::core::{MultiCastForecaster, MuxMethod};
use multicast_suite::lm::sampler::{Sampler, SamplerConfig};
use multicast_suite::prelude::*;
use multicast_suite::sax::alphabet::{SaxAlphabet, SaxAlphabetKind};
use multicast_suite::sax::encoder::{SaxConfig, SaxEncoder};
use multicast_suite::sax::gaussian::{breakpoints, cell_of};
use multicast_suite::tslib::transform;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mux → demux is the identity on well-formed streams for every
    /// scheme, dimension count and digit budget. A violation silently
    /// corrupts every forecast.
    #[test]
    fn mux_demux_identity(
        dims in 1usize..5,
        digits in 1u32..5,
        n in 1usize..40,
        seed in any::<u64>(),
    ) {
        let max = 10u64.pow(digits) - 1;
        let mut state = seed;
        let codes: Vec<Vec<u64>> = (0..dims)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        (state >> 33) % (max + 1)
                    })
                    .collect()
            })
            .collect();
        for method in MuxMethod::ALL {
            let m = method.build();
            let text = m.mux(&codes, digits);
            let back = m.demux(&text, dims, digits, n);
            prop_assert_eq!(&back, &codes, "{:?}", method);
        }
    }

    /// Lenient demux never panics and always returns the requested shape,
    /// whatever garbage the LLM emits within its constrained alphabet.
    #[test]
    fn demux_total_on_arbitrary_constrained_text(
        text in "[0-9,]{0,120}",
        dims in 1usize..4,
        digits in 1u32..4,
        horizon in 1usize..20,
    ) {
        for method in MuxMethod::ALL {
            let m = method.build();
            let back = m.demux(&text, dims, digits, horizon);
            prop_assert_eq!(back.len(), dims);
            let max = 10u64.pow(digits) - 1;
            for col in &back {
                prop_assert_eq!(col.len(), horizon);
                prop_assert!(col.iter().all(|&c| c <= max));
            }
        }
    }

    /// Demux is total on *completely arbitrary* text — not just the
    /// constrained `[0-9,]` alphabet. Even under backend bugs or injected
    /// corruption, demux must never panic and must yield exactly
    /// `dims x horizon` in-range codes for every scheme.
    #[test]
    fn demux_total_on_fully_arbitrary_text(
        text in any::<String>(),
        dims in 1usize..4,
        digits in 1u32..4,
        horizon in 1usize..16,
    ) {
        for method in MuxMethod::ALL {
            let m = method.build();
            let back = m.demux(&text, dims, digits, horizon);
            prop_assert_eq!(back.len(), dims, "{:?}", method);
            let max = 10u64.pow(digits) - 1;
            for col in &back {
                prop_assert_eq!(col.len(), horizon, "{:?}", method);
                prop_assert!(col.iter().all(|&c| c <= max), "{:?}", method);
            }
        }
    }

    /// Scale → descale round-trips within half a quantization step.
    #[test]
    fn scaler_round_trip_error_bounded(
        values in prop::collection::vec(-1e4f64..1e4, 2..60),
        digits in 2u32..5,
    ) {
        let scaler = FixedDigitScaler::fit(std::slice::from_ref(&values), digits, 0.1).unwrap();
        let step = scaler.step(0).unwrap();
        for &v in &values {
            let code = scaler.scale_value(0, v).unwrap();
            let back = scaler.descale_value(0, code).unwrap();
            prop_assert!((back - v).abs() <= step / 2.0 + 1e-9);
        }
    }

    /// A SAX cell representative always decodes back into its own cell,
    /// for every alphabet size — otherwise symbol-space forecasts drift.
    #[test]
    fn sax_representative_stays_in_cell(a in 2usize..21) {
        let breaks = breakpoints(a);
        for i in 0..a {
            let r = multicast_suite::sax::gaussian::cell_representative(i, a);
            prop_assert_eq!(cell_of(r, &breaks), i);
        }
    }

    /// SAX encode → decode stays within the (normalized) band implied by
    /// the outermost breakpoints, scaled back to data units.
    #[test]
    fn sax_decode_is_bounded(
        values in prop::collection::vec(-100f64..100.0, 8..80),
        segment in 1usize..8,
        a in 3usize..11,
    ) {
        let enc = SaxEncoder::new(SaxConfig {
            segment_len: segment,
            alphabet: SaxAlphabet::new(SaxAlphabetKind::Alphabetic, a).unwrap(),
        });
        let e = enc.encode(&values);
        let dec = enc.decode_expanded(&e.symbols, e.znorm, values.len());
        prop_assert_eq!(dec.len(), values.len());
        // All decoded values lie within the most extreme representatives.
        let lo = multicast_suite::sax::gaussian::cell_representative(0, a);
        let hi = multicast_suite::sax::gaussian::cell_representative(a - 1, a);
        for &v in &dec {
            let z = (v - e.znorm.mean) / e.znorm.std;
            prop_assert!(z >= lo - 1e-9 && z <= hi + 1e-9, "z = {}", z);
        }
    }

    /// The constrained sampler can only emit allowed tokens, whatever the
    /// distribution looks like.
    #[test]
    fn sampler_respects_any_mask(
        probs in prop::collection::vec(0f64..1.0, 4..12),
        mask_bits in any::<u16>(),
        seed in any::<u64>(),
    ) {
        let n = probs.len();
        // Ensure at least one allowed token.
        let allowed: Vec<bool> =
            (0..n).map(|i| mask_bits & (1 << (i % 16)) != 0 || i == (mask_bits as usize % n)).collect();
        let mut sampler = Sampler::new(SamplerConfig { seed, ..SamplerConfig::default() });
        for _ in 0..16 {
            let t = sampler.sample(&probs, |id| allowed[id as usize]);
            prop_assert!(allowed[t as usize]);
        }
    }

    /// Differencing round-trips exactly through integration.
    #[test]
    fn difference_integrate_identity(
        values in prop::collection::vec(-1e3f64..1e3, 4..50),
        d in 1usize..3,
    ) {
        prop_assume!(values.len() > d + 1);
        let (w, heads) = transform::difference(&values, d).unwrap();
        let back = transform::undifference(&w, &heads);
        prop_assert_eq!(back.len(), values.len());
        for (a, b) in back.iter().zip(&values) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// The pointwise median of forecasts lies within the per-point min/max
    /// envelope of the samples (aggregation can't extrapolate).
    #[test]
    fn median_within_sample_envelope(
        base in prop::collection::vec(-50f64..50.0, 3..20),
        jitters in prop::collection::vec(-5f64..5.0, 3..8),
    ) {
        let samples: Vec<Vec<Vec<f64>>> = jitters
            .iter()
            .map(|j| vec![base.iter().map(|v| v + j).collect::<Vec<f64>>()])
            .collect();
        let med = multicast_suite::core::pipeline::median_aggregate(&samples).unwrap();
        for (t, m) in med[0].iter().enumerate() {
            let lo = samples.iter().map(|s| s[0][t]).fold(f64::MAX, f64::min);
            let hi = samples.iter().map(|s| s[0][t]).fold(f64::MIN, f64::max);
            prop_assert!(*m >= lo - 1e-12 && *m <= hi + 1e-12);
        }
    }
}

proptest! {
    // Forecast-level properties are more expensive: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// End-to-end: a MultiCast forecast never leaves the scaler's
    /// headroom-extended band, on arbitrary bounded inputs.
    #[test]
    fn forecast_respects_value_band(
        raw in prop::collection::vec(-100f64..100.0, 30..60),
        seed in 0u64..1000,
    ) {
        let shifted: Vec<f64> = raw.iter().map(|v| v + 200.0).collect();
        let series = MultivariateSeries::from_columns(
            vec!["a".into(), "b".into()],
            vec![raw.clone(), shifted],
        )
        .unwrap();
        let cfg = ForecastConfig { samples: 1, seed, ..ForecastConfig::default() };
        let mut f = MultiCastForecaster::new(MuxMethod::ValueInterleave, cfg);
        let fc = f.forecast(&series, 5).unwrap();
        for d in 0..2 {
            let col = series.column(d).unwrap();
            let (mn, mx) = col.iter().fold((f64::MAX, f64::MIN), |(a, b), &v| (a.min(v), b.max(v)));
            let range = (mx - mn).max(1e-9);
            for &v in fc.column(d).unwrap() {
                prop_assert!(v >= mn - 0.151 * range && v <= mx + 0.151 * range);
            }
        }
    }

    /// Serving an arbitrary batch over shared frozen contexts conserves
    /// cost: the sum of per-request attributed costs equals the metered
    /// ground truth recorded inside the model boundary, each context's
    /// prompt pass is charged to exactly one request, and outcomes come
    /// back in submission order with matching ids.
    #[test]
    fn serve_attribution_is_conserved_and_ordered(
        specs in prop::collection::vec((0usize..3, 2usize..6, 1usize..4, 0u64..1000), 1..6),
        workers in 1usize..5,
    ) {
        use multicast_suite::core::serve::{serve_all, ForecastRequest, RequestId, ServeConfig};

        // Two fixed histories so some requests share a frozen context
        // while others do not — both attribution paths get exercised.
        let trains: Vec<MultivariateSeries> = (0..2usize)
            .map(|t| {
                let a: Vec<f64> =
                    (0..40).map(|i| ((i + 7 * t) as f64 * 0.31).sin() * 10.0 + 30.0).collect();
                let b: Vec<f64> = a.iter().map(|v| 100.0 - v).collect();
                MultivariateSeries::from_columns(vec!["a".into(), "b".into()], vec![a, b]).unwrap()
            })
            .collect();
        let requests: Vec<ForecastRequest> = specs
            .iter()
            .enumerate()
            .map(|(i, &(m, horizon, samples, seed))| {
                let method = MuxMethod::ALL[m % MuxMethod::ALL.len()];
                let config = ForecastConfig { samples, seed, ..ForecastConfig::default() };
                ForecastRequest::digit(trains[i % trains.len()].clone(), horizon, method, config)
            })
            .collect();

        let run = serve_all(&requests, &ServeConfig::with_workers(workers));

        // Ordering: one outcome per request, ids equal to submission indices.
        prop_assert_eq!(run.outcomes.len(), requests.len());
        for (i, outcome) in run.outcomes.iter().enumerate() {
            prop_assert_eq!(outcome.id, RequestId(i));
            prop_assert!(outcome.forecast.is_ok());
            prop_assert_eq!(outcome.forecast.as_ref().unwrap().len(), requests[i].horizon);
        }

        // Conservation: attribution matches the in-boundary meter exactly
        // — no double-charging, no lost tokens.
        let attributed = run.attributed_cost();
        let metered = run.metered_cost();
        prop_assert_eq!(attributed.prompt_tokens, metered.prompt_tokens);
        prop_assert_eq!(attributed.generated_tokens, metered.generated_tokens);
        prop_assert_eq!(attributed.work_units, metered.work_units);

        // Each context's prompt pass is paid by exactly one member request,
        // and the context's membership count matches the outcomes.
        for (c, stats) in run.contexts.iter().enumerate() {
            let members: Vec<_> =
                run.outcomes.iter().filter(|o| o.context == Some(c)).collect();
            prop_assert_eq!(members.len(), stats.requests);
            prop_assert!(stats.prompt_cost.prompt_tokens > 0);
            let payers = members.iter().filter(|o| o.cost.prompt_tokens > 0).count();
            prop_assert_eq!(payers, 1, "context {} has {} prompt payers", c, payers);
        }
    }

    /// Worker-pool width is invisible: the same batch served
    /// single-threaded and over several workers yields bit-identical
    /// forecasts and identical per-request attributed costs.
    #[test]
    fn serve_is_invariant_to_worker_count(
        specs in prop::collection::vec((0usize..3, 2usize..5, 1usize..3, 0u64..1000), 1..4),
        workers in 2usize..6,
    ) {
        use multicast_suite::core::serve::{serve_all, ForecastRequest, ServeConfig};

        let a: Vec<f64> = (0..36).map(|i| (i as f64 * 0.4).cos() * 8.0 + 20.0).collect();
        let b: Vec<f64> = a.iter().map(|v| v * 2.0 + 5.0).collect();
        let train =
            MultivariateSeries::from_columns(vec!["a".into(), "b".into()], vec![a, b]).unwrap();
        let requests: Vec<ForecastRequest> = specs
            .iter()
            .map(|&(m, horizon, samples, seed)| {
                let method = MuxMethod::ALL[m % MuxMethod::ALL.len()];
                let config = ForecastConfig { samples, seed, ..ForecastConfig::default() };
                ForecastRequest::digit(train.clone(), horizon, method, config)
            })
            .collect();

        let solo = serve_all(&requests, &ServeConfig::with_workers(1));
        let pool = serve_all(&requests, &ServeConfig::with_workers(workers));

        prop_assert_eq!(solo.outcomes.len(), pool.outcomes.len());
        for (s, p) in solo.outcomes.iter().zip(&pool.outcomes) {
            prop_assert_eq!(s.cost, p.cost);
            let (sf, pf) = (s.forecast.as_ref().unwrap(), p.forecast.as_ref().unwrap());
            prop_assert_eq!(sf.dims(), pf.dims());
            for d in 0..sf.dims() {
                let (sc, pc) = (sf.column(d).unwrap(), pf.column(d).unwrap());
                for (x, y) in sc.iter().zip(pc) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    /// Observability is exact accounting, not sampling: for an arbitrary
    /// served batch, per-request costs reconstructed purely from trace
    /// events (attempts keyed by request fingerprint, the context-fit
    /// prompt pass for the owner) equal the scheduler's attributed costs,
    /// and per-context session events reproduce the metered `CostLedger`
    /// snapshot exactly.
    #[test]
    fn trace_events_reconstruct_costs_exactly(
        specs in prop::collection::vec((0usize..3, 2usize..5, 1usize..4, 0u64..1000), 1..5),
        workers in 1usize..5,
    ) {
        use std::sync::Arc;
        use multicast_suite::core::serve::{
            request_fingerprints, serve_all_observed, ForecastRequest, ServeConfig,
        };
        use multicast_suite::obs::{EventKind, Observer};

        let trains: Vec<MultivariateSeries> = (0..2usize)
            .map(|t| {
                let a: Vec<f64> =
                    (0..40).map(|i| ((i + 5 * t) as f64 * 0.27).sin() * 12.0 + 25.0).collect();
                let b: Vec<f64> = a.iter().map(|v| 90.0 - v).collect();
                MultivariateSeries::from_columns(vec!["a".into(), "b".into()], vec![a, b]).unwrap()
            })
            .collect();
        let requests: Vec<ForecastRequest> = specs
            .iter()
            .enumerate()
            .map(|(i, &(m, horizon, samples, seed))| {
                let method = MuxMethod::ALL[m % MuxMethod::ALL.len()];
                let config = ForecastConfig { samples, seed, ..ForecastConfig::default() };
                ForecastRequest::digit(trains[i % trains.len()].clone(), horizon, method, config)
            })
            .collect();

        let fps = request_fingerprints(&requests);
        let obs = Arc::new(Observer::logical());
        let run = serve_all_observed(&requests, &ServeConfig::with_workers(workers), obs.clone());
        let events = obs.events();

        // One context_fit per context, agreeing with the backend's prompt
        // cost; session_cost events reproduce the metered ledger.
        for stats in &run.contexts {
            let fits: Vec<_> = events
                .iter()
                .filter_map(|s| match s.event.kind {
                    EventKind::ContextFit { prompt_tokens, work_units }
                        if s.event.ctx == stats.fingerprint =>
                    {
                        Some((prompt_tokens, work_units))
                    }
                    _ => None,
                })
                .collect();
            prop_assert_eq!(fits.len(), 1, "one fit per context");
            prop_assert_eq!(fits[0].0, stats.prompt_cost.prompt_tokens);
            prop_assert_eq!(fits[0].1, stats.prompt_cost.work_units);
            let (mut sessions, mut gen, mut work) = (0u64, 0u64, 0u64);
            for s in &events {
                if let EventKind::SessionCost { generated_tokens, work_units } = s.event.kind {
                    if s.event.ctx == stats.fingerprint {
                        sessions += 1;
                        gen += generated_tokens;
                        work += work_units;
                    }
                }
            }
            prop_assert_eq!(sessions, stats.sessions, "session count from events");
            prop_assert_eq!(gen, stats.metered.generated_tokens, "ledger generated tokens");
            prop_assert_eq!(
                work + stats.prompt_cost.work_units,
                stats.metered.work_units,
                "ledger work = prompt pass + sessions"
            );
        }

        // Per-request: summing attempt events keyed by the request's trace
        // fingerprint reconstructs its attributed cost exactly; the
        // context owner additionally carries the one-time prompt pass.
        for (i, outcome) in run.outcomes.iter().enumerate() {
            let (mut gen, mut work) = (0u64, 0u64);
            for s in &events {
                if s.event.req == fps[i] {
                    if let EventKind::Attempt { generated_tokens, work_units, .. } = s.event.kind {
                        gen += generated_tokens;
                        work += work_units;
                    }
                }
            }
            prop_assert_eq!(outcome.cost.generated_tokens, gen, "request {} generated", i);
            let context = &run.contexts[outcome.context.unwrap()];
            let prompt = if outcome.cost.prompt_tokens > 0 { context.prompt_cost } else { Default::default() };
            prop_assert_eq!(outcome.cost.prompt_tokens, prompt.prompt_tokens, "request {} prompt", i);
            prop_assert_eq!(outcome.cost.work_units, work + prompt.work_units, "request {} work", i);
        }
    }

    /// Charset defects are impossible by construction: the constrained
    /// sampler masks every token outside `[0-9,]`, so an uncorrupted
    /// continuation can never contain a non-numeric group or out-of-band
    /// symbol — only truncation/width defects. Validation must agree.
    #[test]
    fn sampler_constraint_makes_charset_defects_impossible(
        seed in any::<u64>(),
        temperature in 0.1f64..2.0,
        separators in 1usize..6,
    ) {
        use multicast_suite::core::pipeline::{run_continuation, ContinuationSpec};
        use multicast_suite::core::robust::{validate_text, DefectClass, SampleExpectations};
        use multicast_suite::lm::presets::ModelPreset;
        use multicast_suite::lm::vocab::Vocab;

        let spec = ContinuationSpec {
            prompt: "017,023,042,017,023,042,017,023,042,017,023,042,".into(),
            vocab: Vocab::numeric(),
            allowed_chars: "0123456789,".into(),
            preset: ModelPreset::Large,
            separators,
            max_tokens: 120,
            refit_epoch: 0,
        };
        let cfg = SamplerConfig { seed, temperature, ..SamplerConfig::default() };
        let (text, _) = run_continuation(&spec, cfg).unwrap();
        prop_assert!(text.chars().all(|c| c.is_ascii_digit() || c == ','), "{}", text);
        let expect = SampleExpectations {
            separators,
            group_width: 3,
            alphabet: "0123456789".into(),
            numeric: true,
            dims: 1,
            horizon: separators,
        };
        for defect in validate_text(&text, &expect) {
            let class = defect.class();
            prop_assert!(
                class != DefectClass::NonNumericGroup && class != DefectClass::OutOfBandCode,
                "constrained sampling emitted a charset defect: {:?} in {:?}", defect, text
            );
        }
    }

    /// The cache's incremental-refit path is differentially equivalent
    /// to a from-scratch fit: inserting a prefix-fitted context and then
    /// acquiring with a grown prompt must resolve as a refit whose
    /// forked sessions emit bit-identical distributions — and draw
    /// identical seeded tokens — to a model fitted on the full prompt
    /// in one pass.
    #[test]
    fn cache_refit_is_bit_identical_to_full_fit(
        preset_idx in 0usize..multicast_suite::lm::ModelPreset::ALL.len(),
        vocab in 2usize..10,
        raw in prop::collection::vec(0u32..64, 2..60),
        split_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        use multicast_suite::lm::cache::{CacheConfig, Found, LmCache};
        use multicast_suite::lm::{fit_model, ModelPreset, TokenId};

        let preset = ModelPreset::ALL[preset_idx];
        let tokens: Vec<TokenId> = raw.iter().map(|&t| t as TokenId % vocab as TokenId).collect();
        let split = 1 + ((tokens.len() - 2) as f64 * split_frac) as usize;
        let (family, fp_prefix, fp_full) = (42u64, 7u64, 8u64);

        let cache = LmCache::new(CacheConfig::default());
        let resident: std::sync::Arc<dyn multicast_suite::lm::FrozenLm> =
            std::sync::Arc::from(fit_model(preset, vocab, &tokens[..split]));
        cache.insert(family, fp_prefix, &tokens[..split], resident);
        cache.release(family, fp_prefix);

        let (frozen, epoch, appended) = match cache.acquire(family, fp_full, &tokens) {
            Found::Refit { frozen, epoch, appended } => (frozen, epoch, appended),
            Found::Hit { .. } => return Err(TestCaseError::Fail("exact hit, expected refit".into())),
            Found::Miss => return Err(TestCaseError::Fail("miss, expected refit".into())),
        };
        prop_assert_eq!(epoch, 1);
        prop_assert_eq!(appended, tokens.len() - split);

        let full = fit_model(preset, vocab, &tokens);
        prop_assert_eq!(frozen.prompt_cost(), full.prompt_cost());
        let cfg = SamplerConfig { seed, ..SamplerConfig::default() };
        let (mut draw_a, mut draw_b) = (Sampler::new(cfg), Sampler::new(cfg));
        let (mut a, mut b) = (full.fork(), frozen.fork());
        let (mut pa, mut pb) = (vec![0.0; vocab], vec![0.0; vocab]);
        for _ in 0..16 {
            a.next_distribution(&mut pa);
            b.next_distribution(&mut pb);
            prop_assert!(
                pa.iter().zip(&pb).all(|(x, y)| x.to_bits() == y.to_bits()),
                "cache refit distribution diverged from a full fit"
            );
            let (ta, tb) = (draw_a.sample(&pa, |_| true), draw_b.sample(&pb, |_| true));
            prop_assert_eq!(ta, tb);
            a.observe(ta);
            b.observe(tb);
        }
        drop((a, b));
        cache.release(family, fp_full);
        prop_assert_eq!(cache.stats().refits, 1);
    }
}
