//! Refactor-equivalence suite: the `ForecastEngine`/`Codec` rework and the
//! fit-once/sample-many split must be invisible to the numbers.
//!
//! Each test reassembles a forecaster's *pre-refactor* pipeline in-process
//! from the retained public primitives (`run_samples_robust`,
//! `run_continuation`, the scaler/mux/SAX pieces) and compares its output
//! bit-for-bit (`f64::to_bits`) against the refactored forecaster under
//! identical fixed seeds. References are built in-process rather than from
//! golden literals so the suite is valid on any `rand` implementation.
//!
//! The one *intended* change is cost accounting: the engine conditions the
//! backend on the prompt once per forecast, so `prompt_tokens` drops from
//! `S` prompt passes to one. The last test pins that down.

use mc_datasets::{gas_rate, generators::sinusoids};
use mc_lm::generate::{generate, GenerateOptions};
use mc_lm::model::{observe_all, FrozenLm};
use mc_lm::presets::{fit_model, ModelPreset};
use mc_lm::sampler::Sampler;
use mc_lm::tokenizer::{CharTokenizer, Tokenizer};
use mc_lm::vocab::{TokenId, Vocab};
use mc_lm::ConcreteLm;
use mc_sax::alphabet::{SaxAlphabet, SaxAlphabetKind};
use mc_sax::encoder::{SaxConfig, SaxEncoder};
use mc_tslib::error::Result;
use mc_tslib::forecast::{MultivariateForecaster, UnivariateForecaster};
use mc_tslib::series::MultivariateSeries;
use mc_tslib::split::holdout_split;
use multicast_core::pipeline::{median_aggregate, ContinuationSpec};
use multicast_core::robust::{run_samples_robust, SampleExpectations, SampleSource};
use multicast_core::scaling::FixedDigitScaler;
use multicast_core::{
    ForecastConfig, LlmTimeForecaster, MultiCastForecaster, MuxMethod, SaxForecastConfig,
    SaxMultiCastForecaster, StreamingMultiCast,
};

fn assert_bit_identical(reference: &MultivariateSeries, actual: &MultivariateSeries, tag: &str) {
    assert_eq!(reference.names(), actual.names(), "{tag}: names");
    assert_eq!(reference.len(), actual.len(), "{tag}: horizon");
    for d in 0..reference.dims() {
        let (r, a) = (reference.column(d).unwrap(), actual.column(d).unwrap());
        for (t, (x, y)) in r.iter().zip(a).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{tag}: dim {d} step {t}: {x} vs {y}");
        }
    }
}

/// The pre-refactor `MultiCastForecaster::forecast` body, reassembled from
/// the retained primitives. Returns the forecast and the run's cost
/// counters (which, on this path, re-pay the prompt every sample).
fn reference_multicast(
    method: MuxMethod,
    cfg: ForecastConfig,
    train: &MultivariateSeries,
    horizon: usize,
) -> (MultivariateSeries, u64) {
    let dims = train.dims();
    let scaler = FixedDigitScaler::fit(train.columns(), cfg.digits, cfg.headroom).unwrap();
    let codes: Vec<Vec<u64>> =
        (0..dims).map(|d| scaler.scale_column(d, train.column(d).unwrap()).unwrap()).collect();
    let mux = method.build();
    let prompt = mux.mux(&codes, cfg.digits);
    let separators = mux.separators_for(dims, horizon);
    let payload = match method {
        MuxMethod::ValueConcat => cfg.digits as usize,
        _ => dims * cfg.digits as usize,
    };
    let spec = ContinuationSpec {
        prompt,
        vocab: Vocab::numeric(),
        allowed_chars: "0123456789,".into(),
        preset: cfg.preset,
        separators,
        max_tokens: cfg.max_tokens(separators, payload),
        refit_epoch: 0,
    };
    let decode = |text: &str| -> Result<Vec<Vec<f64>>> {
        mux.demux(text, dims, cfg.digits, horizon)
            .iter()
            .enumerate()
            .map(|(d, col)| scaler.descale_column(d, col))
            .collect()
    };
    let expect = SampleExpectations {
        separators,
        group_width: payload,
        alphabet: "0123456789".into(),
        numeric: true,
        dims,
        horizon,
    };
    let run = run_samples_robust(
        &spec,
        cfg.samples.max(1),
        cfg.robust,
        SampleSource::Model,
        &expect,
        |i| cfg.sampler_for(i),
        decode,
    )
    .unwrap();
    assert!(run.quorum_met, "reference run must be healthy");
    let columns = median_aggregate(&run.samples).unwrap();
    let fc = MultivariateSeries::from_columns(train.names().to_vec(), columns).unwrap();
    (fc, run.cost.prompt_tokens)
}

fn two_dim_series(n: usize) -> MultivariateSeries {
    let a = sinusoids(n, &[(1.0, 16.0, 0.0), (0.3, 8.0, 1.0)]);
    let b: Vec<f64> = a.iter().map(|&v| 100.0 + 20.0 * v).collect();
    MultivariateSeries::from_columns(vec!["low".into(), "high".into()], vec![a, b]).unwrap()
}

#[test]
fn multicast_is_bit_identical_for_every_mux_method() {
    let series = two_dim_series(96);
    let (train, _) = holdout_split(&series, 0.1).unwrap();
    let cfg = ForecastConfig { samples: 3, seed: 11, ..ForecastConfig::default() };
    for method in MuxMethod::ALL {
        let (reference, _) = reference_multicast(method, cfg, &train, 8);
        let mut f = MultiCastForecaster::new(method, cfg);
        let actual = f.forecast(&train, 8).unwrap();
        assert_bit_identical(&reference, &actual, method.tag());
        let report = f.last_report.unwrap();
        assert_eq!(report.valid_samples, 3, "{}", method.tag());
    }
}

#[test]
fn multicast_matches_on_a_real_dataset() {
    let (train, test) = holdout_split(&gas_rate(), 0.1).unwrap();
    let cfg = ForecastConfig { samples: 2, seed: 5, ..ForecastConfig::default() };
    let (reference, _) = reference_multicast(MuxMethod::ValueInterleave, cfg, &train, test.len());
    let mut f = MultiCastForecaster::new(MuxMethod::ValueInterleave, cfg);
    let actual = f.forecast(&train, test.len()).unwrap();
    assert_bit_identical(&reference, &actual, "gas-rate");
}

#[test]
fn llmtime_univariate_is_bit_identical() {
    // The pre-refactor LLMTime column pipeline: 1-dim scaler, plain
    // value-interleaved serialization, digit-width groups.
    let xs = sinusoids(120, &[(1.0, 12.0, 0.5)]);
    let cfg = ForecastConfig { samples: 3, seed: 7, ..ForecastConfig::default() };
    let train = MultivariateSeries::from_columns(vec!["value".into()], vec![xs.clone()]).unwrap();
    let (reference, _) = reference_multicast(MuxMethod::ValueInterleave, cfg, &train, 6);
    let mut f = LlmTimeForecaster::new(cfg);
    let actual = f.forecast_univariate(&xs, 6).unwrap();
    let reference = reference.column(0).unwrap();
    assert_eq!(reference.len(), actual.len());
    for (t, (x, y)) in reference.iter().zip(&actual).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "step {t}: {x} vs {y}");
    }
}

#[test]
fn llmtime_multivariate_parallel_loop_matches_sequential_columns() {
    // The multivariate baseline now forecasts dimensions on scoped
    // threads; each column must still equal its own univariate run.
    let series = two_dim_series(90);
    let cfg = ForecastConfig { samples: 2, seed: 3, ..ForecastConfig::default() };
    let mut multi = LlmTimeForecaster::new(cfg);
    let fc = MultivariateForecaster::forecast(&mut multi, &series, 5).unwrap();
    let total = multi.last_cost.unwrap();
    let report = multi.last_report.unwrap();
    assert_eq!(report.requested_samples, 4, "2 samples x 2 dims merged in order");
    let mut expected_tokens = 0;
    for d in 0..2 {
        let mut uni = LlmTimeForecaster::new(cfg);
        let col = uni.forecast_univariate(series.column(d).unwrap(), 5).unwrap();
        expected_tokens += uni.last_cost.unwrap().total_tokens();
        for (t, (x, y)) in col.iter().zip(fc.column(d).unwrap()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "dim {d} step {t}");
        }
    }
    assert_eq!(total.total_tokens(), expected_tokens, "costs merge losslessly");
}

/// The pre-refactor SAX serialization (symbols interleaved segment-major)
/// and its lenient inverse, reassembled locally.
fn sax_mux_symbols(words: &[Vec<usize>], alphabet: SaxAlphabet) -> String {
    let n = words.first().map_or(0, Vec::len);
    let mut out = String::new();
    for s in 0..n {
        for w in words {
            out.push(alphabet.symbol(w[s]));
        }
        out.push(',');
    }
    out
}

fn sax_demux_symbols(
    text: &str,
    dims: usize,
    alphabet: SaxAlphabet,
    segments: usize,
) -> Vec<Vec<usize>> {
    let mid = alphabet.size() / 2;
    let mut out = vec![Vec::new(); dims];
    for group in text.split(',').map(str::trim).filter(|g| !g.is_empty()).take(segments) {
        let symbols: Vec<usize> = group.chars().filter_map(|c| alphabet.index(c)).collect();
        for (d, col) in out.iter_mut().enumerate() {
            let sym = symbols.get(d).copied().or_else(|| col.last().copied()).unwrap_or(mid);
            col.push(sym);
        }
    }
    for col in &mut out {
        let fill = col.last().copied().unwrap_or(mid);
        while col.len() < segments {
            col.push(fill);
        }
        col.truncate(segments);
    }
    out
}

#[test]
fn sax_is_bit_identical_for_both_alphabets() {
    let series = two_dim_series(120);
    let (train, _) = holdout_split(&series, 0.1).unwrap();
    let horizon: usize = 10;
    for kind in [SaxAlphabetKind::Alphabetic, SaxAlphabetKind::Digital] {
        let config = SaxForecastConfig {
            sax: SaxConfig { segment_len: 3, alphabet: SaxAlphabet::new(kind, 5).unwrap() },
            base: ForecastConfig { samples: 2, seed: 13, ..ForecastConfig::default() },
        };
        // Pre-refactor assembly.
        let cfg = config;
        let dims = train.dims();
        let encoder = SaxEncoder::new(cfg.sax);
        let mut words = Vec::new();
        let mut states = Vec::new();
        for d in 0..dims {
            let enc = encoder.encode(train.column(d).unwrap());
            states.push(enc.znorm);
            words.push(enc.symbols);
        }
        let prompt = sax_mux_symbols(&words, cfg.sax.alphabet);
        let segments = horizon.div_ceil(cfg.sax.segment_len);
        let vocab = match kind {
            SaxAlphabetKind::Alphabetic => Vocab::sax_alphabetic(cfg.sax.alphabet.size()),
            SaxAlphabetKind::Digital => Vocab::sax_digital(cfg.sax.alphabet.size()),
        };
        let spec = ContinuationSpec {
            prompt,
            vocab,
            allowed_chars: cfg.sax.alphabet.chars().chain([',']).collect(),
            preset: cfg.base.preset,
            separators: segments,
            max_tokens: cfg.base.max_tokens(segments, dims),
            refit_epoch: 0,
        };
        let decode = |text: &str| -> Result<Vec<Vec<f64>>> {
            let words = sax_demux_symbols(text, dims, cfg.sax.alphabet, segments);
            Ok(words
                .iter()
                .zip(&states)
                .map(|(w, &st)| {
                    let mut expanded =
                        encoder.decode_expanded(w, st, segments * cfg.sax.segment_len);
                    expanded.truncate(horizon);
                    expanded
                })
                .collect())
        };
        let expect = SampleExpectations {
            separators: segments,
            group_width: dims,
            alphabet: cfg.sax.alphabet.chars().collect(),
            numeric: false,
            dims,
            horizon,
        };
        let run = run_samples_robust(
            &spec,
            cfg.base.samples.max(1),
            cfg.base.robust,
            SampleSource::Model,
            &expect,
            |i| cfg.base.sampler_for(i),
            decode,
        )
        .unwrap();
        assert!(run.quorum_met);
        let columns = median_aggregate(&run.samples).unwrap();
        let reference = MultivariateSeries::from_columns(train.names().to_vec(), columns).unwrap();
        // Refactored forecaster.
        let mut f = SaxMultiCastForecaster::new(config);
        let actual = f.forecast(&train, horizon).unwrap();
        assert_bit_identical(&reference, &actual, &format!("sax-{kind:?}"));
    }
}

/// The pre-refactor `StreamingMultiCast::predict` loop: one clone of the
/// live model per sample, generate, decode, demux, descale, median.
#[test]
fn streaming_predict_is_bit_identical_to_clone_per_sample_loop() {
    let series = two_dim_series(100);
    let (train, _) = holdout_split(&series, 0.2).unwrap();
    let cfg = ForecastConfig { samples: 3, seed: 21, ..ForecastConfig::default() };
    let horizon = 6;
    // Reference: replicate the old predict() from public pieces.
    let dims = train.dims();
    let scaler = FixedDigitScaler::fit(train.columns(), cfg.digits, cfg.headroom).unwrap();
    let codes: Vec<Vec<u64>> =
        (0..dims).map(|d| scaler.scale_column(d, train.column(d).unwrap()).unwrap()).collect();
    let mux = MuxMethod::ValueInterleave.build();
    let prompt = mux.mux(&codes, cfg.digits);
    let vocab = Vocab::numeric();
    let tokenizer = CharTokenizer::new(vocab.clone());
    let mut model = ConcreteLm::build(cfg.preset, vocab.len());
    observe_all(&mut model, &tokenizer.encode(&prompt).unwrap());
    let mut allowed = vec![false; vocab.len()];
    for id in vocab.ids_of("0123456789,") {
        allowed[id as usize] = true;
    }
    let separator = vocab.id(',').unwrap();
    let separators = mux.separators_for(dims, horizon);
    let payload = dims * cfg.digits as usize;
    let options = GenerateOptions::until_separators(
        separator,
        separators,
        cfg.max_tokens(separators, payload),
    );
    let mut samples = Vec::new();
    for i in 0..cfg.samples {
        let mut speculative = model.clone();
        let mut sampler = Sampler::new({
            let mut s = cfg.sampler_for(i);
            // First predict() call: predictions_drawn is 0.
            s.seed = s.seed.wrapping_add(0x9e37);
            s
        });
        let out =
            generate(&mut speculative, &mut sampler, |t: TokenId| allowed[t as usize], &options);
        let text = tokenizer.decode(&out).unwrap();
        let cols: Vec<Vec<f64>> = mux
            .demux(&text, dims, cfg.digits, horizon)
            .iter()
            .enumerate()
            .map(|(d, col)| scaler.descale_column(d, col).unwrap())
            .collect();
        samples.push(cols);
    }
    let reference = MultivariateSeries::from_columns(
        train.names().to_vec(),
        median_aggregate(&samples).unwrap(),
    )
    .unwrap();
    // Refactored streaming path (fork-based sessions).
    let mut stream = StreamingMultiCast::new(MuxMethod::ValueInterleave, cfg, &train).unwrap();
    let actual = stream.predict(horizon).unwrap();
    assert_bit_identical(&reference, &actual, "streaming");
    let report = stream.last_report.unwrap();
    assert_eq!(report.valid_samples, 3);
}

/// Runs one decode session to completion alone: the distribution before
/// every forced token, plus the final one, and the session's cost.
fn solo_session_trace(
    frozen: &dyn FrozenLm,
    tokens: &[TokenId],
) -> (Vec<Vec<f64>>, mc_lm::InferenceCost) {
    let mut session = frozen.fork();
    let mut dist = vec![0.0; frozen.vocab_size()];
    let mut trace = Vec::with_capacity(tokens.len() + 1);
    for &t in tokens {
        session.next_distribution(&mut dist);
        trace.push(dist.clone());
        session.observe(t);
    }
    session.next_distribution(&mut dist);
    trace.push(dist.clone());
    (trace, session.cost())
}

/// `DecodeSession::fork` isolation, asserted directly: two sessions over
/// the same `FrozenLm`, stepped in lockstep (interleaved observe /
/// next_distribution calls), must produce exactly the distributions each
/// produces when run to completion alone. The fixed-seed equivalence tests
/// above only cover one-session-at-a-time decoding; this is the contract
/// concurrent serving leans on.
#[test]
fn interleaved_forks_match_sequential_sessions() {
    let vocab = Vocab::numeric();
    let tokenizer = CharTokenizer::new(vocab.clone());
    let prompt = "017,023,042,".repeat(8);
    let frozen = fit_model(ModelPreset::Large, vocab.len(), &tokenizer.encode(&prompt).unwrap());
    // Two deliberately different continuations, so the sessions' contexts
    // diverge immediately — any state leakage shows up in the siblings.
    let stream_a = tokenizer.encode("017,023,042,0").unwrap();
    let stream_b = tokenizer.encode("999,000,111,9").unwrap();
    let (trace_a, cost_a) = solo_session_trace(frozen.as_ref(), &stream_a);
    let (trace_b, cost_b) = solo_session_trace(frozen.as_ref(), &stream_b);
    // Interleaved run: alternate single steps between two live sessions.
    let mut sa = frozen.fork();
    let mut sb = frozen.fork();
    let mut dist = vec![0.0; frozen.vocab_size()];
    for (i, (&ta, &tb)) in stream_a.iter().zip(&stream_b).enumerate() {
        sa.next_distribution(&mut dist);
        for (v, (x, y)) in dist.iter().zip(&trace_a[i]).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "session a, step {i}, token {v}");
        }
        sb.next_distribution(&mut dist);
        for (v, (x, y)) in dist.iter().zip(&trace_b[i]).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "session b, step {i}, token {v}");
        }
        sa.observe(ta);
        sb.observe(tb);
    }
    let last = stream_a.len();
    sa.next_distribution(&mut dist);
    for (v, (x, y)) in dist.iter().zip(&trace_a[last]).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "session a, final step, token {v}");
    }
    sb.next_distribution(&mut dist);
    for (v, (x, y)) in dist.iter().zip(&trace_b[last]).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "session b, final step, token {v}");
    }
    assert_eq!(sa.cost(), cost_a, "interleaving must not change session a's cost");
    assert_eq!(sb.cost(), cost_b, "interleaving must not change session b's cost");
    assert_eq!(cost_a.prompt_tokens, 0, "sessions never re-pay the prompt");
}

#[test]
fn prompt_is_paid_once_not_per_sample() {
    // The intended cost change: pre-refactor, every sample re-read the
    // prompt (S prompt passes); the engine now pays it exactly once.
    let series = two_dim_series(80);
    let (train, _) = holdout_split(&series, 0.1).unwrap();
    let cfg = ForecastConfig { samples: 4, seed: 2, ..ForecastConfig::default() };
    let (_, reference_prompt_tokens) =
        reference_multicast(MuxMethod::ValueInterleave, cfg, &train, 6);
    let mut f = MultiCastForecaster::new(MuxMethod::ValueInterleave, cfg);
    f.forecast(&train, 6).unwrap();
    let engine_prompt_tokens = f.last_cost.unwrap().prompt_tokens;
    assert_eq!(
        reference_prompt_tokens,
        engine_prompt_tokens * cfg.samples as u64,
        "refit path pays the prompt S times, the engine once"
    );
    assert!(engine_prompt_tokens > 0);
}
