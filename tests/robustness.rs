//! Fault-injection integration tests: the sampling pipeline must survive
//! truncated, garbage and panicking continuations, degrade gracefully when
//! the quorum fails, and account for every defect in `last_report`.

use std::sync::Arc;

use multicast_suite::core::robust::{
    DefectClass, FallbackPolicy, FaultSpec, ForecastOutcome, ForecastReport, RobustPolicy,
    SampleSource,
};
use multicast_suite::core::{
    serve_all_observed, CodecChoice, ForecastConfig, ForecastRequest, LlmTimeForecaster,
    MultiCastForecaster, MuxMethod, Priority, SaxForecastConfig, SaxMultiCastForecaster,
    ServeConfig, StreamingMultiCast,
};
use multicast_suite::datasets::generators::sinusoids;
use multicast_suite::obs::{
    Counter, MetricsRegistry, Observer, DEFECT_CLASSES, DEFECT_CLASS_NAMES,
};
use multicast_suite::prelude::*;
use multicast_suite::sax::alphabet::SaxAlphabetKind;
use multicast_suite::tslib::error::TsError;

fn series(n: usize) -> MultivariateSeries {
    let a = sinusoids(n, &[(1.0, 16.0, 0.0)]);
    let b: Vec<f64> = a.iter().map(|&v| 40.0 + 8.0 * v).collect();
    MultivariateSeries::from_columns(vec!["a".into(), "b".into()], vec![a, b]).unwrap()
}

/// 40 % of continuations corrupted plus one guaranteed panicking sample.
fn heavy_faults() -> SampleSource {
    SampleSource::FaultInjected(FaultSpec {
        rate: 0.4,
        seed: 7,
        panic_sample: Some(0),
        latency_tokens: 0,
    })
}

#[test]
fn multicast_survives_heavy_faults_for_every_mux_method() {
    let s = series(96);
    let (train, test) = holdout_split(&s, 0.1).unwrap();
    for method in MuxMethod::ALL {
        let config = ForecastConfig { samples: 5, ..Default::default() };
        let mut f = MultiCastForecaster::new(method, config).with_source(heavy_faults());
        let fc = f.forecast(&train, test.len()).unwrap();
        assert_eq!(fc.dims(), 2, "{method:?}");
        assert_eq!(fc.len(), test.len(), "{method:?}");
        assert!(fc.columns().iter().flatten().all(|v| v.is_finite()), "{method:?}");
        let report = f.last_report.as_ref().expect("report recorded");
        assert_eq!(report.requested_samples, 5);
        assert_eq!(
            report.defect_count(DefectClass::Panicked),
            1,
            "{method:?}: exactly one injected panic"
        );
        assert!(report.retries_used >= 1, "{method:?}: the panicked sample retried");
        // Every sample either recovered or exhausted its retry budget.
        for rec in &report.samples {
            assert!(
                rec.valid || rec.attempts == 3,
                "{method:?} sample {}: invalid with attempts {}",
                rec.index,
                rec.attempts
            );
        }
    }
}

#[test]
fn fault_report_accounts_for_each_defect_class() {
    let s = series(96);
    let (train, _) = holdout_split(&s, 0.1).unwrap();
    // Rate 1.0: every attempt is corrupted by one of the three corruption
    // kinds (hard truncation, garbage groups, total loss), so across
    // 6 samples x 3 attempts both text-level defect classes must appear —
    // and everything observed must be fatal (no silent repairs of garbage).
    let source = SampleSource::FaultInjected(FaultSpec {
        rate: 1.0,
        seed: 3,
        panic_sample: None,
        latency_tokens: 0,
    });
    let config = ForecastConfig { samples: 6, ..Default::default() };
    let mut f = MultiCastForecaster::new(MuxMethod::ValueInterleave, config).with_source(source);
    let fc = f.forecast(&train, 8).unwrap();
    assert_eq!(fc.len(), 8, "fallback still yields the right shape");
    let report = f.last_report.as_ref().unwrap();
    assert_eq!(report.valid_samples, 0, "no sample survives total corruption");
    assert!(report.degraded());
    assert_eq!(report.outcome, ForecastOutcome::Degraded { valid: 0, required: 1 });
    assert_eq!(report.retries_used, 12, "6 samples x 2 retries all spent");
    assert!(report.defect_count(DefectClass::Truncated) > 0);
    assert!(report.defect_count(DefectClass::NonNumericGroup) > 0);
    assert_eq!(report.defect_count(DefectClass::Panicked), 0);
    let attempts: usize = report.samples.iter().map(|r| r.attempts).sum();
    assert_eq!(attempts, 18, "every sample used all 3 attempts");
}

#[test]
fn error_policy_surfaces_typed_quorum_failure() {
    let s = series(96);
    let (train, _) = holdout_split(&s, 0.1).unwrap();
    let source = SampleSource::FaultInjected(FaultSpec {
        rate: 1.0,
        seed: 4,
        panic_sample: None,
        latency_tokens: 0,
    });
    let config = ForecastConfig {
        samples: 3,
        robust: RobustPolicy {
            max_retries: 1,
            min_valid_samples: 2,
            fallback: FallbackPolicy::Error,
            ..RobustPolicy::default()
        },
        ..Default::default()
    };
    let mut f = MultiCastForecaster::new(MuxMethod::DigitInterleave, config).with_source(source);
    let err = f.forecast(&train, 6).unwrap_err();
    assert_eq!(err, TsError::SampleQuorum { valid: 0, required: 2 });
    // The report survives the error for post-mortem inspection.
    let report = f.last_report.as_ref().unwrap();
    assert!(report.degraded());
}

#[test]
fn llmtime_survives_heavy_faults_per_dimension() {
    let s = series(96);
    let (train, test) = holdout_split(&s, 0.1).unwrap();
    let config = ForecastConfig { samples: 4, ..Default::default() };
    let mut f = LlmTimeForecaster::new(config).with_source(heavy_faults());
    let fc = MultivariateForecaster::forecast(&mut f, &train, test.len()).unwrap();
    assert_eq!(fc.dims(), 2);
    assert_eq!(fc.len(), test.len());
    let report = f.last_report.as_ref().unwrap();
    assert_eq!(report.requested_samples, 8, "4 samples x 2 dimensions merged");
    assert_eq!(report.defect_count(DefectClass::Panicked), 2, "sample 0 panics once per dimension");
}

#[test]
fn sax_pipeline_survives_heavy_faults() {
    let s = series(96);
    let (train, test) = holdout_split(&s, 0.15).unwrap();
    let config = SaxForecastConfig {
        base: ForecastConfig { samples: 4, ..Default::default() },
        ..SaxForecastConfig::paper_default(SaxAlphabetKind::Alphabetic)
    };
    let mut f = SaxMultiCastForecaster::new(config).with_source(heavy_faults());
    let fc = f.forecast(&train, test.len()).unwrap();
    assert_eq!(fc.dims(), 2);
    assert_eq!(fc.len(), test.len());
    let report = f.last_report.as_ref().unwrap();
    assert_eq!(report.defect_count(DefectClass::Panicked), 1);
    // SAX garbage is out-of-band symbols, not non-numeric digit groups.
    assert_eq!(report.defect_count(DefectClass::NonNumericGroup), 0);
}

#[test]
fn streaming_survives_heavy_faults_and_degrades_gracefully() {
    let s = series(140);
    let (train, rest) = holdout_split(&s, 0.2).unwrap();
    let config = ForecastConfig { samples: 4, ..Default::default() };
    let mut stream = StreamingMultiCast::new(MuxMethod::ValueInterleave, config, &train)
        .unwrap()
        .with_source(heavy_faults());
    for t in 0..8 {
        stream.observe_row(&rest.row(t).unwrap()).unwrap();
    }
    let fc = stream.predict(10).unwrap();
    assert_eq!(fc.dims(), 2);
    assert_eq!(fc.len(), 10);
    let report = stream.last_report.as_ref().expect("report recorded");
    assert_eq!(report.requested_samples, 4);
    assert_eq!(report.defect_count(DefectClass::Panicked), 1);

    // Total corruption: streaming falls back to its rolling-tail forecast.
    let source = SampleSource::FaultInjected(FaultSpec {
        rate: 1.0,
        seed: 9,
        panic_sample: None,
        latency_tokens: 0,
    });
    let mut dead = StreamingMultiCast::new(MuxMethod::ValueInterleave, config, &train)
        .unwrap()
        .with_source(source);
    let fc = dead.predict(6).unwrap();
    assert_eq!(fc.len(), 6);
    assert!(fc.columns().iter().flatten().all(|v| v.is_finite()));
    assert!(dead.last_report.as_ref().unwrap().degraded());
}

#[test]
fn defect_taxonomy_is_pinned_across_crates() {
    // The obs crate mirrors the taxonomy without depending on core; this
    // pin keeps the two from drifting apart silently.
    assert_eq!(DefectClass::ALL.len(), DEFECT_CLASSES);
    for (i, class) in DefectClass::ALL.into_iter().enumerate() {
        assert_eq!(class.index(), i, "{class:?} is out of slot order");
        assert_eq!(DEFECT_CLASS_NAMES[i], class.name(), "{class:?} name drifted");
    }
}

#[test]
fn serve_registry_counters_match_rigged_fault_reports() {
    // Three requests with different fault profiles: 40 % corruption plus a
    // guaranteed panic, total corruption (quorum failure + fallback), and a
    // clean model-backed run. The registry fed live by trace events must
    // agree exactly with the per-request reports' own accounting.
    let s = series(96);
    let (train, _) = holdout_split(&s, 0.1).unwrap();
    let requests = vec![
        ForecastRequest {
            train: train.clone(),
            horizon: 8,
            codec: CodecChoice::Digit(MuxMethod::ValueInterleave),
            config: ForecastConfig { samples: 4, ..Default::default() },
            source: heavy_faults(),
            priority: Priority::Normal,
            client: 0,
        },
        ForecastRequest {
            train: train.clone(),
            horizon: 8,
            codec: CodecChoice::Digit(MuxMethod::DigitInterleave),
            config: ForecastConfig { samples: 5, ..Default::default() },
            source: SampleSource::FaultInjected(FaultSpec {
                rate: 1.0,
                seed: 3,
                panic_sample: None,
                latency_tokens: 0,
            }),
            priority: Priority::Normal,
            client: 0,
        },
        ForecastRequest::digit(
            train.clone(),
            8,
            MuxMethod::ValueConcat,
            ForecastConfig { samples: 3, ..Default::default() },
        ),
    ];
    let obs = Arc::new(Observer::logical());
    let run = serve_all_observed(&requests, &ServeConfig::with_workers(3), obs.clone());
    let reports: Vec<&ForecastReport> =
        run.outcomes.iter().filter_map(|o| o.report.as_ref()).collect();
    assert_eq!(reports.len(), 3, "every request carries a report");

    let m = obs.metrics();
    for class in DefectClass::ALL {
        let expected: usize = reports.iter().map(|r| r.defect_count(class)).sum();
        assert_eq!(m.defect_count(class.index()), expected as u64, "{class:?} counter drifted");
    }
    assert!(m.defect_count(DefectClass::Panicked.index()) >= 1, "the rigged panic was counted");
    let total_defects: usize = reports.iter().map(|r| r.total_defects()).sum();
    assert_eq!(m.get(Counter::Defects), total_defects as u64);
    let retries: usize = reports.iter().map(|r| r.retries_used).sum();
    assert_eq!(m.get(Counter::Retries), retries as u64);
    assert_eq!(
        m.get(Counter::PanicsIsolated),
        m.defect_count(DefectClass::Panicked.index()),
        "every panic defect came through the isolation layer"
    );
    let attempts: usize = reports.iter().flat_map(|r| &r.samples).map(|s| s.attempts).sum();
    assert_eq!(m.get(Counter::Attempts), attempts as u64);
    let valid: usize = reports.iter().map(|r| r.valid_samples).sum();
    assert_eq!(m.get(Counter::AttemptsValid), valid as u64);
    assert_eq!(m.get(Counter::QuorumResolves), 3);
    let degraded = reports.iter().filter(|r| r.degraded()).count() as u64;
    assert!(degraded >= 1, "total corruption must fail its quorum");
    assert_eq!(m.get(Counter::QuorumFailures), degraded);
    assert_eq!(m.get(Counter::Fallbacks), degraded, "every failed quorum fell back");
}

#[test]
fn record_into_mirrors_the_reports_own_accounting() {
    // The sequential pipeline's bridge into the registry must agree with
    // the report accessors it summarizes.
    let s = series(96);
    let (train, _) = holdout_split(&s, 0.1).unwrap();
    let config = ForecastConfig { samples: 5, ..Default::default() };
    let mut f =
        MultiCastForecaster::new(MuxMethod::ValueInterleave, config).with_source(heavy_faults());
    f.forecast(&train, 8).unwrap();
    let report = f.last_report.as_ref().unwrap();

    let reg = MetricsRegistry::new();
    report.record_into(&reg);
    for class in DefectClass::ALL {
        assert_eq!(reg.defect_count(class.index()), report.defect_count(class) as u64);
    }
    assert_eq!(reg.get(Counter::Defects), report.total_defects() as u64);
    assert_eq!(reg.get(Counter::Retries), report.retries_used as u64);
    assert_eq!(reg.get(Counter::QuorumResolves), 1);
    assert_eq!(reg.get(Counter::QuorumFailures), u64::from(report.degraded()));
    assert_eq!(reg.get(Counter::Fallbacks), u64::from(report.degraded()));
}

#[test]
fn clean_backend_report_is_spotless_and_forecasts_match_plain_pipeline() {
    // With no injected faults the robust layer must be a no-op: same seeds,
    // zero retries, no degradation.
    let s = series(96);
    let (train, _) = holdout_split(&s, 0.1).unwrap();
    let config = ForecastConfig { samples: 3, ..Default::default() };
    let mut f = MultiCastForecaster::new(MuxMethod::ValueInterleave, config);
    let fc = f.forecast(&train, 8).unwrap();
    let report = f.last_report.as_ref().unwrap();
    assert_eq!(report.valid_samples, 3);
    assert_eq!(report.retries_used, 0);
    assert!(!report.degraded());
    assert_eq!(report.outcome, ForecastOutcome::Sampled);
    // A second identical forecaster reproduces the forecast exactly.
    let mut g = MultiCastForecaster::new(MuxMethod::ValueInterleave, config);
    assert_eq!(g.forecast(&train, 8).unwrap(), fc);
}
