//! Quickstart: zero-shot multivariate forecasting in ~20 lines.
//!
//! Loads the Gas Rate dataset, holds out the final 15 %, forecasts it with
//! MultiCast (value-interleaving) and prints the per-dimension RMSE next
//! to an ARIMA reference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use multicast_suite::prelude::*;

fn main() {
    let series = gas_rate();
    println!(
        "Gas Rate: {} timestamps x {} dimensions ({:?})",
        series.len(),
        series.dims(),
        series.names()
    );
    let (train, test) = holdout_split(&series, 0.15).expect("split");
    println!("train = {}, test horizon = {}\n", train.len(), test.len());

    // Zero-shot LLM forecast: no training, the prompt is the model.
    let mut multicast =
        MultiCastForecaster::new(MuxMethod::ValueInterleave, ForecastConfig::default());
    let llm_fc = multicast.forecast(&train, test.len()).expect("multicast forecast");

    // Classical reference.
    let mut arima = PerDimension(ArimaForecaster::default());
    let arima_fc = arima.forecast(&train, test.len()).expect("arima forecast");

    println!("{:<10} {:>14} {:>10}", "dimension", "MultiCast(VI)", "ARIMA");
    for d in 0..series.dims() {
        let a = rmse(test.column(d).unwrap(), llm_fc.column(d).unwrap()).unwrap();
        let b = rmse(test.column(d).unwrap(), arima_fc.column(d).unwrap()).unwrap();
        println!("{:<10} {:>14.3} {:>10.3}", series.names()[d], a, b);
    }
    if let Some(cost) = multicast.last_cost {
        println!(
            "\nLLM cost: {} prompt + {} generated tokens across {} samples",
            cost.prompt_tokens, cost.generated_tokens, multicast.config.samples
        );
    }
}
