//! Weather-station scenario: compare all three multiplexing schemes on a
//! 4-dimensional meteorological series.
//!
//! The Weather dataset's four variables (air temperature, vapor
//! concentration, saturation vapor pressure, potential temperature) are
//! all driven by one physical latent, which is exactly the
//! "inter-dimensional correlation" MultiCast is designed to exploit. This
//! example sweeps DI / VI / VC and LLMTime and reports RMSE per variable,
//! showing the paper's core observation that the best multiplexing scheme
//! differs per dimension.
//!
//! ```sh
//! cargo run --release --example weather_station
//! ```

use multicast_suite::prelude::*;

fn main() {
    let series = weather();
    let (train, test) = holdout_split(&series, 0.15).expect("split");
    println!(
        "Weather: {} x {} ({:?}), forecasting {} steps\n",
        series.len(),
        series.dims(),
        series.names(),
        test.len()
    );

    let config = ForecastConfig::default();
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for mux in MuxMethod::ALL {
        let mut f = MultiCastForecaster::new(mux, config);
        let fc = f.forecast(&train, test.len()).expect("forecast");
        let errs: Vec<f64> = (0..series.dims())
            .map(|d| rmse(test.column(d).unwrap(), fc.column(d).unwrap()).unwrap())
            .collect();
        rows.push((mux.display_name().to_string(), errs));
    }
    let mut llmtime = LlmTimeForecaster::new(config);
    let fc = MultivariateForecaster::forecast(&mut llmtime, &train, test.len()).expect("llmtime");
    let errs: Vec<f64> = (0..series.dims())
        .map(|d| rmse(test.column(d).unwrap(), fc.column(d).unwrap()).unwrap())
        .collect();
    rows.push(("LLMTIME (per-dim)".into(), errs));

    print!("{:<20}", "method");
    for name in series.names() {
        print!("{name:>9}");
    }
    println!();
    for (name, errs) in &rows {
        print!("{name:<20}");
        for e in errs {
            print!("{e:>9.3}");
        }
        println!();
    }

    // Which method wins each dimension?
    println!();
    for (d, dim_name) in series.names().iter().enumerate() {
        let best =
            rows.iter().min_by(|a, b| a.1[d].partial_cmp(&b.1[d]).unwrap()).expect("non-empty");
        println!("best for {dim_name}: {}", best.0);
    }
}
