//! Token-budget scenario: SAX quantization as a cost lever.
//!
//! Hosted LLMs charge per token; §III-B of the paper proposes SAX
//! quantization to shrink prompts and continuations. This example
//! forecasts the Gas Rate CO₂ dimension with raw MultiCast and with SAX
//! at several segment lengths, reporting RMSE, token counts and the
//! dollar cost under a representative per-token price sheet — the
//! accuracy/cost trade-off in one table.
//!
//! ```sh
//! cargo run --release --example sax_budget
//! ```

use multicast_suite::lm::cost::Pricing;
use multicast_suite::prelude::*;
use multicast_suite::sax::alphabet::{SaxAlphabet, SaxAlphabetKind};
use multicast_suite::sax::encoder::SaxConfig;

fn main() {
    let series = gas_rate();
    let (train, test) = holdout_split(&series, 0.15).expect("split");
    let pricing = Pricing::default();
    println!(
        "Gas Rate CO2 dimension, horizon {} | price sheet: ${:.2}/M prompt, ${:.2}/M generated\n",
        test.len(),
        pricing.per_prompt_token * 1e6,
        pricing.per_generated_token * 1e6
    );
    println!("{:<34} {:>8} {:>10} {:>10} {:>12}", "method", "RMSE", "prompt", "generated", "cost");

    // Raw MultiCast reference.
    let mut raw = MultiCastForecaster::new(MuxMethod::DigitInterleave, ForecastConfig::default());
    let fc = raw.forecast(&train, test.len()).expect("forecast");
    let err = rmse(test.column(1).unwrap(), fc.column(1).unwrap()).unwrap();
    let cost = raw.last_cost.expect("cost recorded");
    println!(
        "{:<34} {:>8.3} {:>10} {:>10} {:>11.6}$",
        "MultiCast (DI), no quantization",
        err,
        cost.prompt_tokens,
        cost.generated_tokens,
        cost.price(pricing)
    );

    for segment_len in [3usize, 6, 9] {
        let cfg = SaxForecastConfig {
            sax: SaxConfig {
                segment_len,
                alphabet: SaxAlphabet::new(SaxAlphabetKind::Alphabetic, 5).unwrap(),
            },
            base: ForecastConfig::default(),
        };
        let mut f = SaxMultiCastForecaster::new(cfg);
        let fc = f.forecast(&train, test.len()).expect("forecast");
        let err = rmse(test.column(1).unwrap(), fc.column(1).unwrap()).unwrap();
        let cost = f.last_cost.expect("cost recorded");
        println!(
            "{:<34} {:>8.3} {:>10} {:>10} {:>11.6}$",
            format!("MultiCast SAX (seg={segment_len}, a=5)"),
            err,
            cost.prompt_tokens,
            cost.generated_tokens,
            cost.price(pricing)
        );
    }
    println!("\nCoarser segments trade accuracy for an order of magnitude fewer tokens.");
}
