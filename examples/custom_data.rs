//! Bring-your-own-data scenario: CSV in, forecast out.
//!
//! Demonstrates the path a downstream user takes with real measurements:
//! write/read a CSV with named columns, forecast with MultiCast and the
//! classical baselines, and export both the forecast and an SVG-ready
//! data file. The CSV here is generated on the fly (a synthetic retail
//! demand series with weekly seasonality and a promotion-driven second
//! dimension) so the example runs hermetically.
//!
//! ```sh
//! cargo run --release --example custom_data
//! ```

use multicast_suite::datasets::generators::{add, linear_trend, sinusoids, white_noise};
use multicast_suite::prelude::*;
use multicast_suite::tslib::io;

fn main() {
    // 1. Fabricate "user data" and round-trip it through CSV.
    let n = 180;
    let demand = add(
        &add(&sinusoids(n, &[(30.0, 7.0, 0.0), (12.0, 28.0, 1.2)]), &linear_trend(n, 400.0, 0.6)),
        &white_noise(n, 6.0, 7),
    );
    let promos = add(
        &sinusoids(n, &[(8.0, 7.0, 0.9)]),
        &add(&linear_trend(n, 40.0, 0.05), &white_noise(n, 2.0, 8)),
    );
    let series = MultivariateSeries::from_columns(
        vec!["units_sold".into(), "promo_index".into()],
        vec![demand, promos],
    )
    .expect("well-formed columns");
    let csv_path = std::env::temp_dir().join("multicast_custom_data.csv");
    io::write_csv(&series, &csv_path).expect("write csv");
    let loaded = io::read_csv(&csv_path).expect("read csv");
    assert_eq!(loaded, series);
    println!(
        "loaded {} rows x {} columns from {}",
        loaded.len(),
        loaded.dims(),
        csv_path.display()
    );

    // 2. Forecast the last two weeks.
    let (train, test) = holdout_split(&loaded, 14.0 / n as f64).expect("split");
    println!("forecasting {} days\n", test.len());
    let mut multicast = MultiCastForecaster::new(MuxMethod::ValueConcat, ForecastConfig::default());
    let mc_fc = multicast.forecast(&train, test.len()).expect("multicast");
    let mut lstm = LstmForecaster::new(LstmConfig { epochs: 15, ..LstmConfig::default() });
    let lstm_fc = lstm.forecast(&train, test.len()).expect("lstm");

    println!("{:<12} {:>15} {:>9}", "dimension", "MultiCast(VC)", "LSTM");
    for d in 0..loaded.dims() {
        let a = rmse(test.column(d).unwrap(), mc_fc.column(d).unwrap()).unwrap();
        let b = rmse(test.column(d).unwrap(), lstm_fc.column(d).unwrap()).unwrap();
        println!("{:<12} {:>15.2} {:>9.2}", loaded.names()[d], a, b);
    }

    // 3. Export the forecast as CSV for downstream tooling.
    let out_path = std::env::temp_dir().join("multicast_forecast.csv");
    io::write_csv(&mc_fc, &out_path).expect("write forecast");
    println!("\nforecast written to {}", out_path.display());
    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&out_path).ok();
}
