//! Sensor-monitoring scenario: the paper's future-work tasks in action.
//!
//! A simulated sensor feed suffers (i) two transient spikes, (ii) a
//! permanent regime change, and (iii) a dropout window with missing
//! values. The zero-shot machinery handles all three with no training:
//! anomaly detection and change-point detection run on the in-context
//! surprise profile; the dropout is filled by bidirectional constrained
//! generation and compared against linear interpolation.
//!
//! ```sh
//! cargo run --release --example sensor_monitoring
//! ```

use mc_tasks::imputation::linear_interpolate;
use mc_tasks::{AnomalyDetector, ChangePointDetector, Imputer};

fn main() {
    let n = 220;
    // Healthy rhythm, then a new regime from t = 150.
    let mut feed: Vec<f64> = (0..n)
        .map(|t| {
            if t < 150 {
                50.0 + 10.0 * (t as f64 * std::f64::consts::PI / 8.0).sin()
            } else {
                30.0 + 3.0 * (t as f64 * std::f64::consts::PI / 3.0).sin()
            }
        })
        .collect();
    feed[60] += 30.0; // transient fault
    feed[110] -= 28.0; // transient fault

    // 1. Point anomalies.
    let anomaly_report = AnomalyDetector::default().detect(&feed).expect("detect");
    println!("anomaly threshold: {:.4} (range fraction)", anomaly_report.threshold);
    println!("flagged timestamps: {:?}", anomaly_report.anomalies);

    // 2. Regime change.
    let change_points = ChangePointDetector::default().detect(&feed).expect("detect");
    println!("change points: {change_points:?} (true change at 150)");

    // 3. Dropout imputation: mask a window of the healthy segment.
    let truth = feed.clone();
    for v in &mut feed[80..92] {
        *v = f64::NAN;
    }
    let imputed = Imputer::default().impute(&feed).expect("impute");
    let linear = linear_interpolate(&feed);
    let score = |candidate: &[f64]| -> f64 {
        (80..92).map(|t| (candidate[t] - truth[t]).powi(2)).sum::<f64>().sqrt()
    };
    println!(
        "dropout 80..92 — zero-shot imputation error {:.2}, linear interpolation error {:.2}",
        score(&imputed),
        score(&linear)
    );
    println!("\nno model was trained at any point: the feed itself was the prompt.");
}
