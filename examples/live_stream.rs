//! Live-stream scenario: online forecasting with incremental context.
//!
//! A "production" loop over the Electricity dataset: seed the streaming
//! forecaster with the first 60 % of the series, then replay the rest one
//! row at a time — at each step the forecaster predicts the next row
//! *before* seeing it, and its one-step-ahead error is accumulated. Each
//! new observation costs only the new row's tokens (printed at the end),
//! not a re-read of the whole history. Prediction-interval bands for the
//! final horizon close the loop.
//!
//! ```sh
//! cargo run --release --example live_stream
//! ```

use multicast_suite::core::{forecast_with_bands, StreamingMultiCast};
use multicast_suite::prelude::*;

fn main() {
    let series = electricity();
    let seed_len = (series.len() as f64 * 0.6) as usize;
    let seed = series.slice(0, seed_len).expect("seed slice");
    let config = ForecastConfig { samples: 3, ..ForecastConfig::default() };
    let mut stream = StreamingMultiCast::new(MuxMethod::ValueInterleave, config, &seed)
        .expect("seedable stream");
    println!(
        "seeded with {} rows ({} prompt tokens); replaying {} live rows\n",
        seed.len(),
        stream.cost().prompt_tokens,
        series.len() - seed_len
    );

    let mut sq_err = vec![0.0; series.dims()];
    let mut steps = 0usize;
    for t in seed_len..series.len() {
        let prediction = stream.predict(1).expect("one-step prediction");
        let actual = series.row(t).expect("row");
        for (d, acc) in sq_err.iter_mut().enumerate() {
            let e = prediction.column(d).unwrap()[0] - actual[d];
            *acc += e * e;
        }
        steps += 1;
        stream.observe_row(&actual).expect("observe");
    }
    println!("{:<8} {:>22}", "dim", "one-step-ahead RMSE");
    for (name, &acc) in series.names().iter().zip(&sq_err) {
        println!("{:<8} {:>22.3}", name, (acc / steps as f64).sqrt());
    }
    println!(
        "\ntotal stream cost: {} prompt tokens over {} rows (~{} per new row)",
        stream.cost().prompt_tokens,
        stream.observed(),
        stream.cost().prompt_tokens / stream.observed() as u64
    );

    // Close with an 80 % interval forecast of the next 12 steps.
    let bands = forecast_with_bands(
        MuxMethod::ValueInterleave,
        ForecastConfig { samples: 15, ..ForecastConfig::default() },
        &series,
        12,
        0.8,
    )
    .expect("bands");
    println!("\nnext 12 steps of {} with an 80% band:", series.names()[0]);
    for t in 0..12 {
        println!(
            "  t+{:<3} {:>8.2}  [{:.2}, {:.2}]",
            t + 1,
            bands.median[0][t],
            bands.lower[0][t],
            bands.upper[0][t]
        );
    }
}
